"""Legacy setup shim.

All project metadata lives in ``pyproject.toml`` ([project] table, src/
layout, console scripts).  This file exists so the classic
``python setup.py develop`` path keeps working in offline environments
where PEP 660 editable installs cannot build (no ``wheel`` package and no
network for build isolation); setuptools >= 61 reads the pyproject
metadata either way.  Prefer ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
