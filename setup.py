"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
660 editable installs (which need ``bdist_wheel``) cannot run.  With this
``setup.py`` present and no ``[build-system]`` table in ``pyproject.toml``,
``pip install -e .`` falls back to the classic ``setup.py develop`` path,
which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Study of End-to-End Web Access Failures' "
        "(CoNEXT 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["webfail = repro.cli:main"]},
)
