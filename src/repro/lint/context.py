"""Per-file analysis context: parsed tree, import resolution, location.

Rules never touch the filesystem; the engine hands each rule one
:class:`FileContext` carrying the AST, the raw source, the file's
position inside the ``repro`` package (several rules are path-scoped),
and an :class:`ImportMap` that resolves local names back to canonical
dotted module paths -- so ``np.random.default_rng``, ``numpy.random.
default_rng`` and ``from numpy.random import default_rng`` all look the
same to a rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Optional, Tuple


class ImportMap:
    """Resolves names used in a module to canonical dotted paths.

    Built from every ``import``/``from ... import`` in the file (at any
    nesting level -- local imports count).  Two tables:

    * module aliases: ``import numpy as np`` -> ``np`` => ``numpy``
    * member aliases: ``from random import shuffle as sh`` ->
      ``sh`` => ``random.shuffle``
    """

    def __init__(self, tree: ast.AST) -> None:
        self.module_aliases: Dict[str, str] = {}
        self.member_aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    # `import numpy.random` binds `numpy`; `import
                    # numpy.random as npr` binds `npr` to the full path.
                    target = alias.name if alias.asname else name
                    self.module_aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never reach stdlib/numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.member_aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path for a Name/Attribute chain, or None.

        ``None`` means the head of the chain is not a tracked import --
        a local variable, an attribute of ``self``, etc.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        head = node.id
        if head in self.member_aliases:
            return ".".join([self.member_aliases[head]] + parts)
        if head in self.module_aliases:
            return ".".join([self.module_aliases[head]] + parts)
        return None


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str  # display path (posix)
    tree: ast.AST
    source: str
    imports: ImportMap
    #: Path parts below the innermost ``repro`` package directory, e.g.
    #: ``("world", "experiment.py")``.  Empty when the file is not part
    #: of a ``repro`` package tree (loose fixture files).
    package_parts: Tuple[str, ...] = ()

    @property
    def subpackage(self) -> str:
        """First-level subpackage name (``"world"``), or ``""``."""
        return self.package_parts[0] if len(self.package_parts) > 1 else ""

    @classmethod
    def build(cls, path: str, source: str, tree: ast.AST) -> "FileContext":
        parts = PurePath(path).parts
        package_parts: Tuple[str, ...] = ()
        # Innermost occurrence wins so /home/repro/src/repro/world/x.py
        # still scopes to ("world", "x.py").
        for i in range(len(parts) - 2, -1, -1):
            if parts[i] == "repro":
                package_parts = tuple(parts[i + 1:])
                break
        return cls(
            path=PurePath(path).as_posix(),
            tree=tree,
            source=source,
            imports=ImportMap(tree),
            package_parts=package_parts,
        )
