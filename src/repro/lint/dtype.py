"""Dtype-narrowing rules: DTY001-DTY002.

PR 2's worst bug was silent: hourly counts accumulated into a ``uint16``
array wrapped past 65535 and the dataset digest happily certified the
corrupted result.  The repo's answer is the capacity-guard idiom --
``ensure_count_capacity`` promotion, ``np.iinfo`` peak checks, or an
explicit ``raise OverflowError`` refusing to wrap.  These rules make
the idiom mandatory wherever a fixed narrow integer dtype is written
from values the type system cannot bound:

* DTY001 (error) -- a store into a narrow-int array (``int8/16/32``,
  ``uint8/16/32``) created in the same function, with no capacity guard
  in sight.  This includes the *delegation* form that actually bit us:
  the function allocates the narrow staging arrays, then hands them to
  a helper that does the unguarded writes -- neither function alone
  looks wrong, so the rule resolves the callee through the project
  symbol table and requires a guard in at least one of the two.
* DTY002 (warning) -- an explicit ``.astype()`` down to a narrow int in
  an unguarded function: a deliberate narrowing that silently wraps
  out-of-range values.

A function containing any guard is trusted for all its stores: the
idiom is one check per staging block, not one check per assignment, and
the rule follows that grain.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.rules import register
from repro.lint.symbols import ClassSymbol, FunctionSymbol

#: Integer dtypes a count can silently wrap in.
NARROW_INT_DTYPES = frozenset({
    "numpy.int8", "numpy.int16", "numpy.int32",
    "numpy.uint8", "numpy.uint16", "numpy.uint32",
})
_NARROW_STRINGS = frozenset({
    "int8", "int16", "int32", "uint8", "uint16", "uint32",
})

#: Array constructors that fix the dtype at allocation time.
ARRAY_CONSTRUCTORS = frozenset({
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.ndarray", "numpy.arange",
})

#: Spellings that count as a capacity guard inside a function.
GUARD_CALL_NAMES = frozenset({"ensure_count_capacity"})
GUARD_RESOLVED = frozenset({"numpy.iinfo"})


def _is_narrow_dtype(ctx: FileContext, node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _NARROW_STRINGS
    dotted = ctx.imports.resolve(node)
    if dotted in NARROW_INT_DTYPES:
        return True
    # numpy.dtype("int32") / numpy.dtype(numpy.int32)
    if isinstance(node, ast.Call):
        inner = ctx.imports.resolve(node.func)
        if inner == "numpy.dtype" and node.args:
            return _is_narrow_dtype(ctx, node.args[0])
    return False


def _narrow_constructor(ctx: FileContext, node: ast.AST) -> bool:
    """True when ``node`` is an array constructor fixing a narrow dtype."""
    if not isinstance(node, ast.Call):
        return False
    if ctx.imports.resolve(node.func) not in ARRAY_CONSTRUCTORS:
        return False
    for kw in node.keywords:
        if kw.arg == "dtype":
            return _is_narrow_dtype(ctx, kw.value)
    return any(_is_narrow_dtype(ctx, arg) for arg in node.args)


def _contains_narrow_constructor(ctx: FileContext, node: ast.AST) -> bool:
    return any(
        _narrow_constructor(ctx, child) for child in ast.walk(node)
    )


def _has_guard(ctx: FileContext, body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in GUARD_CALL_NAMES
                ):
                    return True
                if isinstance(func, ast.Name) and func.id in GUARD_CALL_NAMES:
                    return True
                if ctx.imports.resolve(func) in GUARD_RESOLVED:
                    return True
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if isinstance(exc, ast.Name) and exc.id == "OverflowError":
                    return True
    return False


def _subscript_root(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _narrow_names(ctx: FileContext, body: List[ast.stmt]) -> Set[str]:
    """Local names bound to narrow arrays (or dicts of narrow arrays)."""
    names: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                if _contains_narrow_constructor(ctx, node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.Call):
                # staging.update((name, np.zeros(..., np.int32)) ...)
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "update"
                    and isinstance(func.value, ast.Name)
                    and any(
                        _contains_narrow_constructor(ctx, arg)
                        for arg in node.args
                    )
                ):
                    names.add(func.value.id)
    return names


def _param_names(node) -> Set[str]:
    args = node.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _stores_into_params(symbol: FunctionSymbol) -> bool:
    params = _param_names(symbol.node)
    for stmt in symbol.node.body:
        for node in ast.walk(stmt):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    root = _subscript_root(target)
                    if root in params:
                        return True
    return False


def _function_bodies(ctx: FileContext):
    """(node-or-None, body, enclosing class name) for every function and
    the module body."""
    yield None, [
        stmt for stmt in getattr(ctx.tree, "body", [])
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ], None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield member, list(member.body), node.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, list(node.body), None


def _seen_filter(items):
    seen: Set[int] = set()
    for node, body, owner in items:
        if node is not None:
            if id(node) in seen:
                continue
            seen.add(id(node))
        yield node, body, owner


@register
class NarrowStoreRule(ProjectRule):
    """DTY001: unguarded store into a fixed narrow-int array."""

    id = "DTY001"
    severity = Severity.ERROR
    title = "unguarded store into narrow-dtype array"
    hint = (
        "bound the values first: ensure_count_capacity / np.iinfo peak "
        "check / raise OverflowError -- a narrow store that can wrap "
        "corrupts counts silently"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.contexts:
            yield from self._check_file(project, ctx)

    def _check_file(
        self, project: ProjectContext, ctx: FileContext
    ) -> Iterator[Finding]:
        for fn, body, class_name in _seen_filter(_function_bodies(ctx)):
            narrow = _narrow_names(ctx, body)
            if not narrow:
                continue
            if _has_guard(ctx, body):
                continue
            for stmt in body:
                for node in ast.walk(stmt):
                    yield from self._check_store(ctx, node, narrow)
                    yield from self._check_delegation(
                        project, ctx, node, narrow, class_name
                    )

    def _check_store(
        self, ctx: FileContext, node: ast.AST, narrow: Set[str]
    ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
            # `arr[i] = 0` is initialization, not accumulation.
            if isinstance(value, ast.Constant):
                return
        elif isinstance(node, ast.AugAssign):
            # `arr[i] += 1` accumulates: wraps regardless of how small
            # the literal increment is, so Constants stay flagged here.
            targets, value = [node.target], node.value
        if value is None:
            return
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            root = _subscript_root(target)
            if root in narrow:
                yield self.finding(
                    ctx, target,
                    f"store into narrow-dtype array `{root}` with no "
                    "capacity guard in the function (values that "
                    "exceed the dtype wrap silently)",
                )

    def _check_delegation(
        self,
        project: ProjectContext,
        ctx: FileContext,
        node: ast.AST,
        narrow: Set[str],
        class_name: Optional[str],
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        passed = [
            arg.id
            for arg in list(node.args) + [k.value for k in node.keywords]
            if isinstance(arg, ast.Name) and arg.id in narrow
        ]
        if not passed:
            return
        callee = self._resolve_callee(project, ctx, node, class_name)
        if callee is None:
            return  # unknown callee: stay quiet rather than guess
        callee_ctx = callee.ctx
        if _has_guard(callee_ctx, list(callee.node.body)):
            return
        if not _stores_into_params(callee):
            return
        yield self.finding(
            ctx, node,
            f"narrow-dtype array `{passed[0]}` passed to "
            f"{callee.dotted}(), which stores into its parameters "
            "without a capacity guard (and none here either)",
        )

    def _resolve_callee(
        self,
        project: ProjectContext,
        ctx: FileContext,
        node: ast.Call,
        class_name: Optional[str],
    ) -> Optional[FunctionSymbol]:
        func = node.func
        if (
            class_name is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            from repro.lint.graph import module_name_for

            module = module_name_for(ctx)
            if module is not None:
                owner = project.symbols.resolve(f"{module}.{class_name}")
                if isinstance(owner, ClassSymbol):
                    return owner.methods.get(func.attr)
            return None
        resolved = project.symbols.resolve_in_file(ctx, func)
        if isinstance(resolved, FunctionSymbol):
            return resolved
        return None


@register
class NarrowAstypeRule(ProjectRule):
    """DTY002: explicit narrowing ``.astype()`` in an unguarded function.

    Narrowing is sometimes right (the planned-dtype path pre-sizes from
    a Poisson tail bound) -- but then the function also carries the
    guard.  A bare narrowing cast wraps out-of-range values with no
    error, which is exactly how the PR 2 corruption stayed invisible.
    """

    id = "DTY002"
    severity = Severity.WARNING
    title = "narrowing astype without a capacity guard"
    hint = (
        "check the peak against np.iinfo before narrowing, or promote "
        "with ensure_count_capacity instead"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.contexts:
            for fn, body, _ in _seen_filter(_function_bodies(ctx)):
                guarded = _has_guard(ctx, body)
                if guarded:
                    continue
                for stmt in body:
                    for node in ast.walk(stmt):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "astype"
                            and node.args
                            and _is_narrow_dtype(ctx, node.args[0])
                        ):
                            yield self.finding(
                                ctx, node,
                                "narrowing astype to a fixed small int "
                                "dtype with no capacity guard in the "
                                "function",
                            )
