"""Lightweight intra/inter-procedural taint dataflow.

The digest-determinism contract is a *flow* property: an OS-entropy or
set-order value is harmless until it reaches a digest or a canonical
serialization, and the source and the sink are routinely in different
functions -- or different files.  A per-file AST walk cannot see that;
this engine can, cheaply:

* **Intra-procedural**: one forward pass per function propagates taint
  through assignments, containers, loops (bodies walked twice so
  loop-carried taint converges), and branches (environments union).
* **Inter-procedural**: every project function gets a *summary* --
  which parameters flow into which sinks, which parameters flow to the
  return value, and what taint the function generates internally and
  returns.  Summaries are computed to a fixpoint over the whole file
  set (bounded rounds), so ``a.py`` calling ``b.helper(x)`` learns that
  ``helper`` hashes its argument three calls deep.

Taint kinds (:class:`Taint`): ``ENTROPY`` (OS entropy / unseeded RNG),
``CLOCK`` (wall-clock reads), ``ORDER`` (set iteration order,
directory-listing order).  Sanitizers: ``sorted()`` and friends clear
``ORDER``; nothing clears ``ENTROPY`` or ``CLOCK``.  Sinks: hashlib
digests (``digest``) and JSON/pickle serialization (``serialize``).
Findings anchor at the *sink* statement -- that is where a suppression
must sit -- with the source location carried in the message.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.context import FileContext
from repro.lint.determinism import (
    RNG_CONSTRUCTORS,
    WALL_CLOCK_CALLS,
    _is_unseeded,
)
from repro.lint.symbols import ClassSymbol, FunctionSymbol, SymbolTable

MAX_TRACKED_PARAMS = 8
_PARAM_SHIFT = 3  # bits below are the real taint kinds


class Taint(enum.IntFlag):
    """What is wrong with a value (param bits live above these)."""

    NONE = 0
    ENTROPY = 1
    CLOCK = 2
    ORDER = 4


REAL_TAINT_MASK = int(Taint.ENTROPY | Taint.CLOCK | Taint.ORDER)


def param_bit(index: int) -> int:
    return 1 << (_PARAM_SHIFT + index)


#: Calls producing OS-entropy values.
ENTROPY_SOURCES = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow",
})

#: Calls whose result order depends on the filesystem, not the program.
LISTING_SOURCES = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: Builtins whose call result drops ORDER taint (deterministic
#: reductions / orderings of unordered input).
ORDER_SANITIZERS = frozenset({"sorted", "len", "min", "max"})

#: External sink calls: dotted path -> sink kind.
SINK_CALLS = {
    "json.dump": "serialize",
    "json.dumps": "serialize",
    "pickle.dump": "serialize",
    "pickle.dumps": "serialize",
}

#: Hashlib constructors: their positional args and later ``.update()``
#: calls on the result are ``digest`` sinks.
HASHLIB_CONSTRUCTORS = frozenset({
    "hashlib.md5", "hashlib.sha1", "hashlib.sha224", "hashlib.sha256",
    "hashlib.sha384", "hashlib.sha512", "hashlib.blake2b",
    "hashlib.blake2s", "hashlib.new",
})


@dataclass(frozen=True)
class Origin:
    """Where a taint bit was born."""

    description: str
    path: str
    line: int


class TaintInfo:
    """A value's taint flags plus one representative origin per flag."""

    __slots__ = ("flags", "origins")

    def __init__(
        self, flags: int = 0, origins: Optional[Dict[int, Origin]] = None
    ) -> None:
        self.flags = flags
        self.origins = origins or {}

    @classmethod
    def clean(cls) -> "TaintInfo":
        return cls()

    @classmethod
    def source(cls, kind: Taint, origin: Origin) -> "TaintInfo":
        return cls(int(kind), {int(kind): origin})

    def union(self, other: "TaintInfo") -> "TaintInfo":
        if not other.flags:
            return self
        if not self.flags:
            return other
        origins = dict(other.origins)
        origins.update(self.origins)  # first-seen (self) wins
        return TaintInfo(self.flags | other.flags, origins)

    def without(self, mask: int) -> "TaintInfo":
        flags = self.flags & ~mask
        if flags == self.flags:
            return self
        return TaintInfo(
            flags, {k: v for k, v in self.origins.items() if k & flags}
        )

    @property
    def real(self) -> int:
        return self.flags & REAL_TAINT_MASK

    def origin_of(self, mask: int) -> Optional[Origin]:
        for bit, origin in sorted(self.origins.items()):
            if bit & mask:
                return origin
        return None


CLEAN = TaintInfo.clean()


def _attr_path(node: ast.expr) -> Optional[str]:
    """``self.x.y`` -> ``"self.x.y"`` for attribute-chain env keys."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True, order=True)
class SinkPoint:
    """One sink statement: where a suppression must attach."""

    kind: str  # "digest" | "serialize"
    path: str
    line: int
    col: int
    description: str  # e.g. "hashlib.sha256()" / "json.dumps()"


@dataclass
class SinkHit:
    """Tainted data observed arriving at a sink."""

    sink: SinkPoint
    taint: TaintInfo
    via: Optional[Tuple[str, int]] = None  # call site (path, line)


@dataclass
class FunctionSummary:
    """What a function does with its parameters and its return value."""

    #: param index -> sinks the parameter's value reaches.
    param_to_sink: Dict[int, Tuple[SinkPoint, ...]] = field(
        default_factory=dict
    )
    #: param indices whose value can flow into the return value.
    param_to_return: Set[int] = field(default_factory=set)
    #: taint generated inside the function that reaches the return.
    returns: TaintInfo = field(default_factory=TaintInfo)
    #: ORDER-clearing functions (e.g. a project-local canonicalizer that
    #: sorts before returning) -- parameters listed here reach the
    #: return only after losing ORDER.
    sanitizes_order: bool = False

    def key(self) -> tuple:
        return (
            tuple(sorted(
                (i, s) for i, sinks in self.param_to_sink.items()
                for s in sinks
            )),
            tuple(sorted(self.param_to_return)),
            self.returns.flags,
            self.sanitizes_order,
        )


class FlowAnalysis:
    """Whole-project taint analysis: summaries plus concrete sink hits."""

    #: Fixpoint rounds bound call-chain depth; four covers every chain in
    #: this tree with margin and keeps worst-case cost linear-ish.
    MAX_ROUNDS = 4

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.summaries: Dict[str, FunctionSummary] = {}
        self.hits: List[SinkHit] = []

    @classmethod
    def run(
        cls, symbols: SymbolTable, contexts: Sequence[FileContext]
    ) -> "FlowAnalysis":
        analysis = cls(symbols)
        functions = symbols.functions()
        for _ in range(cls.MAX_ROUNDS):
            changed = False
            for dotted, symbol in sorted(functions.items()):
                walker = _FunctionWalker(analysis, symbol.ctx, symbol)
                summary = walker.analyze()
                previous = analysis.summaries.get(dotted)
                if previous is None or previous.key() != summary.key():
                    changed = True
                analysis.summaries[dotted] = summary
            if not changed:
                break
        # Final pass collects concrete hits (module bodies included)
        # against the converged summaries.
        analysis.hits = []
        for dotted, symbol in sorted(functions.items()):
            walker = _FunctionWalker(
                analysis, symbol.ctx, symbol, collect=True
            )
            walker.analyze()
        for ctx in sorted(contexts, key=lambda c: c.path):
            walker = _FunctionWalker(analysis, ctx, None, collect=True)
            walker.analyze()
        unique: Dict[tuple, SinkHit] = {}
        for hit in analysis.hits:
            key = (
                hit.sink, hit.taint.real,
                hit.via, tuple(sorted(hit.taint.origins.items())),
            )
            unique.setdefault(key, hit)
        analysis.hits = sorted(
            unique.values(),
            key=lambda h: (h.sink.path, h.sink.line, h.sink.col, h.sink.kind),
        )
        return analysis

    def summary_for(
        self, symbol: Union[FunctionSymbol, ClassSymbol, None]
    ) -> Optional[Tuple[FunctionSummary, int]]:
        """(summary, param offset) for a call target, if known.

        Calling a class means calling ``__init__`` with ``self`` filled
        in, so its externally visible parameters start at index 1.
        """
        if isinstance(symbol, FunctionSymbol):
            offset = 1 if "." in symbol.qualname else 0
            return self.summaries.get(symbol.dotted), offset
        if isinstance(symbol, ClassSymbol):
            init = symbol.methods.get("__init__")
            if init is not None:
                summary = self.summaries.get(init.dotted)
                if summary is not None:
                    return summary, 1
        return None


class _FunctionWalker:
    """One forward taint pass over a function body (or a module body)."""

    def __init__(
        self,
        analysis: FlowAnalysis,
        ctx: FileContext,
        symbol: Optional[FunctionSymbol],
        collect: bool = False,
    ) -> None:
        self.analysis = analysis
        self.ctx = ctx
        self.symbol = symbol
        self.collect = collect
        self.env: Dict[str, TaintInfo] = {}
        self.kinds: Dict[str, str] = {}  # var -> "hash"
        self.summary = FunctionSummary()
        self.param_names: List[str] = []
        self._class: Optional[ClassSymbol] = None
        if symbol is not None and "." in symbol.qualname:
            class_name = symbol.qualname.split(".", 1)[0]
            owner = self.analysis.symbols.resolve(
                f"{symbol.module}.{class_name}"
            )
            if isinstance(owner, ClassSymbol):
                self._class = owner

    # -- entry ------------------------------------------------------------

    def analyze(self) -> FunctionSummary:
        if self.symbol is None:
            body = getattr(self.ctx.tree, "body", [])
        else:
            node = self.symbol.node
            args = node.args
            names = [a.arg for a in args.posonlyargs + args.args]
            if args.vararg:
                names.append(args.vararg.arg)
            names.extend(a.arg for a in args.kwonlyargs)
            self.param_names = names
            for i, name in enumerate(names[:MAX_TRACKED_PARAMS]):
                self.env[name] = TaintInfo(param_bit(i))
            body = node.body
        self._walk(body)
        return self.summary

    # -- statements -------------------------------------------------------

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value).union(
                self._load(stmt.target)
            )
            self._bind(stmt.target, taint, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._record_return(self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            before = dict(self.env)
            self._walk(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._walk(stmt.orelse)
            self._merge_env(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._eval(stmt.iter)
            # Two passes so taint assigned late in the body reaches uses
            # early in the body on the notional next iteration.
            for _ in range(2):
                self._bind(stmt.target, iter_taint, stmt.iter)
                self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            saved = dict(self.env)
            for handler in stmt.handlers:
                self.env = dict(saved)
                self._walk(handler.body)
                saved.update(self.env)
            self.env = saved
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, (ast.Delete, ast.Global, ast.Nonlocal,
                               ast.Pass, ast.Break, ast.Continue,
                               ast.Import, ast.ImportFrom)):
            pass
        else:  # pragma: no cover - future statement kinds
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _merge_env(self, other: Dict[str, TaintInfo]) -> None:
        for name, taint in other.items():
            self.env[name] = taint.union(self.env.get(name, CLEAN))

    def _record_return(self, taint: TaintInfo) -> None:
        for i in range(min(len(self.param_names), MAX_TRACKED_PARAMS)):
            if taint.flags & param_bit(i):
                self.summary.param_to_return.add(i)
        real = TaintInfo(
            taint.real,
            {k: v for k, v in taint.origins.items() if k & REAL_TAINT_MASK},
        )
        self.summary.returns = self.summary.returns.union(real)

    # -- binding ----------------------------------------------------------

    def _bind(
        self, target: ast.expr, taint: TaintInfo, value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            kind = self._value_kind(value)
            if kind:
                self.kinds[target.id] = kind
            else:
                self.kinds.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            dotted = _attr_path(target)
            if dotted is not None:
                self.env[dotted] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for i, element in enumerate(target.elts):
                if isinstance(element, ast.Starred):
                    element = element.value
                self._bind(element, taint, self._tuple_item(value, i))
        elif isinstance(target, ast.Subscript):
            # arr[i] = tainted  =>  the container is now tainted too.
            if isinstance(target.value, ast.Name):
                self.env[target.value.id] = taint.union(
                    self.env.get(target.value.id, CLEAN)
                )

    def _tuple_item(self, value: ast.expr, index: int) -> ast.expr:
        if isinstance(value, (ast.Tuple, ast.List)) and index < len(
            value.elts
        ):
            return value.elts[index]
        return value

    def _load(self, node: ast.expr) -> TaintInfo:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            dotted = _attr_path(node)
            if dotted is not None and dotted in self.env:
                return self.env[dotted]
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            return self._eval(node)
        return CLEAN

    # -- expressions ------------------------------------------------------

    def _eval(self, node: ast.expr) -> TaintInfo:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            dotted = _attr_path(node)
            if dotted is not None and dotted in self.env:
                return self.env[dotted]
            return self._eval(node.value)
        if isinstance(node, (ast.Set,)):
            taint = self._union(node.elts)
            return taint.union(self._order_source(node, "a set literal"))
        if isinstance(node, ast.SetComp):
            taint = self._comp_taint(node)
            return taint.union(
                self._order_source(node, "a set comprehension")
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comp_taint(node)
        if isinstance(node, ast.DictComp):
            return self._comp_taint(node, keys=True)
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._union(node.elts)
        if isinstance(node, ast.Dict):
            parts = [k for k in node.keys if k is not None] + node.values
            return self._union(parts)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left).union(self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return self._union(node.values)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            self._union(node.comparators)
            return CLEAN  # a bool carries no byte-order or entropy
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body).union(self._eval(node.orelse))
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            return self._union(
                [v.value if isinstance(v, ast.FormattedValue) else v
                 for v in node.values]
            )
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._record_return(self._eval(node.value))
            return CLEAN
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._bind(node.target, taint, node.value)
            return taint
        taints = [
            self._eval(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        out = CLEAN
        for taint in taints:
            out = out.union(taint)
        return out

    def _union(self, nodes: Sequence[ast.expr]) -> TaintInfo:
        out = CLEAN
        for node in nodes:
            out = out.union(self._eval(node))
        return out

    def _comp_taint(self, node, keys: bool = False) -> TaintInfo:
        taint = CLEAN
        for gen in node.generators:
            iter_taint = self._eval(gen.iter)
            self._bind(gen.target, iter_taint, gen.iter)
            taint = taint.union(iter_taint)
            for cond in gen.ifs:
                self._eval(cond)
        if keys:
            taint = taint.union(self._eval(node.key))
            taint = taint.union(self._eval(node.value))
        else:
            taint = taint.union(self._eval(node.elt))
        return taint

    def _order_source(self, node: ast.AST, what: str) -> TaintInfo:
        return TaintInfo.source(
            Taint.ORDER,
            Origin(what, self.ctx.path, getattr(node, "lineno", 1)),
        )

    # -- calls ------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> TaintInfo:
        args_taint = [self._eval(a) for a in node.args]
        kwargs_taint = [self._eval(k.value) for k in node.keywords]
        all_taint = CLEAN
        for taint in args_taint + kwargs_taint:
            all_taint = all_taint.union(taint)

        dotted = self.ctx.imports.resolve(node.func)
        func = node.func

        # Builtin sanitizers / constructors by bare name.
        if isinstance(func, ast.Name):
            if func.id in ORDER_SANITIZERS:
                return all_taint.without(int(Taint.ORDER))
            if func.id in ("set", "frozenset"):
                return all_taint.union(
                    self._order_source(node, f"{func.id}(...)")
                )
            if func.id in ("list", "tuple", "iter", "reversed", "dict"):
                return all_taint
            if func.id == "id":
                return TaintInfo.source(
                    Taint.ENTROPY,
                    Origin("id(...)", self.ctx.path, node.lineno),
                )

        if dotted is not None:
            if dotted in ENTROPY_SOURCES:
                return TaintInfo.source(
                    Taint.ENTROPY,
                    Origin(f"{dotted}()", self.ctx.path, node.lineno),
                )
            if dotted in WALL_CLOCK_CALLS:
                return TaintInfo.source(
                    Taint.CLOCK,
                    Origin(f"{dotted}()", self.ctx.path, node.lineno),
                )
            if dotted in LISTING_SOURCES:
                return TaintInfo.source(
                    Taint.ORDER,
                    Origin(f"{dotted}()", self.ctx.path, node.lineno),
                )
            if dotted in RNG_CONSTRUCTORS and _is_unseeded(node):
                return TaintInfo.source(
                    Taint.ENTROPY,
                    Origin(
                        f"unseeded {dotted}()", self.ctx.path, node.lineno
                    ),
                )
            if dotted in HASHLIB_CONSTRUCTORS:
                self._sink(node, "digest", f"{dotted}()", args_taint)
                return CLEAN  # the hash object itself is deterministic
            if dotted in SINK_CALLS:
                sink_taints = args_taint + kwargs_taint
                if (
                    self._sorts_keys(node)
                    and node.args
                    and isinstance(node.args[0], (ast.Dict, ast.DictComp))
                ):
                    # sort_keys=True canonicalizes dict key order at every
                    # nesting level, so ORDER picked up building a
                    # dict-shaped payload (e.g. a comprehension over a
                    # listing) cannot reach the serialized bytes.  Only
                    # the syntactic dict shape gets this: a list argument
                    # is not reordered by sort_keys.
                    sink_taints = (
                        [args_taint[0].without(int(Taint.ORDER))]
                        + args_taint[1:]
                        + kwargs_taint
                    )
                self._sink(
                    node, SINK_CALLS[dotted], f"{dotted}()", sink_taints
                )
                return all_taint.without(int(Taint.ORDER)) if (
                    self._sorts_keys(node)
                ) else all_taint

        # `h.update(x)` on a tracked hashlib object.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "update"
            and isinstance(func.value, ast.Name)
            and self.kinds.get(func.value.id) == "hash"
        ):
            self._sink(
                node, "digest", f"{func.value.id}.update()", args_taint
            )
            return CLEAN
        if isinstance(func, ast.Attribute) and func.attr == "sort":
            if isinstance(func.value, ast.Name):
                name = func.value.id
                self.env[name] = self.env.get(name, CLEAN).without(
                    int(Taint.ORDER)
                )
            return CLEAN

        # Project-internal call: apply the callee's summary.
        symbol = self._resolve_target(node)
        applied = self.analysis.summary_for(symbol)
        if applied is not None and applied[0] is not None:
            summary, offset = applied
            return self._apply_summary(
                node, summary, offset, args_taint, kwargs_taint, all_taint
            )

        # Unknown call: taint flows through, conservatively.
        receiver = CLEAN
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value)
        return all_taint.union(receiver)

    def _sorts_keys(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "sort_keys" and isinstance(
                kw.value, ast.Constant
            ):
                return bool(kw.value.value)
        return False

    def _resolve_target(self, node: ast.Call):
        func = node.func
        # self.method(...) resolves against the enclosing class.
        if (
            self._class is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return self._class.methods.get(func.attr)
        return self.analysis.symbols.resolve_in_file(self.ctx, func)

    def _apply_summary(
        self,
        node: ast.Call,
        summary: FunctionSummary,
        offset: int,
        args_taint: List[TaintInfo],
        kwargs_taint: List[TaintInfo],
        all_taint: TaintInfo,
    ) -> TaintInfo:
        # Positional args map to params offset..; keyword args are folded
        # into "any param" conservatively (they still reach sinks).
        for sink_param, sinks in summary.param_to_sink.items():
            arg_index = sink_param - offset
            candidates: List[TaintInfo] = []
            if 0 <= arg_index < len(args_taint):
                candidates.append(args_taint[arg_index])
            elif kwargs_taint:
                candidates.extend(kwargs_taint)
            for taint in candidates:
                if taint.flags:
                    for sink in sinks:
                        self._deliver(node, sink, taint)
        result = summary.returns
        for ret_param in summary.param_to_return:
            arg_index = ret_param - offset
            if 0 <= arg_index < len(args_taint):
                result = result.union(args_taint[arg_index])
            elif kwargs_taint:
                for taint in kwargs_taint:
                    result = result.union(taint)
        if summary.sanitizes_order:
            result = result.without(int(Taint.ORDER))
        return result

    # -- sinks ------------------------------------------------------------

    def _sink(
        self,
        node: ast.Call,
        kind: str,
        description: str,
        taints: Sequence[TaintInfo],
    ) -> None:
        point = SinkPoint(
            kind=kind,
            path=self.ctx.path,
            line=node.lineno,
            col=node.col_offset,
            description=description,
        )
        combined = CLEAN
        for taint in taints:
            combined = combined.union(taint)
        self._deliver(node, point, combined)

    def _deliver(
        self, node: ast.Call, sink: SinkPoint, taint: TaintInfo
    ) -> None:
        # Parameter bits become summary entries; real taint becomes hits.
        for i in range(min(len(self.param_names), MAX_TRACKED_PARAMS)):
            if taint.flags & param_bit(i):
                existing = self.summary.param_to_sink.get(i, ())
                if sink not in existing:
                    self.summary.param_to_sink[i] = existing + (sink,)
        if self.collect and taint.real:
            via = None
            if (sink.path, sink.line) != (self.ctx.path, node.lineno):
                via = (self.ctx.path, node.lineno)
            self.analysis.hits.append(
                SinkHit(
                    sink=sink,
                    taint=TaintInfo(
                        taint.real,
                        {
                            k: v for k, v in taint.origins.items()
                            if k & REAL_TAINT_MASK
                        },
                    ),
                    via=via,
                )
            )

    def _value_kind(self, value: ast.expr) -> str:
        if isinstance(value, ast.Call):
            dotted = self.ctx.imports.resolve(value.func)
            if dotted in HASHLIB_CONSTRUCTORS:
                return "hash"
        return ""


def iter_sink_hits(
    analysis: FlowAnalysis, kinds: Tuple[str, ...], mask: int
) -> Iterator[SinkHit]:
    """The analysis' hits filtered to sink kinds and a taint mask."""
    for hit in analysis.hits:
        if hit.sink.kind in kinds and hit.taint.flags & mask:
            yield hit
