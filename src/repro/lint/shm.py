"""Shared-memory lifecycle rules: SHM001-SHM003.

A ``multiprocessing.shared_memory`` segment is an OS object, not a
Python object: dropping the last reference leaks the mapping (and, for
the creator, the named segment itself) until reboot.  The parallel
engine's contract (DESIGN.md §9) is explicit -- workers attach, write
their disjoint hour slice through ``BlockSink`` views, and close in a
``finally``; the parent creates, adopts, and unlinks in a ``finally``.
These rules check the contract structurally:

* SHM001 -- every attach must be closed on *all* paths.  A ``close()``
  on the straight-line path only is the classic bug: the worker raises
  mid-shard and the mapping outlives the process pool.
* SHM002 -- every ``create=True`` segment must also be unlinked; for a
  segment stored on ``self``, some method of the class must both close
  and unlink it (the owner object pattern -- ``SharedMonthBuffer.
  destroy``).
* SHM003 -- raw ``.buf`` access belongs to ``world/sharedmem.py``
  alone.  Everywhere else, writes go through the disjoint slice views
  it hands out; raw buffer offset math is how two workers end up
  writing the same bytes.

Ownership transfer is respected: a segment that escapes the function
(returned, yielded, stored on an object, passed onward) is someone
else's to close, and these rules stay quiet about it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.graph import module_name_for
from repro.lint.rules import Rule, register

#: Constructor for both attach (name=...) and create (create=True).
SHM_CONSTRUCTOR = "multiprocessing.shared_memory.SharedMemory"

#: Project helpers that return an attached segment the caller must
#: close: name -> index of the segment in the returned tuple (None for
#: a bare return).
ATTACH_HELPERS: Dict[str, Optional[int]] = {
    "repro.world.sharedmem.attach_shard_arrays": 0,
}

#: The one module allowed to touch raw shared-memory buffers.
BUF_BLESSED_MODULE = "repro.world.sharedmem"


def _is_create(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and bool(kw.value.value)
    return False


def _functions(tree: ast.AST):
    """(function node, enclosing ClassDef or None) for every function,
    plus the module body itself as a pseudo-function (None, None)."""
    out: List[Tuple[Optional[ast.AST], Optional[ast.ClassDef]]] = [
        (None, None)
    ]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    out.append((member, node))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, None))
    # Functions directly inside classes would be double-collected by the
    # walk; keep the first (class-tagged) occurrence.
    seen: Set[int] = set()
    unique = []
    for fn, owner in out:
        if fn is not None and id(fn) in seen:
            continue
        if fn is not None:
            seen.add(id(fn))
        unique.append((fn, owner))
    return unique


class _Acquisition:
    """One segment acquired in a function: how, and bound to what."""

    def __init__(
        self,
        node: ast.Call,
        name: Optional[str],
        self_attr: Optional[str],
        created: bool,
    ) -> None:
        self.node = node
        self.name = name  # local variable, when bound to one
        self.self_attr = self_attr  # "X" for ``self.X = SharedMemory()``
        self.created = created


def _body_of(ctx: FileContext, fn: Optional[ast.AST]) -> List[ast.stmt]:
    if fn is None:
        return [
            stmt for stmt in getattr(ctx.tree, "body", [])
            if not isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        ]
    return list(fn.body)  # type: ignore[attr-defined]


def _acquisitions(
    ctx: FileContext, body: List[ast.stmt]
) -> List[_Acquisition]:
    """Every SharedMemory acquisition bound in this body."""
    out: List[_Acquisition] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, (ast.Call,)
            ):
                continue
            call = node.value
            dotted = ctx.imports.resolve(call.func)
            target = node.targets[0]
            if dotted == SHM_CONSTRUCTOR:
                name = target.id if isinstance(target, ast.Name) else None
                self_attr = None
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self_attr = target.attr
                out.append(
                    _Acquisition(call, name, self_attr, _is_create(call))
                )
            elif dotted in ATTACH_HELPERS:
                index = ATTACH_HELPERS[dotted]
                name = None
                if index is None and isinstance(target, ast.Name):
                    name = target.id
                elif (
                    index is not None
                    and isinstance(target, (ast.Tuple, ast.List))
                    and index < len(target.elts)
                    and isinstance(target.elts[index], ast.Name)
                ):
                    name = target.elts[index].id
                out.append(_Acquisition(call, name, None, created=False))
    return out


def _escapes(body: List[ast.stmt], name: str, acq: ast.Call) -> bool:
    """True when the named segment's ownership leaves the function."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and _mentions(value, name):
                    return True
            elif isinstance(node, ast.Assign):
                if node.value is acq:
                    continue  # the acquisition itself
                if _mentions(node.value, name):
                    return True  # aliased / stored somewhere
            elif isinstance(node, ast.Call):
                func = node.func
                # Method calls *on* the segment manage it, not move it.
                on_self = (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                )
                if on_self:
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    # `f(shm)` hands the object over; `f(shm.buf)` /
                    # `f(shm.name)` passes data out of it.
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
                    if isinstance(arg, ast.Starred) and _mentions(
                        arg.value, name
                    ):
                        return True
    return False


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == name
        for child in ast.walk(node)
    )


def _method_calls(
    body: List[ast.stmt], name: str, method: str
) -> Tuple[int, int]:
    """(total calls of ``name.method()``, calls inside a finally block)."""
    total = 0
    in_finally = 0
    finally_bodies: List[ast.stmt] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Try):
                finally_bodies.extend(node.finalbody)
    finally_nodes: Set[int] = set()
    for stmt in finally_bodies:
        for node in ast.walk(stmt):
            finally_nodes.add(id(node))
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                total += 1
                if id(node) in finally_nodes:
                    in_finally += 1
    return total, in_finally


def _class_manages(
    owner: ast.ClassDef, attr: str, method: str
) -> bool:
    """True when some method of ``owner`` calls ``self.<attr>.<method>()``."""
    for node in ast.walk(owner):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == attr
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
        ):
            return True
    return False


@register
class ShmCloseRule(Rule):
    """SHM001: attached segment not closed on every path.

    ``close()`` only on the happy path means any exception between the
    attach and the close leaks the mapping for the life of the process
    -- multiplied by the worker count, every crashed run.
    """

    id = "SHM001"
    severity = Severity.ERROR
    title = "shared-memory segment not closed on all paths"
    hint = (
        "close the segment in a `finally` (attach; try: ... finally: "
        "shm.close()), or hand ownership to an object with a teardown "
        "method"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn, owner in _functions(ctx.tree):
            body = _body_of(ctx, fn)
            for acq in _acquisitions(ctx, body):
                if acq.self_attr is not None:
                    if owner is not None and not _class_manages(
                        owner, acq.self_attr, "close"
                    ):
                        yield self.finding(
                            ctx, acq.node,
                            f"segment stored on self.{acq.self_attr} but "
                            "no method of the class ever closes it",
                        )
                    continue
                if acq.name is None:
                    yield self.finding(
                        ctx, acq.node,
                        "shared-memory segment is not bound to a name, "
                        "so nothing can close it",
                    )
                    continue
                if _escapes(body, acq.name, acq.node):
                    continue  # ownership transferred
                total, in_finally = _method_calls(body, acq.name, "close")
                if total == 0:
                    yield self.finding(
                        ctx, acq.node,
                        f"segment `{acq.name}` is never closed",
                    )
                elif in_finally == 0:
                    yield self.finding(
                        ctx, acq.node,
                        f"segment `{acq.name}` is closed only on the "
                        "straight-line path; an exception before the "
                        "close leaks the mapping (use try/finally)",
                    )


@register
class ShmUnlinkRule(Rule):
    """SHM002: created segment never unlinked.

    The creator owns the *named* OS object: close() alone detaches this
    process but leaves the segment allocated until reboot.  Exactly one
    owner must unlink, exactly once, on success and on crash.
    """

    id = "SHM002"
    severity = Severity.ERROR
    title = "created shared-memory segment never unlinked"
    hint = (
        "the creating side must call unlink() (close() only detaches); "
        "pair them in a `finally` or a teardown method like "
        "SharedMonthBuffer.destroy"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn, owner in _functions(ctx.tree):
            body = _body_of(ctx, fn)
            for acq in _acquisitions(ctx, body):
                if not acq.created:
                    continue
                if acq.self_attr is not None:
                    if owner is not None and not _class_manages(
                        owner, acq.self_attr, "unlink"
                    ):
                        yield self.finding(
                            ctx, acq.node,
                            f"created segment on self.{acq.self_attr} "
                            "but no method of the class ever unlinks it",
                        )
                    continue
                if acq.name is None:
                    continue  # SHM001 already flags the unbound case
                if _escapes(body, acq.name, acq.node):
                    continue
                total, _ = _method_calls(body, acq.name, "unlink")
                if total == 0:
                    yield self.finding(
                        ctx, acq.node,
                        f"created segment `{acq.name}` is never "
                        "unlinked; the named OS object outlives the "
                        "process",
                    )


@register
class RawBufferRule(Rule):
    """SHM003: raw ``.buf`` access outside ``world/sharedmem.py``.

    The disjoint-slice write protocol lives in one module; raw buffer
    offset arithmetic anywhere else bypasses the hour partition that
    makes lock-free parallel writes safe.
    """

    id = "SHM003"
    severity = Severity.ERROR
    title = "raw shared-memory buffer access outside world/sharedmem.py"
    hint = (
        "index through the hour-sliced views from attach_shard_arrays "
        "/ SharedMonthBuffer.arrays instead of raw .buf offsets"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_name_for(ctx) == BUF_BLESSED_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "buf":
                yield self.finding(
                    ctx, node,
                    "raw .buf access: shared-memory writes must go "
                    "through the disjoint BlockSink slice views",
                )
