"""Layering-contract rules: ARC001-ARC002.

The package layering that keeps the reproduction honest has until now
been a convention: the measurement engine (``net``/``dns``/``tcp``/
``http``/``bgp``), the analysis core, the simulated world, and the
observability layer stack in one direction, and the planted ground
truth (``world/faults.py``, ``world/scenarios.py``) must be invisible
to the classifier that is being scored against it.  PR 6 moved kneedle
into ``core/knee.py`` precisely to break a ``core``<->``obs`` cycle;
this module turns that episode into a checked invariant.

* ARC001 -- a declarative allowed-import matrix over the project import
  graph (deferred function-level imports included: a lazy import is
  still a dependency).  Each layer lists the layers it may depend on;
  the ``repro.obs`` facade is importable from anywhere (passive
  instrumentation), while ``obs.live``/``obs.online``/``obs.runstore``
  internals are reserved to the obs layer and the CLI.
* ARC002 -- ground-truth unreachability: nothing transitively imported
  by ``core.classify``/``core.blame`` may reach the fault planner, and
  they must not import ground-truth symbols directly.  If the
  classifier can see the answer key, its precision/recall scores are
  fiction.

The matrix is the contract; changing it is an architecture decision and
belongs in the same commit as the import it legalizes (DESIGN.md §10).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.graph import ROOT_PACKAGE, ImportEdge
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.rules import register

#: layer -> layers it may import from (itself always included).
LAYER_MATRIX: Dict[str, FrozenSet[str]] = {
    "net": frozenset({"net"}),
    "dns": frozenset({"dns", "net"}),
    "tcp": frozenset({"tcp", "net"}),
    "http": frozenset({"http", "tcp", "dns", "net"}),
    "bgp": frozenset({"bgp", "net"}),
    "core": frozenset({"core", "net", "bgp"}),
    "world": frozenset(
        {"world", "core", "net", "tcp", "dns", "http", "bgp"}
    ),
    "obs": frozenset({"obs", "core"}),
    "lint": frozenset({"lint"}),
}

#: Module targets allowed from *any* layer: the passive observability
#: facade.  Instrumentation may be sprinkled everywhere; orchestration
#: (live dashboards, detectors, run stores) may not.
FACADE_TARGETS = frozenset({"repro.obs"})

#: Extra exact targets per layer, beyond the matrix.
LAYER_EXTRA_TARGETS: Dict[str, FrozenSet[str]] = {
    # Analysis needs the entity vocabulary (Client/Website/categories),
    # not the machinery that simulates them.
    "core": frozenset({"repro.world.entities"}),
    # The parallel engine folds worker metrics/spans into the parent;
    # metrics/tracing/runtime are passive leaves of obs.
    "world": frozenset({
        "repro.obs.metrics", "repro.obs.tracing", "repro.obs.runtime",
    }),
}

#: Exact (source module, target module) exceptions.  Each one is a
#: documented architecture decision, not an escape hatch.
EXCEPTION_PAIRS: FrozenSet[Tuple[str, str]] = frozenset({
    # pcap serialization of TCP traces: the trace type lives with the
    # TCP model, the wire format with net.  One-way and value-only.
    ("repro.net.pcap", "repro.tcp.trace"),
})

#: Sub-prefixes banned even when the target's layer is allowed.
#: ``repro.obs.horizon`` (long-horizon history/SLO) sits with the other
#: obs orchestration packages: the serve daemon and ``obs.live`` may
#: import it, the engines (``world``/``core``) may not -- retention is
#: an observability concern and must be invisible to what is measured.
BANNED_PREFIXES: Dict[str, Tuple[str, ...]] = {
    "core": (
        "repro.obs.live", "repro.obs.online", "repro.obs.runstore",
        "repro.obs.horizon",
    ),
    "world": (
        "repro.obs.live", "repro.obs.online", "repro.obs.runstore",
        "repro.obs.horizon",
    ),
}

#: Modules whose transitive imports must never reach ground truth.
PROTECTED_MODULES = ("repro.core.classify", "repro.core.blame")

#: Where the answer key lives.
TRUTH_MODULES = frozenset({
    "repro.world.faults", "repro.world.scenarios",
})

#: Ground-truth symbols that must not be imported by protected modules.
TRUTH_SYMBOLS = frozenset({
    "GroundTruth", "truth_transform", "ground_truth_log",
    "plant_server_fault", "FaultGenerator", "FaultConfig",
})


def layer_of(module: str) -> str:
    """Top-level layer name of a project module ('' for the root and
    for plain top-level modules like ``repro.cli``)."""
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != ROOT_PACKAGE:
        return ""
    return parts[1] if parts[1] in LAYER_MATRIX else ""


def _policy_target(edge: ImportEdge) -> str:
    """The module an edge should be judged by.

    ``from repro import obs`` resolves to ``repro.obs`` when the obs
    package is part of the lint run; when it is not (single-file
    fixtures), fall back to gluing the symbol on, so the facade is
    recognized either way.
    """
    if edge.target == ROOT_PACKAGE and edge.symbol is not None:
        return f"{ROOT_PACKAGE}.{edge.symbol}"
    return edge.target


def allowed(src_module: str, target: str) -> bool:
    """Does the layering contract allow ``src_module`` -> ``target``?"""
    layer = layer_of(src_module)
    if not layer:
        return True  # root package / CLI wire everything together
    for prefix in BANNED_PREFIXES.get(layer, ()):
        if target == prefix or target.startswith(prefix + "."):
            return False
    if target in FACADE_TARGETS:
        return True
    if target in LAYER_EXTRA_TARGETS.get(layer, frozenset()):
        return True
    if (src_module, target) in EXCEPTION_PAIRS:
        return True
    target_layer = layer_of(target)
    if not target_layer:
        return True  # root-package member import: facade territory
    return target_layer in LAYER_MATRIX[layer]


@register
class LayerMatrixRule(ProjectRule):
    """ARC001: import crosses a layer boundary the matrix forbids."""

    id = "ARC001"
    severity = Severity.ERROR
    title = "import violates the layering matrix"
    hint = (
        "depend on the layer's facade instead, or -- if the dependency "
        "is genuinely right -- change LAYER_MATRIX in repro/lint/"
        "arch.py and document why in DESIGN.md §10, in the same commit"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for edge in project.graph.project_edges():
            target = _policy_target(edge)
            if allowed(edge.src, target):
                continue
            ctx = project.graph.modules.get(edge.src)
            if ctx is None:  # pragma: no cover - edges come from modules
                continue
            layer = layer_of(edge.src)
            suffix = " (deferred import counts)" if edge.deferred else ""
            yield self.finding_at(
                ctx.path, edge.line, edge.col,
                f"{edge.src} imports {target}: layer '{layer}' may only "
                f"depend on "
                f"{{{', '.join(sorted(LAYER_MATRIX[layer]))}}}"
                f"{suffix}",
            )


@register
class GroundTruthReachabilityRule(ProjectRule):
    """ARC002: ground truth reachable from the scored classifier.

    The online detector's precision/recall and the blame agreement
    scores are only meaningful while `classify`/`blame` cannot observe
    the planted faults.  This walks the import graph (package
    ``__init__`` expansion included) from each protected module and
    fails on any path into the truth modules, plus any direct import of
    a truth symbol.
    """

    id = "ARC002"
    severity = Severity.ERROR
    title = "ground truth reachable from classifier/blame"
    hint = (
        "break the import chain: the classifier must take measured "
        "counts only -- move shared types out of the faults/scenarios "
        "modules instead of importing them"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for start in PROTECTED_MODULES:
            ctx = project.graph.modules.get(start)
            if ctx is None:
                continue  # partial run (fixtures); nothing to protect
            parents = project.graph.reachable(start)
            for truth in sorted(TRUTH_MODULES):
                if truth not in parents:
                    continue
                chain = project.graph.chain(parents, truth)
                yield self.finding_at(
                    ctx.path, 1, 0,
                    f"{start} transitively reaches ground-truth module "
                    f"{truth} via {' -> '.join(chain)}",
                )
            for edge in project.graph.edges_from(start):
                if edge.symbol in TRUTH_SYMBOLS:
                    yield self.finding_at(
                        ctx.path, edge.line, edge.col,
                        f"{start} imports ground-truth symbol "
                        f"`{edge.symbol}` from {edge.target}",
                    )
