"""Project-wide analysis context and the project-rule base class.

Per-file rules (:class:`~repro.lint.rules.Rule`) see one file at a time.
The flow families (DIG/SHM/DTY/ARC) need the whole file set: the import
graph for layering, the symbol table plus taint engine for cross-module
dataflow.  A :class:`ProjectRule` declares that need by implementing
``check_project`` against a :class:`ProjectContext` -- built once per
lint run, with the expensive pieces (graph, symbols, taint fixpoint)
computed lazily and shared by every project rule.

Findings from project rules anchor at the *sink* file and line, so a
``# repro: lint-ok[...]`` suppression for a cross-file flow finding
lives next to the sink statement -- the one place the contract is
actually at stake.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.flow import FlowAnalysis
from repro.lint.graph import ImportGraph
from repro.lint.rules import Rule
from repro.lint.symbols import SymbolTable


class ProjectContext:
    """Every parsed file of a lint run plus shared lazy analyses."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: List[FileContext] = sorted(
            contexts, key=lambda c: c.path
        )
        self.by_path: Dict[str, FileContext] = {
            ctx.path: ctx for ctx in self.contexts
        }
        self._graph: Optional[ImportGraph] = None
        self._symbols: Optional[SymbolTable] = None
        self._flow: Optional[FlowAnalysis] = None

    @property
    def graph(self) -> ImportGraph:
        if self._graph is None:
            self._graph = ImportGraph.build(self.contexts)
        return self._graph

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = SymbolTable.build(self.graph)
        return self._symbols

    @property
    def flow(self) -> FlowAnalysis:
        if self._flow is None:
            self._flow = FlowAnalysis.run(self.symbols, self.contexts)
        return self._flow


class ProjectRule(Rule):
    """A rule that needs the whole project, not one file.

    Subclasses implement :meth:`check_project`; the per-file ``check``
    hook is a no-op so a ProjectRule accidentally passed down the
    per-file path contributes nothing instead of crashing.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Build a finding anchored at an explicit location (project
        rules often anchor away from the node they are iterating)."""
        from repro.lint.findings import Finding as _Finding

        return _Finding(
            rule=self.id,
            severity=self.severity,
            message=message,
            path=path,
            line=line,
            col=col,
            hint=self.hint,
        )


def split_rules(rules: Sequence[Rule]):
    """(per-file rules, project rules) preserving input order."""
    per_file = [r for r in rules if not isinstance(r, ProjectRule)]
    project = [r for r in rules if isinstance(r, ProjectRule)]
    return per_file, project
