"""Baseline files: grandfathered findings.

A baseline is a committed JSON list of finding identities ``(path, rule,
line)``.  ``repro lint --baseline FILE`` subtracts them from the report,
so the gate can be turned on for a tree that is not yet clean and
ratchet from there: new findings fail, old ones are burned down at
leisure.  Regenerate with ``--write-baseline`` after intentional churn
(line numbers shift).  The shipped tree keeps an *empty* baseline --
the gate holds the codebase at zero.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Set, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, int]


def load_baseline(path: str) -> Set[BaselineKey]:
    """Load a baseline file into a set of finding identities."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a lint baseline file")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    keys: Set[BaselineKey] = set()
    for entry in data["findings"]:
        keys.add((entry["path"], entry["rule"], int(entry["line"])))
    return keys


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as a baseline file; returns the entry count.

    Entries are sorted so regeneration produces minimal diffs.
    """
    entries = sorted(
        {f.baseline_key for f in findings},
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": r, "line": line} for (p, r, line) in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def apply_baseline(
    findings: List[Finding], baseline: Set[BaselineKey]
) -> Tuple[List[Finding], int]:
    """(findings not in baseline, count of baselined-out findings)."""
    kept = [f for f in findings if f.baseline_key not in baseline]
    return kept, len(findings) - len(kept)
