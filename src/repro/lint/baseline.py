"""Baseline files: grandfathered findings.

A baseline is a committed JSON list of finding identities ``(path, rule,
line)``.  ``repro lint --baseline FILE`` subtracts them from the report,
so the gate can be turned on for a tree that is not yet clean and
ratchet from there: new findings fail, old ones are burned down at
leisure.  Regenerate with ``--write-baseline`` after intentional churn
(line numbers shift), or drop dead entries with ``--prune-baseline`` --
a stale entry is a hole in the gate, so CI treats staleness as a
failure.  The shipped tree keeps an *empty* ``src/`` baseline -- the
gate holds the codebase at zero.

Format v2 (written by this version; v1 still read): entries carry the
column as well, so two findings of the same rule on one line stay
distinguishable in review diffs.  Matching identity is unchanged --
``(path, rule, line)`` -- because columns shift under trivial edits
that should not un-grandfather a finding.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Set, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 2
_READABLE_VERSIONS = frozenset({1, 2})

BaselineKey = Tuple[str, str, int]


def _check_format(path: str, data: object) -> None:
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a lint baseline file")
    version = data.get("version")
    if version not in _READABLE_VERSIONS:
        readable = ", ".join(str(v) for v in sorted(_READABLE_VERSIONS))
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected one of {readable})"
        )


def load_baseline(path: str) -> Set[BaselineKey]:
    """Load a baseline file into a set of finding identities."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    _check_format(path, data)
    keys: Set[BaselineKey] = set()
    for entry in data["findings"]:
        keys.add((entry["path"], entry["rule"], int(entry["line"])))
    return keys


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as a v2 baseline file; returns the entry count.

    Entries are sorted so regeneration produces minimal diffs.
    """
    entries = sorted(
        {(f.path, f.rule, f.line, f.col) for f in findings},
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": r, "line": line, "col": col}
            for (p, r, line, col) in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def prune_baseline(path: str, stale: Sequence[BaselineKey]) -> int:
    """Rewrite ``path`` without the ``stale`` entries; returns the
    number dropped.  The file is upgraded to format v2 in passing (v1
    entries gain ``col: 0``)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    _check_format(path, data)
    stale_set = set(stale)
    kept = [
        {
            "path": entry["path"],
            "rule": entry["rule"],
            "line": int(entry["line"]),
            "col": int(entry.get("col", 0)),
        }
        for entry in data["findings"]
        if (entry["path"], entry["rule"], int(entry["line"]))
        not in stale_set
    ]
    dropped = len(data["findings"]) - len(kept)
    kept.sort(key=lambda e: (e["path"], e["rule"], e["line"], e["col"]))
    payload = {"version": BASELINE_VERSION, "findings": kept}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return dropped


def apply_baseline(
    findings: List[Finding], baseline: Set[BaselineKey]
) -> Tuple[List[Finding], int]:
    """(findings not in baseline, count of baselined-out findings)."""
    kept = [f for f in findings if f.baseline_key not in baseline]
    return kept, len(findings) - len(kept)
