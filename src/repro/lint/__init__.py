"""repro.lint -- AST-based determinism & safety linter.

The simulation's headline guarantee -- same seed, same dataset digest, at
any worker count -- rests on code conventions nothing in the runtime can
check: every random draw comes from a named :class:`~repro.world.rng.
RNGRegistry` stream, engine code never reads the wall clock, and nothing
hashes or serializes data in set/dict iteration order.  This package
enforces those conventions statically, as named rules over the AST:

========  ========  ==========================================================
rule      severity  invariant
========  ========  ==========================================================
DET001    error     no unseeded RNG construction
DET002    error     no module-level ``random.*`` calls (hidden global state)
DET003    error     no wall-clock reads in engine packages (``obs`` exempt)
DET004    error     ``world/`` derives seeded RNGs via ``RNGRegistry`` only
SAF001    error     no set/dict-order iteration feeding a digest or
                    serialized output
GEN001    warning   no mutable default arguments
GEN002    warning   no bare ``except:``
========  ========  ==========================================================

Findings are suppressed per line with ``# repro: lint-ok[RULE] reason``
(the reason is mandatory -- an unexplained suppression does not
suppress), or grandfathered wholesale via a committed baseline file.

Run it as ``repro lint [paths] [--strict]`` or ``python -m repro.lint``.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import Finding, Severity
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "all_rules",
    "get_rule",
    "LintResult",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "render_text",
    "render_json",
]
