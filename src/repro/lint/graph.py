"""Project-wide import graph.

The per-file rules see one :class:`~repro.lint.context.FileContext` at a
time; the flow rules (ARC layering, DIG digest-taint) need to know how
the *modules* relate.  This module turns the set of parsed files into a
graph: one node per project module (``repro.world.parallel``), one
:class:`ImportEdge` per ``import``/``from ... import`` statement, with
function-level (deferred) imports kept but tagged -- a lazy import is
still an architectural dependency.

Reachability honours Python's package semantics: importing
``repro.world.entities`` executes ``repro/world/__init__.py`` first, so
every intermediate package ``__init__`` is an implicit edge target.  The
root ``repro/__init__.py`` is deliberately *excluded* from that
expansion: it is the public API surface and re-exports the whole world;
counting it would make every module reach every other and drown the
layering signal.  (Its own explicit edges still exist when it is the
BFS start.)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.context import FileContext

#: The package the graph is scoped to.
ROOT_PACKAGE = "repro"


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a project module when possible.

    ``target`` is the canonical dotted module imported; ``symbol`` is the
    member name for ``from M import name`` where ``name`` is not itself a
    module.  ``deferred`` marks imports nested inside a function body.
    """

    src: str
    target: str
    symbol: Optional[str]
    line: int
    col: int
    deferred: bool


def module_name_for(ctx: FileContext) -> Optional[str]:
    """Dotted module name for a file inside the ``repro`` package tree.

    ``("world", "parallel.py")`` -> ``repro.world.parallel``;
    ``("world", "__init__.py")`` -> ``repro.world``; files outside any
    ``repro`` package (tests, loose fixtures) have no module name.
    """
    parts = ctx.package_parts
    if not parts or not parts[-1].endswith(".py"):
        return None
    stem = parts[-1][:-3]
    dotted = [ROOT_PACKAGE] + list(parts[:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


class _ImportCollector(ast.NodeVisitor):
    """Collects import statements, tagging those inside function bodies."""

    def __init__(self) -> None:
        self.raw: List[tuple] = []  # (node, deferred)
        self._depth = 0

    def _visit_scope(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope

    def visit_Import(self, node: ast.Import) -> None:
        self.raw.append((node, self._depth > 0))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.raw.append((node, self._depth > 0))


class ImportGraph:
    """Module nodes plus import edges for one lint run's file set."""

    def __init__(self) -> None:
        #: module name -> FileContext of the defining file.
        self.modules: Dict[str, FileContext] = {}
        self.edges: List[ImportEdge] = []
        self._edges_by_src: Dict[str, List[ImportEdge]] = {}

    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "ImportGraph":
        graph = cls()
        ordered = sorted(
            (ctx for ctx in contexts), key=lambda c: c.path
        )
        for ctx in ordered:
            name = module_name_for(ctx)
            if name is not None:
                graph.modules[name] = ctx
        for ctx in ordered:
            name = module_name_for(ctx)
            if name is None:
                continue
            graph._collect_edges(name, ctx)
        graph.edges.sort(key=lambda e: (e.src, e.line, e.col, e.target))
        for edge in graph.edges:
            graph._edges_by_src.setdefault(edge.src, []).append(edge)
        return graph

    # -- construction -----------------------------------------------------

    def _collect_edges(self, src: str, ctx: FileContext) -> None:
        collector = _ImportCollector()
        collector.visit(ctx.tree)
        for node, deferred in collector.raw:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._add_edge(src, node, alias.name, None, deferred)
            else:
                base = self._from_base(src, ctx, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        self._add_edge(src, node, base, None, deferred)
                        continue
                    candidate = f"{base}.{alias.name}"
                    if candidate in self.modules:
                        # `from repro.core import knee` imports a module.
                        self._add_edge(src, node, candidate, None, deferred)
                    else:
                        self._add_edge(
                            src, node, base, alias.name, deferred
                        )

    def _from_base(
        self, src: str, ctx: FileContext, node: ast.ImportFrom
    ) -> Optional[str]:
        """The module a ``from ... import`` pulls names out of."""
        if not node.level:
            return node.module
        # Relative import: resolve against this module's package.
        package = src.rsplit(".", 1)[0] if "." in src else src
        if module_name_for(ctx) in self.modules and ctx.package_parts[
            -1
        ] == "__init__.py":
            package = src  # a package's own module is its package
        parts = package.split(".")
        hops = node.level - 1
        if hops >= len(parts):
            return None
        base_parts = parts[: len(parts) - hops]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _add_edge(
        self,
        src: str,
        node: ast.AST,
        target: str,
        symbol: Optional[str],
        deferred: bool,
    ) -> None:
        self.edges.append(
            ImportEdge(
                src=src,
                target=target,
                symbol=symbol,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                deferred=deferred,
            )
        )

    # -- queries ----------------------------------------------------------

    def edges_from(self, module: str) -> Sequence[ImportEdge]:
        return self._edges_by_src.get(module, ())

    def project_edges(self) -> Iterable[ImportEdge]:
        """Edges whose target lies inside the ``repro`` package."""
        prefix = ROOT_PACKAGE + "."
        for edge in self.edges:
            if edge.target == ROOT_PACKAGE or edge.target.startswith(prefix):
                yield edge

    def _neighbors(self, module: str) -> Iterable[str]:
        """Modules executed when ``module``'s imports run.

        Each edge contributes its target plus every intermediate package
        ``__init__`` below the root (see module docstring).
        """
        for edge in self.edges_from(module):
            target = edge.target
            if target in self.modules and target != ROOT_PACKAGE:
                yield target
            parts = target.split(".")
            for i in range(2, len(parts)):
                package = ".".join(parts[:i])
                if package in self.modules:
                    yield package

    def reachable(self, start: str) -> Dict[str, str]:
        """Every project module reachable from ``start``, with parents.

        Returns ``{module: parent}`` for chain reconstruction; ``start``
        itself maps to ``""``.  Deferred imports count -- a lazy import
        is still a dependency the layering contract must see.
        """
        parents: Dict[str, str] = {start: ""}
        frontier = [start]
        while frontier:
            module = frontier.pop()
            for neighbor in self._neighbors(module):
                if neighbor not in parents:
                    parents[neighbor] = module
                    frontier.append(neighbor)
        return parents

    def chain(self, parents: Dict[str, str], module: str) -> List[str]:
        """The import chain from the BFS start down to ``module``."""
        path: List[str] = []
        cursor: Optional[str] = module
        seen: Set[str] = set()
        while cursor and cursor not in seen:
            seen.add(cursor)
            path.append(cursor)
            cursor = parents.get(cursor, "")
        path.reverse()
        return path
