"""Per-line suppressions: ``# repro: lint-ok[RULE] reason``.

A suppression silences the named rule(s) on its own line, or -- when it
is a standalone comment -- on the next line (for statements too long to
share a line with their justification).  Several ids may be listed:
``# repro: lint-ok[DET001,DET004] fixture exercising both``.

The reason is not decoration: a suppression without one is *inert* (it
silences nothing) and is itself reported as LNT000, so every silenced
finding carries a reviewable justification.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.lint.findings import Finding, Severity

SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\s]+)\]\s*(.*)\s*$"
)

#: Meta-finding id for an inert (reason-less) suppression.
INERT_SUPPRESSION_RULE = "LNT000"


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int  # line the comment sits on
    ids: FrozenSet[str]
    reason: str
    standalone: bool  # comment is alone on its line -> covers line + 1
    used: bool = False

    @property
    def inert(self) -> bool:
        return not self.reason.strip()

    def covers(self, line: int) -> bool:
        if self.inert:
            return False
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


class SuppressionIndex:
    """All suppressions in one file, queryable by finding location."""

    def __init__(self, suppressions: List[Suppression]) -> None:
        self.suppressions = suppressions

    @classmethod
    def scan(cls, source: str) -> "SuppressionIndex":
        """Parse suppression comments via the tokenizer.

        Tokenizing (rather than regex over raw lines) keeps '#' inside
        string literals from being misread as comments.
        """
        suppressions: List[Suppression] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = SUPPRESS_RE.match(tok.string)
                if not match:
                    continue
                ids = frozenset(
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
                standalone = not tok.line[: tok.start[1]].strip()
                suppressions.append(
                    Suppression(
                        line=tok.start[0],
                        ids=ids,
                        reason=match.group(2).strip(),
                        standalone=standalone,
                    )
                )
        except tokenize.TokenError:
            pass  # unterminated source: the engine reports LNT001 anyway
        return cls(suppressions)

    def matches(self, finding: Finding) -> Optional[Suppression]:
        """The suppression covering ``finding``, if any (marks it used)."""
        for suppression in self.suppressions:
            if finding.rule in suppression.ids and suppression.covers(
                finding.line
            ):
                suppression.used = True
                return suppression
        return None

    def inert_findings(self, path: str) -> List[Finding]:
        """LNT000 findings for suppressions missing a justification."""
        return [
            Finding(
                rule=INERT_SUPPRESSION_RULE,
                severity=Severity.WARNING,
                message=(
                    "suppression has no reason and is ignored -- write "
                    "`# repro: lint-ok[RULE] why it is safe`"
                ),
                path=path,
                line=s.line,
                hint="state why the finding is a false positive here",
            )
            for s in self.suppressions
            if s.inert
        ]
