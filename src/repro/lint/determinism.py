"""Determinism rules: DET001-DET004.

These encode the contract behind the dataset-digest guarantee (same
seed, same digest, any worker count): every random draw is derived from
the master seed through a named stream, and nothing in engine code can
observe real time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register

#: RNG constructors whose seed argument decides determinism.
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
})

#: Keyword names that carry the seed for the constructors above
#: (``random.Random(x=...)``, ``default_rng(seed=...)``).
_SEED_KEYWORDS = frozenset({"seed", "x"})

#: Module-level functions of the stdlib ``random`` module -- every one
#: draws from (and therefore mutates) the hidden global Random instance.
GLOBAL_RANDOM_FUNCTIONS = frozenset({
    "seed", "getstate", "setstate", "random", "uniform", "triangular",
    "randint", "randrange", "getrandbits", "randbytes", "choice",
    "choices", "shuffle", "sample", "betavariate", "binomialvariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate",
})

#: Legacy numpy global-state API (np.random.seed / np.random.rand ...).
GLOBAL_NP_FUNCTIONS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "poisson", "binomial", "exponential",
    "get_state", "set_state",
})

#: Wall-clock reads banned from engine code (``time.perf_counter`` is
#: deliberately absent: it only ever feeds metrics, never the model).
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Engine subpackages where wall-clock reads would leak real time into
#: simulated behaviour.  ``obs`` (and ``lint`` itself) are exempt:
#: observability legitimately timestamps spans with real time.
ENGINE_SUBPACKAGES = frozenset({
    "world", "core", "net", "tcp", "dns", "http", "bgp",
})


def _seed_arguments(node: ast.Call):
    """(has_positional_seed, seed_keyword_value_or_None)."""
    seed_kw = None
    for kw in node.keywords:
        if kw.arg in _SEED_KEYWORDS:
            seed_kw = kw.value
    return bool(node.args), seed_kw


def _is_unseeded(node: ast.Call) -> bool:
    """True when the constructor call pins no seed.

    ``Random()``, ``default_rng()`` and ``default_rng(seed=None)`` are
    unseeded; any positional argument or non-None seed keyword counts
    as seeded (DET004's business in ``world/``, not DET001's).
    """
    has_positional, seed_kw = _seed_arguments(node)
    if has_positional:
        return False
    if seed_kw is None:
        return True
    return isinstance(seed_kw, ast.Constant) and seed_kw.value is None


@register
class UnseededRNGRule(Rule):
    """DET001: RNG constructed without a seed.

    An unseeded generator is seeded from the OS entropy pool, so two
    runs of the same code diverge silently -- the exact failure the
    dataset digest exists to catch.
    """

    id = "DET001"
    severity = Severity.ERROR
    title = "unseeded RNG construction"
    hint = (
        "pass an explicit seed, or draw a named stream from "
        "world.rng.RNGRegistry"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target in RNG_CONSTRUCTORS and _is_unseeded(node):
                yield self.finding(
                    ctx, node, f"unseeded RNG construction: {target}()"
                )


@register
class GlobalRandomStateRule(Rule):
    """DET002: module-level ``random.*`` call.

    The module-level functions share one hidden ``Random`` instance, so
    any library or test that also touches it perturbs every draw after
    it -- cross-component coupling the named streams exist to prevent.
    """

    id = "DET002"
    severity = Severity.ERROR
    title = "call mutates the global RNG"
    hint = (
        "draw from a dedicated stream (world.rng.RNGRegistry) instead "
        "of the process-global RNG"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target is None:
                continue
            module, _, attr = target.rpartition(".")
            if module == "random" and attr in GLOBAL_RANDOM_FUNCTIONS:
                yield self.finding(
                    ctx, node, f"{target}() mutates the global RNG state"
                )
            elif module == "numpy.random" and attr in GLOBAL_NP_FUNCTIONS:
                yield self.finding(
                    ctx, node,
                    f"{target}() mutates numpy's global RNG state",
                )


@register
class WallClockRule(Rule):
    """DET003: wall-clock read inside an engine subpackage.

    Simulated time is the only time engine code may observe; a real
    timestamp flowing into model state makes every run unique.
    """

    id = "DET003"
    severity = Severity.ERROR
    title = "wall-clock read in engine code"
    hint = (
        "engine code must use simulated time; real timing belongs in "
        "the obs layer (time.perf_counter for durations is allowed)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage not in ENGINE_SUBPACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {target}() in repro.{ctx.subpackage}",
                )


@register
class DirectRNGInWorldRule(Rule):
    """DET004: seeded RNG constructed directly inside ``world/``.

    ``world/`` owns the RNGRegistry and its namespaced sha256 seed
    derivation; a raw ``random.Random(seed)`` there bypasses namespacing
    (risking stream collisions -- the PR 2 bug class) and never appears
    in the ``--trace`` seed log.
    """

    id = "DET004"
    severity = Severity.ERROR
    title = "direct RNG construction bypasses RNGRegistry"
    hint = (
        "derive the generator from RNGRegistry "
        "(stream/fresh/np_stream/np_fresh/fork) so the seed is "
        "namespaced and trace-logged"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.subpackage != "world":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target in RNG_CONSTRUCTORS and not _is_unseeded(node):
                yield self.finding(
                    ctx, node,
                    f"direct {target}(...) in repro.world bypasses "
                    "RNGRegistry",
                )
