"""Cross-module symbol table.

The taint engine needs to follow a call like ``canonical_json(payload)``
from the file where it happens to the ``def`` that implements it, even
when the two live in different modules.  This table records every
top-level function, class, and method defined by the project files in a
lint run, plus top-level re-export aliases (``from repro.x import f``
binds ``f`` here), and resolves canonical dotted paths -- the same form
:class:`~repro.lint.context.ImportMap` produces -- back to definitions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.lint.context import FileContext
from repro.lint.graph import ImportGraph, module_name_for

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    module: str
    qualname: str  # "plan_layout" or "SharedMonthBuffer.destroy"
    node: FunctionNode
    ctx: FileContext

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class ClassSymbol:
    """One class definition with its directly defined methods."""

    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    methods: Dict[str, FunctionSymbol] = field(default_factory=dict)


@dataclass
class _Alias:
    """A top-level re-export: this module's name points elsewhere."""

    target: str  # canonical dotted path of the real definition


class SymbolTable:
    """Top-level definitions of every project module in the run."""

    def __init__(self) -> None:
        #: module -> name -> FunctionSymbol | ClassSymbol | _Alias
        self._by_module: Dict[str, Dict[str, object]] = {}

    @classmethod
    def build(cls, graph: ImportGraph) -> "SymbolTable":
        table = cls()
        for module, ctx in graph.modules.items():
            table._index_module(module, ctx)
        return table

    def _index_module(self, module: str, ctx: FileContext) -> None:
        names: Dict[str, object] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names[stmt.name] = FunctionSymbol(
                    module=module, qualname=stmt.name, node=stmt, ctx=ctx
                )
            elif isinstance(stmt, ast.ClassDef):
                symbol = ClassSymbol(
                    module=module, name=stmt.name, node=stmt, ctx=ctx
                )
                for member in stmt.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        symbol.methods[member.name] = FunctionSymbol(
                            module=module,
                            qualname=f"{stmt.name}.{member.name}",
                            node=member,
                            ctx=ctx,
                        )
                names[stmt.name] = symbol
            elif isinstance(stmt, ast.ImportFrom) and not stmt.level:
                if stmt.module is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    names[local] = _Alias(f"{stmt.module}.{alias.name}")
        self._by_module[module] = names

    # -- resolution -------------------------------------------------------

    def resolve(
        self, dotted: str, _hops: int = 0
    ) -> Optional[Union[FunctionSymbol, ClassSymbol]]:
        """The definition behind a canonical dotted path, if in-project.

        ``repro.obs.runstore.manifest.canonical_json`` resolves to the
        function; ``repro.world.sharedmem.SharedMonthBuffer.destroy`` to
        the method.  Aliases (re-exports) are followed a bounded number
        of hops.
        """
        if _hops > 4:
            return None
        parts = dotted.split(".")
        # Longest module prefix wins so a module and a class of the same
        # name cannot shadow each other.
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module not in self._by_module:
                continue
            names = self._by_module[module]
            rest = parts[split:]
            if not rest:
                return None
            entry = names.get(rest[0])
            if isinstance(entry, _Alias):
                return self.resolve(
                    ".".join([entry.target] + rest[1:]), _hops + 1
                )
            if isinstance(entry, FunctionSymbol):
                return entry if len(rest) == 1 else None
            if isinstance(entry, ClassSymbol):
                if len(rest) == 1:
                    return entry
                if len(rest) == 2:
                    return entry.methods.get(rest[1])
                return None
            return None
        return None

    def resolve_in_file(
        self, ctx: FileContext, node: ast.AST
    ) -> Optional[Union[FunctionSymbol, ClassSymbol]]:
        """Resolve a Name/Attribute chain used in ``ctx`` to a project
        definition: canonicalize through the file's import map first,
        then fall back to the file's own top-level names."""
        dotted = ctx.imports.resolve(node)
        if dotted is not None:
            return self.resolve(dotted)
        if isinstance(node, ast.Name):
            module = module_name_for(ctx)
            if module is not None:
                entry = self._by_module.get(module, {}).get(node.id)
                if isinstance(entry, _Alias):
                    return self.resolve(entry.target)
                if isinstance(entry, (FunctionSymbol, ClassSymbol)):
                    return entry
        return None

    def functions(self) -> Dict[str, FunctionSymbol]:
        """Every function and method, keyed by canonical dotted path."""
        out: Dict[str, FunctionSymbol] = {}
        for names in self._by_module.values():
            for entry in names.values():
                if isinstance(entry, FunctionSymbol):
                    out[entry.dotted] = entry
                elif isinstance(entry, ClassSymbol):
                    for method in entry.methods.values():
                        out[method.dotted] = method
        return out
