"""The linter's output unit: one finding at one source location."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break the determinism/safety contract and always
    fail the lint run; ``WARNING`` findings are hygiene problems that
    fail only under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is the display path (posix separators, relative to the
    working directory when the file lives under it); ``line`` and
    ``col`` are 1-based / 0-based as in the ``ast`` module.
    """

    rule: str
    severity: Severity
    message: str
    path: str
    line: int
    col: int = 0
    hint: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> Tuple[str, str, int]:
        """Identity used for baseline matching (column excluded: editors
        and formatters move columns far more often than lines)."""
        return (self.path, self.rule, self.line)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
            path=data["path"],
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            hint=data.get("hint", ""),
        )
