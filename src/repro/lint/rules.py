"""Rule plugin architecture.

A rule is a class with an ``id``, a ``severity``, a one-line ``title``,
a ``hint`` telling the author how to fix it, and a ``check`` method that
yields :class:`~repro.lint.findings.Finding` objects for one file.
Registering is one decorator::

    @register
    class MyRule(Rule):
        id = "DET999"
        severity = Severity.ERROR
        title = "..."
        hint = "..."

        def check(self, ctx):
            ...

The registry is the single source of truth: the engine, the CLI's rule
table, and the README documentation generator all iterate it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity


class Rule:
    """Base class for lint rules (one instance checks many files)."""

    id: str = ""
    severity: Severity = Severity.ERROR
    title: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            message=message or self.title,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            hint=self.hint,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[rule_id]


def select_rules(ids: Iterable[str]) -> List[Rule]:
    """The subset of rules with the given ids (unknown ids raise)."""
    _ensure_loaded()
    rules = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
        rules.append(_REGISTRY[rule_id])
    return rules


def _ensure_loaded() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.lint import (  # noqa: F401
        arch,
        determinism,
        digflow,
        dtype,
        safety,
        shm,
    )
