"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

JSON_REPORT_VERSION = 1


def render_text(result: LintResult, verbose_hints: bool = True) -> str:
    """The classic compiler-style report::

        src/repro/http/wget.py:169:27: DET001 error: unseeded RNG ...
            hint: pass an explicit seed, or ...
    """
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.severity.value}: {finding.message}"
        )
        if verbose_hints and finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = (
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({result.errors} error{'' if result.errors == 1 else 's'}, "
        f"{result.warnings} warning{'' if result.warnings == 1 else 's'}) "
        f"in {result.files_scanned} file"
        f"{'' if result.files_scanned == 1 else 's'}"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (round-trips via
    :meth:`Finding.from_dict`)."""
    payload = {
        "version": JSON_REPORT_VERSION,
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json_report(text: str) -> List[Finding]:
    """Findings back out of a :func:`render_json` report."""
    data = json.loads(text)
    return [Finding.from_dict(entry) for entry in data["findings"]]
