"""The lint engine: file discovery, parsing, rule dispatch.

One pass per file: parse, build the :class:`FileContext`, run every
rule, drop findings covered by a justified suppression, add LNT000/
LNT001 meta-findings, then (optionally) subtract the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, all_rules
from repro.lint.suppress import SuppressionIndex

#: Meta-finding id for files the parser rejects.
SYNTAX_ERROR_RULE = "LNT001"


@dataclass
class FileReport:
    """One file's surviving findings plus suppression accounting."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(
            1 for f in self.findings if f.severity is Severity.WARNING
        )

    def exit_code(self, strict: bool = False) -> int:
        """1 when the run should fail CI: any error, or (under
        ``--strict``) any finding at all."""
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every .py file under ``paths`` (files listed directly always
    count), in sorted order for stable reports."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                str(p) for p in path.rglob("*.py") if p.is_file()
            )
        elif path.is_file():
            yield str(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def display_path(path: str) -> str:
    """Posix-style path, relative to the working directory when inside
    it -- the form baselines and suppression docs use."""
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> FileReport:
    """Lint one file (meta-findings LNT000/LNT001 included)."""
    shown = display_path(path)
    report = FileReport(path=shown)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except (OSError, UnicodeDecodeError) as exc:
        report.findings.append(
            Finding(
                rule=SYNTAX_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
                path=shown,
                line=1,
            )
        )
        return report
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule=SYNTAX_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                path=shown,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        )
        return report

    ctx = FileContext.build(shown, source, tree)
    suppressions = SuppressionIndex.scan(source)
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if suppressions.matches(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.extend(suppressions.inert_findings(shown))
    report.findings.sort(key=lambda f: f.sort_key)
    return report


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[str] = None,
) -> LintResult:
    """Lint every python file under ``paths``."""
    result = LintResult()
    for path in iter_python_files(paths):
        report = lint_file(path, rules)
        result.findings.extend(report.findings)
        result.suppressed += report.suppressed
        result.files_scanned += 1
    result.findings.sort(key=lambda f: f.sort_key)
    if baseline_path:
        baseline = load_baseline(baseline_path)
        result.findings, result.baselined = apply_baseline(
            result.findings, baseline
        )
    return result
