"""The lint engine: file discovery, parsing, rule dispatch.

Two passes per run.  The per-file pass parses each file, builds its
:class:`FileContext`, and runs the per-file rules -- independently per
file, so it parallelizes across a thread pool (``jobs``) with output
order fixed by sorting afterwards.  The project pass then runs every
:class:`~repro.lint.project.ProjectRule` once against a
:class:`~repro.lint.project.ProjectContext` holding *all* parsed files:
import graph, symbol table, and taint analysis are shared across the
project rules and built lazily on first use.

Suppressions are per file but apply to both passes: a project finding
anchors at its sink file/line, and the ``# repro: lint-ok[...]``
comment must sit there -- next to the statement where the contract is
at stake -- even when the taint source is in another file.
"""

from __future__ import annotations

import ast
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.baseline import BaselineKey, apply_baseline, load_baseline
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectContext, split_rules
from repro.lint.rules import Rule, all_rules
from repro.lint.suppress import SuppressionIndex

#: Meta-finding id for files the parser rejects.
SYNTAX_ERROR_RULE = "LNT001"

#: Thread-pool width when the caller does not choose one.  Linting is
#: parse-bound; beyond a handful of threads the GIL flattens the curve.
DEFAULT_JOBS = 4


@dataclass
class FileReport:
    """One file's surviving findings plus suppression accounting."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: Baseline entries that matched no current finding (stale).
    stale_baseline: List[BaselineKey] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(
            1 for f in self.findings if f.severity is Severity.WARNING
        )

    def exit_code(self, strict: bool = False) -> int:
        """1 when the run should fail CI: any error, or (under
        ``--strict``) any finding at all."""
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every .py file under ``paths`` (files listed directly always
    count), in sorted order for stable reports."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                str(p) for p in path.rglob("*.py") if p.is_file()
            )
        elif path.is_file():
            yield str(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def display_path(path: str) -> str:
    """Posix-style path, relative to the working directory when inside
    it -- the form baselines and suppression docs use."""
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


@dataclass
class ParsedFile:
    """One file after the parse step (context is None on errors)."""

    shown: str
    ctx: Optional[FileContext] = None
    suppressions: Optional[SuppressionIndex] = None
    error_findings: List[Finding] = field(default_factory=list)


def _parse_file(path: str) -> ParsedFile:
    shown = display_path(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except (OSError, UnicodeDecodeError) as exc:
        return ParsedFile(
            shown,
            error_findings=[
                Finding(
                    rule=SYNTAX_ERROR_RULE,
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                    path=shown,
                    line=1,
                )
            ],
        )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ParsedFile(
            shown,
            error_findings=[
                Finding(
                    rule=SYNTAX_ERROR_RULE,
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                    path=shown,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            ],
        )
    return ParsedFile(
        shown,
        ctx=FileContext.build(shown, source, tree),
        suppressions=SuppressionIndex.scan(source),
    )


def _run_per_file(
    parsed: ParsedFile, rules: Sequence[Rule]
) -> FileReport:
    report = FileReport(path=parsed.shown)
    report.findings.extend(parsed.error_findings)
    if parsed.ctx is None or parsed.suppressions is None:
        return report
    for rule in rules:
        for finding in rule.check(parsed.ctx):
            if parsed.suppressions.matches(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.extend(parsed.suppressions.inert_findings(parsed.shown))
    report.findings.sort(key=lambda f: f.sort_key)
    return report


def _run_project(
    parsed_files: Sequence[ParsedFile], rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """Project-pass findings (suppressions applied at the sink)."""
    if not rules:
        return [], 0
    contexts = [p.ctx for p in parsed_files if p.ctx is not None]
    by_path: Dict[str, SuppressionIndex] = {
        p.shown: p.suppressions
        for p in parsed_files
        if p.suppressions is not None
    }
    project = ProjectContext(contexts)
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check_project(project):
            index = by_path.get(finding.path)
            if index is not None and index.matches(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> FileReport:
    """Lint one file (meta-findings LNT000/LNT001 included).

    Project rules run too, against a one-file project -- fixtures and
    single-file invocations exercise DIG/SHM/DTY/ARC without spelling
    the two-pass machinery out.
    """
    parsed = _parse_file(path)
    per_file, project = split_rules(
        rules if rules is not None else all_rules()
    )
    report = _run_per_file(parsed, per_file)
    findings, suppressed = _run_project([parsed], project)
    report.findings.extend(findings)
    report.suppressed += suppressed
    report.findings.sort(key=lambda f: f.sort_key)
    return report


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[str] = None,
    jobs: Optional[int] = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    ``jobs`` widens the per-file pass across a thread pool; the report
    is sorted afterwards, so output is identical at any width.
    """
    per_file, project = split_rules(
        rules if rules is not None else all_rules()
    )
    result = LintResult()
    files = list(iter_python_files(paths))
    workers = jobs if jobs and jobs > 0 else DEFAULT_JOBS
    if workers > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parsed_files = list(pool.map(_parse_file, files))
            reports = list(
                pool.map(lambda p: _run_per_file(p, per_file), parsed_files)
            )
    else:
        parsed_files = [_parse_file(path) for path in files]
        reports = [_run_per_file(p, per_file) for p in parsed_files]
    for report in reports:
        result.findings.extend(report.findings)
        result.suppressed += report.suppressed
        result.files_scanned += 1
    project_findings, suppressed = _run_project(parsed_files, project)
    result.findings.extend(project_findings)
    result.suppressed += suppressed
    result.findings.sort(key=lambda f: f.sort_key)
    if baseline_path:
        baseline = load_baseline(baseline_path)
        current = {f.baseline_key for f in result.findings}
        result.stale_baseline = sorted(baseline - current)
        result.findings, result.baselined = apply_baseline(
            result.findings, baseline
        )
    return result
