"""Safety & hygiene rules: SAF001, GEN001, GEN002."""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register

#: Calls that turn data into a digest or serialized bytes -- order of
#: the data they are fed becomes observable output.
DIGEST_SINKS = frozenset({
    "hashlib.md5", "hashlib.sha1", "hashlib.sha224", "hashlib.sha256",
    "hashlib.sha384", "hashlib.sha512", "hashlib.blake2b",
    "hashlib.blake2s", "hashlib.new",
    "json.dump", "json.dumps",
    "pickle.dump", "pickle.dumps",
})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_UNORDERED_METHODS = frozenset({"keys", "values", "items"})


def _unordered_iter_reason(node: ast.AST) -> str:
    """Why iterating ``node`` is order-unstable, or '' if it is not.

    Matches the *direct* iterable only: ``sorted(d.items())`` has a
    ``sorted`` call as the iterable and is therefore fine.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _UNORDERED_METHODS
        ):
            return f".{func.attr}() of a dict"
    return ""


class _ScopeCollector(ast.NodeVisitor):
    """Per-scope sinks and unordered loops, without crossing into
    nested function scopes (a helper closure hashing nothing should not
    inherit its parent's digest sink)."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.has_sink = False
        self.loops: List[Tuple[ast.AST, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.imports.resolve(node.func)
        if target in DIGEST_SINKS:
            self.has_sink = True
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "hexdigest"
        ):
            self.has_sink = True
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        reason = _unordered_iter_reason(node.iter)
        if reason:
            self.loops.append((node, reason))
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            reason = _unordered_iter_reason(gen.iter)
            if reason:
                self.loops.append((node, reason))
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_FunctionDef(self, node) -> None:
        pass  # nested scope: analyzed separately

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


@register
class UnorderedDigestFeedRule(Rule):
    """SAF001: set/dict-order iteration in a digesting/serializing scope.

    Set iteration order depends on insertion history and hash
    randomization; dict order on insertion order.  Feeding either into
    a digest or serialized output makes "equal data" hash or serialize
    unequal across runs and processes.  Heuristic scope: a function (or
    the module body) that constructs a hashlib digest, calls
    ``.hexdigest()``, or calls ``json``/``pickle`` ``dump(s)``.
    """

    id = "SAF001"
    severity = Severity.ERROR
    title = "unordered iteration feeds a digest or serialized output"
    hint = "iterate sorted(...) so the byte stream is order-independent"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            n for n in ast.walk(ctx.tree) if isinstance(n, _SCOPE_NODES)
        )
        for scope in scopes:
            collector = _ScopeCollector(ctx)
            body = scope.body if not isinstance(scope, ast.Lambda) else []
            if isinstance(scope, ast.Lambda):
                collector.visit(scope.body)
            else:
                for stmt in body:
                    collector.visit(stmt)
            if not (collector.has_sink and collector.loops):
                continue
            for node, reason in collector.loops:
                yield self.finding(
                    ctx, node,
                    f"iteration over {reason} in a scope that digests or "
                    "serializes data",
                )


@register
class MutableDefaultRule(Rule):
    """GEN001: mutable default argument.

    The default is evaluated once at ``def`` time and shared by every
    call -- state leaks across calls (and across simulated clients)."""

    id = "GEN001"
    severity = Severity.WARNING
    title = "mutable default argument"
    hint = "default to None and create the container inside the function"

    _MUTABLE_LITERALS = (
        ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
    )
    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, self._MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in {name}()",
                    )


@register
class BareExceptRule(Rule):
    """GEN002: bare ``except:``.

    Catches ``SystemExit``/``KeyboardInterrupt`` too, hiding real
    failures; name the exceptions (or ``Exception``) instead."""

    id = "GEN002"
    severity = Severity.WARNING
    title = "bare except"
    hint = "catch a named exception class (at minimum `except Exception`)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(ctx, node, "bare `except:` clause")
