"""The ``repro lint`` subcommand (also ``python -m repro.lint``).

Usage::

    repro lint [paths ...] [--strict] [--format text|json]
               [--baseline FILE] [--write-baseline FILE]
               [--prune-baseline] [--jobs N]
               [--select DET001,DET004]

Exit codes: 0 clean, 1 findings (errors always; any finding under
``--strict``; a stale baseline under ``--prune-baseline``), 2 usage or
I/O errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules, select_rules

DEFAULT_PATHS = ["src/repro"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not just errors",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="subtract the grandfathered findings recorded in FILE",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write current findings to FILE as the new baseline and "
        "exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop --baseline entries whose findings no longer exist, "
        "rewriting the file; exit 1 if any were stale (CI staleness "
        "gate)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="thread-pool width for the per-file pass (output order is "
        "identical at any width)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def _rule_table() -> str:
    lines = ["rule     severity  description"]
    for rule in all_rules():
        lines.append(
            f"{rule.id:<8} {rule.severity.value:<9} {rule.title}"
        )
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        print(_rule_table())
        return 0
    paths = args.paths or DEFAULT_PATHS
    try:
        rules = (
            select_rules(
                [r.strip() for r in args.select.split(",") if r.strip()]
            )
            if args.select
            else None
        )
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.prune_baseline and not args.baseline:
        print(
            "repro lint: --prune-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    try:
        result = lint_paths(
            paths,
            rules=rules,
            baseline_path=args.baseline,
            jobs=args.jobs,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        from repro.lint.baseline import write_baseline

        count = write_baseline(args.write_baseline, result.findings)
        print(
            f"wrote {count} finding{'' if count == 1 else 's'} to "
            f"{args.write_baseline}"
        )
        return 0

    if args.prune_baseline:
        from repro.lint.baseline import prune_baseline

        dropped = prune_baseline(args.baseline, result.stale_baseline)
        if dropped:
            print(
                f"pruned {dropped} stale baseline "
                f"entr{'y' if dropped == 1 else 'ies'} from "
                f"{args.baseline}"
            )
            return 1
        print(f"baseline {args.baseline} is up to date")

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code(strict=args.strict)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & safety linter for repro",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))
