"""Digest-taint rules: DIG001-DIG003.

The reproducibility contract says every byte reaching a dataset digest,
a canonical-JSON manifest, or the ``alerts.jsonl`` stream is a pure
function of the master seed.  The determinism rules (DET0xx) ban the
*sources* syntactically; these rules ban the *flows*: an OS-entropy or
wall-clock or set-order value is only a bug once it actually reaches a
digest or canonical serialization -- possibly through several calls in
other modules.  The taint engine (:mod:`repro.lint.flow`) finds those
paths; each rule here turns one (taint kind, sink kind) pair into a
finding anchored at the sink, naming the source location in the
message so the fix site is obvious from the report alone.

Sanctioned sources need no annotation: ``RNGRegistry`` streams are
seeded (not taint sources), and ordered iteration (lists, ``sorted()``)
never acquires ORDER taint in the first place.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.flow import SinkHit, Taint
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.rules import register


def _describe(hit: SinkHit, kind: Taint) -> Tuple[str, str]:
    """(source description, sink description) for the message."""
    origin = hit.taint.origin_of(int(kind))
    if origin is None:  # pragma: no cover - hits are pre-filtered
        source = "a tainted value"
    elif origin.path == hit.sink.path:
        source = f"{origin.description} (line {origin.line})"
    else:
        source = f"{origin.description} ({origin.path}:{origin.line})"
    sink = hit.sink.description
    if hit.via is not None:
        sink += f" via call at {hit.via[0]}:{hit.via[1]}"
    return source, sink


class _DigestTaintRule(ProjectRule):
    """Shared machinery: filter the flow hits by taint kind + sinks."""

    taint_kind: Taint = Taint.NONE
    sink_kinds: Tuple[str, ...] = ()

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        mask = int(self.taint_kind)
        for hit in project.flow.hits:
            if hit.sink.kind not in self.sink_kinds:
                continue
            if not hit.taint.flags & mask:
                continue
            source, sink = _describe(hit, self.taint_kind)
            yield self.finding_at(
                hit.sink.path,
                hit.sink.line,
                hit.sink.col,
                self.message.format(source=source, sink=sink),
            )

    message = "{source} reaches {sink}"


@register
class EntropyToDigestRule(_DigestTaintRule):
    """DIG001: OS entropy flows into a digest.

    ``os.urandom``/``uuid4``/unseeded RNG output hashing into a dataset
    digest or manifest id makes the digest unique per run -- the
    reproducibility check can then never fail, which is worse than it
    failing: drift becomes invisible.
    """

    id = "DIG001"
    severity = Severity.ERROR
    title = "OS-entropy value reaches a digest"
    hint = (
        "derive the value from an RNGRegistry stream (seeded from the "
        "master seed) so the digest is a pure function of the seed"
    )
    taint_kind = Taint.ENTROPY
    sink_kinds = ("digest", "serialize")
    message = "OS-entropy value from {source} reaches {sink}"


@register
class ClockToDigestRule(_DigestTaintRule):
    """DIG002: a wall-clock read flows into a digest.

    Timestamps are fine in manifests as *recorded facts* but must not
    participate in identity hashing: ``compute_run_id`` hashing a
    ``time.time()`` value gives every rerun a fresh id, breaking the
    refresh-in-place dedup of the run registry.
    """

    id = "DIG002"
    severity = Severity.ERROR
    title = "wall-clock value reaches a digest"
    hint = (
        "keep timestamps out of hashed identity; record them as plain "
        "(unhashed) manifest fields instead"
    )
    taint_kind = Taint.CLOCK
    sink_kinds = ("digest",)
    message = "wall-clock value from {source} reaches {sink}"


@register
class SetOrderToDigestRule(_DigestTaintRule):
    """DIG003: set-order-dependent value reaches a digest or canonical
    serialization.

    Set iteration order varies across processes (hash randomization),
    so a list built from a set serializes differently run to run even
    under ``sort_keys=True`` -- key sorting cannot fix *value* order.
    This is the flow-aware big sibling of SAF001 (which only sees a
    ``for x in someset`` directly inside a digesting scope).
    """

    id = "DIG003"
    severity = Severity.ERROR
    title = "set-order-dependent value reaches a digest"
    hint = (
        "sort before serializing: wrap the unordered value in sorted() "
        "(or build a list in deterministic order to begin with)"
    )
    taint_kind = Taint.ORDER
    sink_kinds = ("digest", "serialize")
    message = "unordered value from {source} reaches {sink}"
