"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out named instruments (optionally with
Prometheus-style labels) and is the single object exporters consume.  It
is dependency-free, thread-safe, and resettable so test suites can assert
on exact counts.  :class:`NullRegistry` is the disabled variant: it hands
out shared no-op instruments so instrumented code pays only an attribute
call when collection is off.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram buckets: wall-clock-seconds oriented, spanning the
#: sub-millisecond vectorised hot paths up to minute-scale timeouts.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (float increments allowed)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative value."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (test support)."""
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (last-set wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def reset(self) -> None:
        """Zero the gauge (test support)."""
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts.

    ``bucket_counts[i]`` counts observations <= ``buckets[i]``; a final
    implicit +Inf bucket equals ``count``.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, +Inf last."""
        pairs = [(b, c) for b, c in zip(self.buckets, self._counts)]
        pairs.append((float("inf"), self._count))
        return pairs

    def quantile(self, q: float) -> float:
        """Approximate quantile from the cumulative buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        for bound, cum in zip(self.buckets, self._counts):
            if cum >= target:
                return bound
        return float("inf")

    def reset(self) -> None:
        """Clear all observations (test support)."""
        with self._lock:
            self._counts = [0] * len(self.buckets)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Named, labelled instruments with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelSet], object] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: Dict[str, str], factory):
        key = (kind, name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(key)
                if instrument is None:
                    instrument = factory(name, key[2])
                    self._metrics[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name``/``labels`` (created on first use)."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name``/``labels`` (created on first use)."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``name``/``labels`` (created on first use)."""
        return self._get(
            "histogram", name, labels,
            lambda n, ls: Histogram(n, ls, buckets),
        )

    def collect(self) -> List[object]:
        """All instruments, sorted by (name, labels) for stable export."""
        with self._lock:
            instruments = list(self._metrics.values())
        return sorted(instruments, key=lambda m: (m.name, m.labels))

    def reset(self) -> None:
        """Drop every instrument (tests / fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()

    def dump_state(self) -> List[Dict[str, object]]:
        """A picklable, registry-free description of every instrument.

        The transport format worker processes use to ship their metrics
        back to the parent (instruments themselves hold locks and cannot
        cross a process boundary); feed it to :meth:`merge_state`.
        """
        state: List[Dict[str, object]] = []
        for m in self.collect():
            record: Dict[str, object] = {
                "kind": m.kind,
                "name": m.name,
                "labels": list(m.labels),
            }
            if isinstance(m, Histogram):
                record["buckets"] = list(m.buckets)
                record["counts"] = list(m._counts)
                record["sum"] = m.sum
                record["count"] = m.count
            else:
                record["value"] = m.value
            state.append(record)
        return state

    def merge_state(self, state: Iterable[Dict[str, object]]) -> None:
        """Fold a :meth:`dump_state` snapshot into this registry.

        Counters and histograms accumulate (sums, counts, and bucket
        counts add); gauges take the snapshot's value (last write wins).

        Declared bucket boundaries survive the round-trip even for
        histograms that saw no observations: an empty snapshot either
        creates the instrument with its declared buckets or folds
        trivially into an existing one, *never* discarding or fighting
        over boundaries.  Only a non-empty snapshot whose buckets differ
        from the receiving instrument's is unmergeable (``ValueError``) --
        there is no correct way to redistribute its counts.
        """
        for record in state:
            labels = dict(record.get("labels") or ())
            kind = record.get("kind")
            name = record["name"]
            if kind == "counter":
                self.counter(name, **labels).inc(float(record["value"]))
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(record["value"]))
            elif kind == "histogram":
                # Snapshots may arrive via JSON as well as pickle: coerce
                # boundaries/counts back to their canonical types before
                # comparing with a live instrument's.
                buckets = tuple(float(b) for b in record["buckets"])
                counts = [int(c) for c in record["counts"]]
                count = int(record["count"])
                empty = count == 0 and not any(counts)
                hist = self.histogram(name, buckets=buckets, **labels)
                if hist.buckets != buckets:
                    if empty:
                        # Nothing to fold; the receiver's declared
                        # boundaries stand.
                        continue
                    raise ValueError(
                        f"histogram {name}: cannot merge buckets {buckets} "
                        f"into {hist.buckets}"
                    )
                if len(counts) != len(hist.buckets):
                    raise ValueError(
                        f"histogram {name}: snapshot has {len(counts)} "
                        f"bucket counts for {len(hist.buckets)} buckets"
                    )
                with hist._lock:
                    hist._sum += float(record["sum"])
                    hist._count += count
                    for i, c in enumerate(counts):
                        hist._counts[i] += c
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    def snapshot(self) -> Dict[str, float]:
        """Flat {rendered_name: value} map (histograms -> _count/_sum)."""
        out: Dict[str, float] = {}
        for m in self.collect():
            label_str = (
                "{" + ",".join(f'{k}="{v}"' for k, v in m.labels) + "}"
                if m.labels else ""
            )
            base = m.name + label_str
            if isinstance(m, Histogram):
                out[base + "_count"] = float(m.count)
                out[base + "_sum"] = m.sum
            else:
                out[base] = m.value
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    kind = "null"
    name = ""
    labels: LabelSet = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def reset(self) -> None:  # noqa: D102 - no-op
        pass

    def bucket_counts(self):  # noqa: D102 - no-op
        return []

    def quantile(self, q: float) -> float:  # noqa: D102 - no-op
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument is one shared no-op object."""

    enabled = False

    def counter(self, name: str, **labels: str):  # noqa: D102 - no-op
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):  # noqa: D102 - no-op
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels: str):  # noqa: D102
        return _NULL_INSTRUMENT

    def collect(self) -> List[object]:  # noqa: D102 - always empty
        return []
