"""Span-based tracing with a context-var current span.

A :class:`Tracer` produces a tree of timed :class:`Span` objects::

    with tracer.span("simulate.hour", hour=h):
        ...

The current span rides a :mod:`contextvars` variable, so nested library
code (the DNS resolver, the TCP state machine) can annotate whatever span
is active without plumbing arguments::

    tracer.current().event("tcp.failure", outcome="no_connection")

When the tracer is disabled (the default), ``span()`` yields a shared
no-op span and records nothing -- instrumentation stays in place at
near-zero cost.  When enabled, finished spans are kept in memory and/or
streamed to a JSONL sink (one JSON object per line, ``type`` being
``span`` or ``event``), which ``repro obs`` can replay.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Span:
    """One timed operation with attributes and point-in-time events."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    start_wall: float = 0.0
    _start_perf: float = 0.0
    duration: float = 0.0
    events: List[Dict[str, Any]] = field(default_factory=list)

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on the span."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, /, **fields: Any) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append({"name": name, "fields": fields})

    @property
    def is_null(self) -> bool:
        """False for real spans."""
        return False

    def to_record(self) -> Dict[str, Any]:
        """The JSONL representation of a finished span."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start_wall,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    name = ""
    span_id = -1
    parent_id = None
    attrs: Dict[str, Any] = {}
    duration = 0.0
    events: List[Dict[str, Any]] = []

    def set(self, **attrs: Any) -> "_NullSpan":  # noqa: D102 - no-op
        return self

    def event(self, name: str, /, **fields: Any) -> None:  # noqa: D102 - no-op
        pass

    @property
    def is_null(self) -> bool:
        """True: this span records nothing."""
        return True


NULL_SPAN = _NullSpan()

_null_ctx = contextlib.nullcontext(NULL_SPAN)


class Tracer:
    """Builds the span tree and streams records to an optional sink."""

    def __init__(self) -> None:
        self.enabled = False
        self.keep_in_memory = True
        self.spans: List[Span] = []  # finished spans, completion order
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        self._sink: Optional[io.TextIOBase] = None
        self._owns_sink = False
        self._lock = threading.Lock()
        self._next_id = 1

    # -- configuration -------------------------------------------------------

    def enable(self, sink_path: Optional[str] = None, keep_in_memory: bool = True):
        """Turn tracing on, optionally streaming JSONL to ``sink_path``."""
        self.enabled = True
        self.keep_in_memory = keep_in_memory
        if sink_path is not None:
            self._sink = open(sink_path, "w", encoding="utf-8")
            self._owns_sink = True
        return self

    def disable(self) -> None:
        """Turn tracing off and close any owned sink."""
        self.close()
        self.enabled = False

    def close(self) -> None:
        """Flush and close the sink if this tracer opened it."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None
            self._owns_sink = False

    def reset(self) -> None:
        """Drop recorded spans and restart span ids (test support)."""
        with self._lock:
            self.spans = []
            self._next_id = 1

    # -- span API ------------------------------------------------------------

    def current(self):
        """The innermost active span, or the shared null span."""
        span = self._current.get()
        return span if span is not None else NULL_SPAN

    def span(self, name: str, **attrs: Any):
        """Context manager: open a child span of the current span."""
        if not self.enabled:
            return _null_ctx
        return self._span_ctx(name, attrs)

    @contextlib.contextmanager
    def _span_ctx(self, name: str, attrs: Dict[str, Any]):
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self._current.get()
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
            start_wall=time.time(),
            _start_perf=time.perf_counter(),
        )
        token = self._current.set(span)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span._start_perf
            self._current.reset(token)
            self._record(span)

    def event(self, name: str, /, **fields: Any) -> None:
        """Record a standalone event (attached to the current span if any).

        Events always go to the sink; they additionally land on the
        current span's ``events`` list when one is active.
        """
        if not self.enabled:
            return
        span = self._current.get()
        if span is not None:
            span.event(name, **fields)
        self._write(
            {
                "type": "event",
                "name": name,
                "time": time.time(),
                "span": span.span_id if span is not None else None,
                "fields": fields,
            }
        )

    # -- recording -----------------------------------------------------------

    def _record(self, span: Span) -> None:
        if self.keep_in_memory:
            with self._lock:
                self.spans.append(span)
        record = span.to_record()
        if span.events:
            record["events"] = span.events
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        if self._sink is None:
            return
        with self._lock:
            self._sink.write(json.dumps(record, default=str) + "\n")

    # -- introspection -------------------------------------------------------

    def roots(self) -> List[Span]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Finished direct children of ``span``."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name."""
        return [s for s in self.spans if s.name == name]
