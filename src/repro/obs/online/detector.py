"""The streaming episode/blame detector.

:class:`OnlineDetector` subscribes to the telemetry bus and, per
completed simulated hour, mirrors the batch Section 4.4 pipeline
incrementally:

* folds the hour's per-entity transaction/failure vectors into running
  per-client and per-server rate samples (validity: at least
  ``MIN_SAMPLES_PER_HOUR`` transactions, exactly as the batch rate
  matrices);
* re-estimates the episode knee threshold per side from the rate
  samples seen so far, via the shared :mod:`repro.core.knee`
  construction (fallback to the paper's f = 5% while degenerate);
* opens and closes failure episodes with hysteresis: an episode opens
  the first hour an entity's rate clears the current threshold, and
  closes after :data:`CLOSE_AFTER_HOURS` consecutive valid hours below
  it.  On open, the *onset* is found by walking back over contiguous
  flagged hours -- the gap between onset and open is the detection
  latency the SLO report scores;
* attributes the hour's TCP failures (client-side / server-side / both
  / other) under the paper's fixed f = 5%, mirroring
  :func:`repro.core.blame.run_blame_analysis` with no pair exclusion
  (an online observer cannot know which pairs will prove permanent);
* evaluates the declarative alert rules (:mod:`repro.obs.online.rules`)
  and appends any fired alerts to the run's alert stream.

Determinism is the design center: shards arrive interleaved from worker
processes, so events are parked in a pending map and folded strictly in
hour order behind a cursor.  Alert records carry no wall-clock fields,
entity names are resolved from the ``run_start`` roster, and every
per-hour quantity is a pure function of the hours folded so far -- the
exported alert stream is therefore bit-identical at any worker count.

End-of-run equivalence: the per-entity-hour rates the detector stores
are exactly the batch rate matrices' valid cells, and the final
threshold runs through the same knee code, so
:meth:`OnlineDetector.final_flags` reproduces the batch episode matrix
cell for cell (the property test in ``tests/obs/test_online.py`` holds
this at workers 1 and 4).
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core import knee as knee_mod
from repro.core.dataset import MIN_SAMPLES_PER_HOUR
from repro.obs.metrics import MetricsRegistry
from repro.obs.online.rules import (
    BLAME_VERDICT,
    DEFAULT_RULES,
    EPISODE_OPENED,
    FAILURE_RATE_BURN,
    SLO_BURN,
    AlertRule,
)

#: Schema identifier stamped on the ``alerts.jsonl`` header line.
ALERTS_SCHEMA = "repro.alerts/1"

#: Schema identifier stamped on exported detector state (the retention
#: checkpoint record embeds one of these).
DETECTOR_STATE_SCHEMA = "repro.detector-state/1"

#: Consecutive *valid* below-threshold hours before an open episode
#: closes (hysteresis against single-hour dips).
CLOSE_AFTER_HOURS = 2

#: The fixed threshold blame attribution runs at (the paper's f = 5%;
#: the adaptive knee drives episode *alerting*, but verdict bucketing
#: must match the batch Table 5 pipeline exactly).
BLAME_THRESHOLD = knee_mod.FALLBACK_THRESHOLD

_SIDES = ("client", "server")


class _SideState:
    """Running per-side detection state (one for clients, one for servers)."""

    __slots__ = (
        "side", "names", "sorted_rates", "hour_rates", "by_hour",
        "open", "episodes",
    )

    def __init__(self, side: str) -> None:
        self.side = side
        self.names: Optional[List[str]] = None
        #: Every valid entity-hour rate seen, ascending (feeds the knee).
        self.sorted_rates: List[float] = []
        #: entity index -> {hour: rate} for valid hours (onset walk-back
        #: and the end-of-run batch-equivalence flags).
        self.hour_rates: Dict[int, Dict[int, float]] = {}
        #: hour -> [(entity index, rate)] -- the reverse index retention
        #: trimming walks to evict a whole hour in one pass.
        self.by_hour: Dict[int, List[Tuple[int, float]]] = {}
        #: entity index -> mutable open-episode state.
        self.open: Dict[int, Dict[str, Any]] = {}
        #: Closed-or-open episode log, in open order.
        self.episodes: List[Dict[str, Any]] = []

    def name_of(self, index: int) -> str:
        if self.names is not None and 0 <= index < len(self.names):
            return self.names[index]
        return f"{self.side}:{index}"

    def threshold(self) -> float:
        """The current episode threshold: the online knee, else f = 5%."""
        knee = knee_mod.knee_of_sorted(self.sorted_rates)
        return knee if knee is not None else knee_mod.FALLBACK_THRESHOLD

    def knee(self) -> Optional[float]:
        """The raw online knee (``None`` while degenerate)."""
        return knee_mod.knee_of_sorted(self.sorted_rates)


class OnlineDetector:
    """Fold ``hour_stats`` telemetry into episodes, blame, and alerts."""

    def __init__(
        self,
        rules: Optional[Sequence[AlertRule]] = None,
        observers: Optional[Sequence[Any]] = None,
        retention_hours: Optional[int] = None,
    ) -> None:
        self.rules: Tuple[AlertRule, ...] = tuple(
            DEFAULT_RULES if rules is None else rules
        )
        #: Downstream hour-stream consumers (``on_run_start(event)`` /
        #: ``on_hour(hour, ct, cf, st, sf)``), e.g. the horizon
        #: HistoryStore and SLOEngine.  Notified strictly in hour order
        #: behind the same cursor, so their documents inherit the
        #: detector's worker-count invariance for free.
        self.observers: List[Any] = list(observers or [])
        if retention_hours is not None and retention_hours < 1:
            raise ValueError(
                f"retention_hours must be >= 1, got {retention_hours}"
            )
        #: With retention on, per-entity-hour rates older than this many
        #: folded hours are evicted -- the knee then estimates over the
        #: retained window (a deliberate rolling-window estimator; see
        #: the serve daemon's retention docs), onset walk-back and
        #: ``final_flags`` are window-limited, and detector state stays
        #: O(window) so the retention checkpoint stays small.
        self.retention_hours = retention_hours
        self._lock = threading.Lock()
        self._sides = {side: _SideState(side) for side in _SIDES}
        #: Out-of-order arrivals parked until the cursor reaches them.
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._next_hour = 0
        self._last_folded: Optional[int] = None
        self.hours_total: Optional[int] = None
        self.hours_folded = 0
        #: Running blame buckets at the fixed f = 5%.
        self.blame = {"server": 0, "client": 0, "both": 0, "other": 0}
        #: Latched rules (blame-verdict / burn fire at most once).
        self._latched: Set[str] = set()
        #: Per-burn-rule consecutive-hours streaks.
        self._burn_streak: Dict[str, int] = {
            r.name: 0 for r in self.rules if r.kind == FAILURE_RATE_BURN
        }
        #: Trailing (hour, transactions, failures) window for slo-burn
        #: rules; bounded by the widest slo-burn window in play.
        slo_windows = [r.hours for r in self.rules if r.kind == SLO_BURN]
        self._slo_window: Deque[Tuple[int, int, int]] = deque(
            maxlen=max(slo_windows) if slo_windows else 1
        )
        self.alerts: List[Dict[str, Any]] = []
        #: Detection latencies (open hour minus onset hour), per episode.
        self.latencies: List[int] = []
        self.events_seen = 0

    # -- bus subscription -------------------------------------------------------

    def update(self, event: Dict[str, Any]) -> None:
        """Fold one telemetry event in (bus drain-thread context)."""
        kind = event.get("type")
        with self._lock:
            self.events_seen += 1
            if kind == "run_start":
                self.hours_total = int(event.get("hours") or 0) or None
                clients = event.get("clients")
                servers = event.get("servers")
                if isinstance(clients, list):
                    self._sides["client"].names = [str(n) for n in clients]
                if isinstance(servers, list):
                    self._sides["server"].names = [str(n) for n in servers]
                for observer in self.observers:
                    observer.on_run_start(event)
            elif kind == "hour_stats":
                hour = int(event.get("hour") or 0)
                # Shards arrive interleaved; fold strictly in hour order
                # so the alert stream is identical at any worker count.
                self._pending[hour] = event
                while self._next_hour in self._pending:
                    self._fold_hour(self._pending.pop(self._next_hour))
                    self._next_hour += 1

    def drain_pending(self) -> None:
        """Fold any still-parked hours, in order (end-of-run flush).

        Normally empty: the cursor keeps up unless some ``hour_stats``
        event was dropped by backpressure, in which case the hours after
        the gap are folded here (burn streaks reset across the gap).
        """
        with self._lock:
            for hour in sorted(self._pending):
                self._fold_hour(self._pending.pop(hour))
            self._next_hour = (
                self._last_folded + 1
                if self._last_folded is not None else 0
            )

    # -- the per-hour pipeline --------------------------------------------------

    def _fold_hour(self, event: Dict[str, Any]) -> None:
        hour = int(event.get("hour") or 0)
        if self._last_folded is not None and hour != self._last_folded + 1:
            # A gap (dropped event): consecutive-hours conditions cannot
            # be trusted across it.
            for name in self._burn_streak:
                self._burn_streak[name] = 0
        self._last_folded = hour
        self.hours_folded += 1

        ct = [int(v) for v in event.get("ct") or []]
        cf = [int(v) for v in event.get("cf") or []]
        st = [int(v) for v in event.get("st") or []]
        sf = [int(v) for v in event.get("sf") or []]

        opened: List[Tuple[str, int, Dict[str, Any]]] = []
        blame_flags: Dict[str, Dict[int, bool]] = {}
        for side, trans, fails in (("client", ct, cf), ("server", st, sf)):
            state = self._sides[side]
            hour_rates: Dict[int, float] = {}
            for i in range(len(trans)):
                if trans[i] >= MIN_SAMPLES_PER_HOUR:
                    rate = fails[i] / trans[i]
                    hour_rates[i] = rate
                    state.hour_rates.setdefault(i, {})[hour] = rate
                    state.by_hour.setdefault(hour, []).append((i, rate))
                    insort(state.sorted_rates, rate)
            threshold = state.threshold()
            for i in sorted(hour_rates):
                rate = hour_rates[i]
                flagged = rate >= threshold
                info = state.open.get(i)
                if info is not None:
                    if flagged:
                        info["below"] = 0
                        info["peak"] = max(info["peak"], rate)
                        info["last_hour"] = hour
                    else:
                        info["below"] += 1
                        if info["below"] >= CLOSE_AFTER_HOURS:
                            info["close_hour"] = hour
                            del state.open[i]
                elif flagged:
                    onset = self._walk_back_onset(state, i, hour)
                    info = {
                        "entity_index": i,
                        "onset_hour": onset,
                        "open_hour": hour,
                        "peak": rate,
                        "last_hour": hour,
                        "below": 0,
                        "close_hour": None,
                    }
                    state.open[i] = info
                    state.episodes.append(info)
                    self.latencies.append(hour - onset)
                    opened.append((side, i, {
                        "rate": rate, "threshold": threshold, "info": info,
                    }))
            blame_flags[side] = {
                i: rate >= BLAME_THRESHOLD for i, rate in hour_rates.items()
            }

        self._fold_blame(event, blame_flags)
        self._evaluate_rules(hour, opened, ct, cf)
        for observer in self.observers:
            observer.on_hour(hour, ct, cf, st, sf)
        self._trim_retention(hour)

    def _trim_retention(self, hour: int) -> None:
        """Evict per-entity-hour rates older than the retention window.

        A pure function of the folded hour number and
        ``retention_hours`` -- never of chunk or pruning boundaries --
        so trimming is invariant to ``--chunk-hours``, worker count,
        and kill/resume points.
        """
        if self.retention_hours is None:
            return
        floor = hour - self.retention_hours + 1
        for state in self._sides.values():
            while state.by_hour:
                oldest = min(state.by_hour)
                if oldest >= floor:
                    break
                for i, rate in state.by_hour.pop(oldest):
                    index = bisect_left(state.sorted_rates, rate)
                    del state.sorted_rates[index]
                    rates = state.hour_rates.get(i)
                    if rates is not None:
                        rates.pop(oldest, None)
                        if not rates:
                            del state.hour_rates[i]

    def _walk_back_onset(self, state: _SideState, i: int, hour: int) -> int:
        """Earliest hour of the contiguous flagged run ending at ``hour``.

        Walks back over hours where the entity was valid and its rate
        clears the *current* threshold -- earlier hours that only now
        look episodic (the threshold moved) are what make detection
        latency nonzero.
        """
        threshold = state.threshold()
        rates = state.hour_rates.get(i, {})
        onset = hour
        while (onset - 1) in rates and rates[onset - 1] >= threshold:
            onset -= 1
        return onset

    def _fold_blame(
        self,
        event: Dict[str, Any],
        flags: Dict[str, Dict[int, bool]],
    ) -> None:
        client_flags = flags["client"]
        server_flags = flags["server"]
        for triple in event.get("tcp") or []:
            ci, si, count = int(triple[0]), int(triple[1]), int(triple[2])
            c = client_flags.get(ci, False)
            s = server_flags.get(si, False)
            if s and not c:
                self.blame["server"] += count
            elif c and not s:
                self.blame["client"] += count
            elif c and s:
                self.blame["both"] += count
            else:
                self.blame["other"] += count

    def _evaluate_rules(
        self,
        hour: int,
        opened: List[Tuple[str, int, Dict[str, Any]]],
        ct: List[int],
        cf: List[int],
    ) -> None:
        transactions = sum(ct)
        overall = (sum(cf) / transactions) if transactions > 0 else 0.0
        blame_total = sum(self.blame.values())
        self._slo_window.append((hour, transactions, sum(cf)))
        for rule in self.rules:
            if rule.kind == EPISODE_OPENED:
                for side, i, data in opened:
                    if rule.side is not None and rule.side != side:
                        continue
                    if data["rate"] < rule.min_peak_rate:
                        continue
                    info = data["info"]
                    self._fire(
                        rule, hour, side=side,
                        entity=self._sides[side].name_of(i),
                        detail={
                            "entity_index": i,
                            "onset_hour": info["onset_hour"],
                            "open_hour": hour,
                            "latency_hours": hour - info["onset_hour"],
                            "rate": data["rate"],
                            "threshold": data["threshold"],
                        },
                    )
            elif rule.kind == BLAME_VERDICT:
                if rule.name in self._latched or blame_total < rule.min_total:
                    continue
                count = self.blame[rule.side]
                fraction = count / blame_total
                if fraction >= rule.min_fraction:
                    self._latched.add(rule.name)
                    self._fire(
                        rule, hour, side=rule.side, entity=None,
                        detail={
                            "fraction": fraction,
                            "count": count,
                            "total": blame_total,
                            "counts": dict(
                                sorted(self.blame.items())
                            ),
                        },
                    )
            elif rule.kind == FAILURE_RATE_BURN:
                if overall >= rule.rate:
                    self._burn_streak[rule.name] += 1
                else:
                    self._burn_streak[rule.name] = 0
                if (
                    rule.name not in self._latched
                    and self._burn_streak[rule.name] >= rule.hours
                ):
                    self._latched.add(rule.name)
                    self._fire(
                        rule, hour, side=None, entity=None,
                        detail={
                            "rate": overall,
                            "streak_hours": self._burn_streak[rule.name],
                            "rate_floor": rule.rate,
                        },
                    )
            elif rule.kind == SLO_BURN:
                if rule.name in self._latched:
                    continue
                window_t = window_f = 0
                for entry_hour, entry_t, entry_f in self._slo_window:
                    if entry_hour > hour - rule.hours:
                        window_t += entry_t
                        window_f += entry_f
                if window_t <= 0:
                    continue
                budget = 1.0 - rule.objective
                burn = (window_f / window_t) / budget
                if burn >= rule.burn:
                    self._latched.add(rule.name)
                    self._fire(
                        rule, hour, side=None, entity=None,
                        detail={
                            "burn_rate": burn,
                            "burn_floor": rule.burn,
                            "window_hours": rule.hours,
                            "window_failure_rate": window_f / window_t,
                            "objective": rule.objective,
                        },
                    )

    def _fire(
        self,
        rule: AlertRule,
        hour: int,
        side: Optional[str],
        entity: Optional[str],
        detail: Dict[str, Any],
    ) -> None:
        # No wall-clock fields: the stream must digest identically
        # across runs and worker counts.
        self.alerts.append({
            "type": "alert",
            "seq": len(self.alerts),
            "hour": hour,
            "rule": rule.name,
            "kind": rule.kind,
            "severity": rule.severity,
            "side": side,
            "entity": entity,
            "detail": detail,
        })

    @property
    def last_folded_hour(self) -> Optional[int]:
        """The newest hour folded so far (None before any)."""
        with self._lock:
            return self._last_folded

    # -- read surfaces ----------------------------------------------------------

    def snapshot(self, recent_alerts: int = 20) -> Dict[str, Any]:
        """Render-ready view for ``/alerts`` and the dashboard pane."""
        with self._lock:
            open_episodes = []
            for side in _SIDES:
                state = self._sides[side]
                for i in sorted(state.open):
                    info = state.open[i]
                    open_episodes.append({
                        "side": side,
                        "entity": state.name_of(i),
                        "onset_hour": info["onset_hour"],
                        "open_hour": info["open_hour"],
                        "peak_rate": info["peak"],
                    })
            by_rule: Dict[str, int] = {}
            for alert in self.alerts:
                by_rule[alert["rule"]] = by_rule.get(alert["rule"], 0) + 1
            return {
                "schema": ALERTS_SCHEMA,
                "rules": [r.name for r in self.rules],
                "hours_total": self.hours_total,
                "hours_folded": self.hours_folded,
                "pending_hours": len(self._pending),
                "thresholds": {
                    side: self._sides[side].knee() for side in _SIDES
                },
                "open_episodes": open_episodes,
                "episodes_opened": {
                    side: len(self._sides[side].episodes) for side in _SIDES
                },
                "blame": dict(sorted(self.blame.items())),
                "alert_count": len(self.alerts),
                "alerts_by_rule": dict(sorted(by_rule.items())),
                "alerts": list(self.alerts[-recent_alerts:]),
                "detection_latency_hours": _latency_stats(self.latencies),
            }

    def episodes_document(self) -> Dict[str, Any]:
        """The full episode log for the ``/episodes`` endpoint.

        Every episode ever opened (closed ones keep their close hour),
        per side, in open order -- the live counterpart of the batch
        episode matrix, with names resolved and detection latency
        attached per episode.
        """
        with self._lock:
            episodes = []
            for side in _SIDES:
                state = self._sides[side]
                for info in state.episodes:
                    episodes.append({
                        "side": side,
                        "entity": state.name_of(info["entity_index"]),
                        "entity_index": info["entity_index"],
                        "onset_hour": info["onset_hour"],
                        "open_hour": info["open_hour"],
                        "latency_hours": (
                            info["open_hour"] - info["onset_hour"]
                        ),
                        "last_hour": info["last_hour"],
                        "close_hour": info["close_hour"],
                        "open": info["close_hour"] is None,
                        "peak_rate": info["peak"],
                    })
            episodes.sort(key=lambda e: (e["open_hour"], e["side"], e["entity_index"]))
            return {
                "schema": ALERTS_SCHEMA,
                "hours_folded": self.hours_folded,
                "last_folded_hour": self._last_folded,
                "thresholds": {
                    side: self._sides[side].knee() for side in _SIDES
                },
                "episode_count": len(episodes),
                "open_count": sum(1 for e in episodes if e["open"]),
                "episodes": episodes,
            }

    def blame_document(self) -> Dict[str, Any]:
        """Running blame attribution + verdict for the ``/blame`` endpoint.

        The verdict is the dominant bucket of the TCP failures
        attributed so far under the paper's fixed f = 5% -- queryable
        sim-hours after fault onset, not at month-end.  ``None`` until
        any TCP failure has been attributed.
        """
        with self._lock:
            total = sum(self.blame.values())
            counts = dict(sorted(self.blame.items()))
            fractions = {
                side: (count / total if total else 0.0)
                for side, count in counts.items()
            }
            verdict = None
            if total > 0:
                verdict = max(counts, key=lambda side: (counts[side], side))
            return {
                "schema": ALERTS_SCHEMA,
                "hours_folded": self.hours_folded,
                "last_folded_hour": self._last_folded,
                "threshold": BLAME_THRESHOLD,
                "total": total,
                "counts": counts,
                "fractions": fractions,
                "verdict": verdict,
            }

    def to_registry(self) -> MetricsRegistry:
        """Alerting state as gauges (merged into ``/metrics``)."""
        snap = self.snapshot()
        registry = MetricsRegistry()
        registry.gauge("alert_count").set(snap["alert_count"])
        for rule, count in snap["alerts_by_rule"].items():
            registry.gauge("alerts_fired", rule=rule).set(count)
        for side in _SIDES:
            registry.gauge(
                "alert_open_episodes", side=side
            ).set(
                sum(
                    1 for e in snap["open_episodes"] if e["side"] == side
                )
            )
            threshold = snap["thresholds"][side]
            if threshold is not None:
                # Absent while degenerate, like the live aggregator's
                # estimate gauge.
                registry.gauge(
                    "alert_episode_threshold", side=side
                ).set(threshold)
        latency = snap["detection_latency_hours"]
        if latency["count"]:
            registry.gauge("detection_latency_hours").set(latency["mean"])
            registry.gauge("detection_latency_hours_max").set(latency["max"])
        return registry

    # -- end-of-run surfaces ----------------------------------------------------

    def final_threshold(self, side: str) -> float:
        """The end-of-run threshold for ``side`` (knee, else f = 5%)."""
        with self._lock:
            return self._sides[side].threshold()

    def final_flags(
        self, side: str, threshold: Optional[float] = None
    ) -> Set[Tuple[int, int]]:
        """The batch-equivalent episode set: (entity, hour) cells.

        Under the final threshold this is exactly
        ``episode_matrix(rate_matrix, detect_knee(rate_matrix))`` from
        the batch pipeline -- same valid cells, same rates, same shared
        knee code.
        """
        with self._lock:
            state = self._sides[side]
            if threshold is None:
                threshold = state.threshold()
            return {
                (i, hour)
                for i, rates in state.hour_rates.items()
                for hour, rate in rates.items()
                if rate >= threshold
            }

    def export(self) -> Dict[str, Any]:
        """The persistable alert stream: jsonl-ready lines plus summary.

        The run store serializes each line with canonical JSON and
        digests the file bytes; everything here is already
        wall-clock-free and worker-count-invariant.
        """
        with self._lock:
            by_rule: Dict[str, int] = {}
            for alert in self.alerts:
                by_rule[alert["rule"]] = by_rule.get(alert["rule"], 0) + 1
            summary = {
                "count": len(self.alerts),
                "by_rule": dict(sorted(by_rule.items())),
                "hours_folded": self.hours_folded,
                "detection_latency_hours": _latency_stats(self.latencies),
            }
            lines: List[Dict[str, Any]] = [{
                "type": "header",
                "schema": ALERTS_SCHEMA,
                "rules": [r.to_dict() for r in self.rules],
            }]
            lines.extend(self.alerts)
            lines.append({"type": "summary", **summary})
            return {"lines": lines, "summary": summary}

    # -- checkpoint state --------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """The full fold state, JSON-able (the retention checkpoint).

        Must be taken at a fold boundary (no parked out-of-order
        hours); ``sorted_rates`` and the per-hour reverse index are
        derived from ``hour_rates`` and rebuilt on restore, keeping the
        record minimal.  Restoring this state and folding hours N.. is
        bit-identical to having folded 0..N.. in one process -- the
        property the retention-resume tests hold.
        """
        with self._lock:
            if self._pending:
                raise ValueError(
                    "detector state export with out-of-order hours "
                    f"still parked: {sorted(self._pending)}"
                )
            sides: Dict[str, Any] = {}
            for side, state in self._sides.items():
                episode_index = {
                    id(info): n for n, info in enumerate(state.episodes)
                }
                sides[side] = {
                    "names": state.names,
                    "hour_rates": {
                        str(i): {str(h): rate for h, rate in rates.items()}
                        for i, rates in state.hour_rates.items()
                    },
                    "episodes": [dict(info) for info in state.episodes],
                    "open": {
                        str(i): episode_index[id(info)]
                        for i, info in state.open.items()
                    },
                }
            return {
                "schema": DETECTOR_STATE_SCHEMA,
                "next_hour": self._next_hour,
                "last_folded": self._last_folded,
                "hours_total": self.hours_total,
                "hours_folded": self.hours_folded,
                "blame": dict(sorted(self.blame.items())),
                "latched": sorted(self._latched),
                "burn_streak": dict(sorted(self._burn_streak.items())),
                "slo_window": [list(e) for e in self._slo_window],
                "alerts": [dict(a) for a in self.alerts],
                "latencies": list(self.latencies),
                "events_seen": self.events_seen,
                "sides": sides,
            }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore an :meth:`export_state` snapshot (exact round-trip).

        The active rule set is not part of the state -- the caller
        constructs the detector with the same rules the original run
        used (the serve daemon's resume path does); unknown streak
        names are dropped and missing ones start at zero.
        """
        with self._lock:
            self._pending = {}
            self._next_hour = int(state["next_hour"])
            self._last_folded = (
                int(state["last_folded"])
                if state["last_folded"] is not None else None
            )
            self.hours_total = (
                int(state["hours_total"])
                if state["hours_total"] is not None else None
            )
            self.hours_folded = int(state["hours_folded"])
            self.blame = {
                key: int(value) for key, value in state["blame"].items()
            }
            self._latched = set(state["latched"])
            for name in self._burn_streak:
                self._burn_streak[name] = int(
                    state["burn_streak"].get(name, 0)
                )
            self._slo_window.clear()
            for entry in state.get("slo_window") or []:
                self._slo_window.append(
                    (int(entry[0]), int(entry[1]), int(entry[2]))
                )
            self.alerts = [dict(a) for a in state["alerts"]]
            self.latencies = [int(v) for v in state["latencies"]]
            self.events_seen = int(state["events_seen"])
            for side, stored in state["sides"].items():
                sstate = self._sides[side]
                names = stored.get("names")
                if names is not None:
                    sstate.names = [str(n) for n in names]
                sstate.hour_rates = {
                    int(i): {int(h): float(r) for h, r in rates.items()}
                    for i, rates in stored["hour_rates"].items()
                }
                sstate.by_hour = {}
                for i in sorted(sstate.hour_rates):
                    for h, rate in sstate.hour_rates[i].items():
                        sstate.by_hour.setdefault(h, []).append((i, rate))
                sstate.sorted_rates = sorted(
                    rate
                    for rates in sstate.hour_rates.values()
                    for rate in rates.values()
                )
                sstate.episodes = [dict(info) for info in stored["episodes"]]
                sstate.open = {
                    int(i): sstate.episodes[int(n)]
                    for i, n in stored["open"].items()
                }


def _latency_stats(latencies: List[int]) -> Dict[str, Any]:
    """Mean/median/max of the onset-to-alert latencies seen so far."""
    if not latencies:
        return {"count": 0, "mean": None, "p50": None, "max": None}
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": ordered[len(ordered) // 2],
        "max": ordered[-1],
    }
