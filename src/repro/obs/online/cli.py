"""``repro detect`` -- score a recorded run's online detection.

Mirrors the runstore CLI pattern: :func:`configure_parser` attaches the
arguments, :func:`run` executes.  Exit codes: 0 when the online
pipeline exactly reproduces the batch analysis (and the recorded alert
digest), 1 on any quality mismatch, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.runstore.store import RunStore, RunStoreError, resolve_runs_dir

#: Default committed trajectory file ``detect`` observations append to.
DEFAULT_TRAJECTORY = "BENCH_trajectory.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro detect`` arguments."""
    parser.add_argument(
        "ref", nargs="?", default="latest",
        help="run to score: id, unique prefix, or 'latest' (default)",
    )
    parser.add_argument(
        "--runs-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="run-registry root (default: $REPRO_RUNS_DIR or ./runs)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_TRAJECTORY,
        help="bench trajectory to append the detect observation to "
        f"(default {DEFAULT_TRAJECTORY})",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="score only; do not append to the trajectory",
    )


def run(args: argparse.Namespace) -> int:
    """Execute ``repro detect``."""
    from repro.obs.online.report import DetectError, render_report, run_detect
    from repro.obs.runstore.trajectory import TrajectoryError, append_entry

    store = RunStore(resolve_runs_dir(getattr(args, "runs_dir", None)))
    try:
        manifest = store.load(args.ref)
    except RunStoreError as exc:
        print(f"repro detect: {exc}", file=sys.stderr)
        return 2
    run_dir = store.run_dir(manifest.run_id)
    try:
        report = run_detect(run_dir, manifest)
    except DetectError as exc:
        print(f"repro detect: {exc}", file=sys.stderr)
        return 2
    print(render_report(report))
    if not args.no_append:
        try:
            append_entry(
                args.baseline, report.trajectory_entry(manifest.config)
            )
            print(f"\ndetect observation appended to {args.baseline}")
        except (OSError, TrajectoryError) as exc:
            print(
                f"repro detect: warning: trajectory not updated: {exc}",
                file=sys.stderr,
            )
    return 0 if report.ok else 1
