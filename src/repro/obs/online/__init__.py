"""Online failure detection: streaming episode/blame analysis.

The batch pipeline (:mod:`repro.core.episodes`, :mod:`repro.core.blame`)
answers "what happened last month?".  This package answers the
operational question the paper's infrastructure would face in
production: *while* the month is being simulated, detect failure
episodes as they open, attribute blame incrementally, and alert --
then, after the run, prove the online verdicts match the batch ones.

Pieces:

* :mod:`~repro.obs.online.detector` -- the incremental pipeline
  (telemetry-bus subscriber; deterministic at any worker count);
* :mod:`~repro.obs.online.rules` -- the declarative alert-rule engine
  (TOML/JSON rule files, three rule kinds);
* :mod:`~repro.obs.online.report` -- ``repro detect``: post-run
  scoring of online vs batch (precision/recall, blame agreement,
  detection-latency distribution, digest reproduction).
"""

from repro.obs.online.detector import (
    ALERTS_SCHEMA,
    BLAME_THRESHOLD,
    CLOSE_AFTER_HOURS,
    OnlineDetector,
)
from repro.obs.online.rules import (
    DEFAULT_RULES,
    AlertRule,
    RuleError,
    load_rules,
    rules_from_dicts,
)

__all__ = [
    "ALERTS_SCHEMA",
    "BLAME_THRESHOLD",
    "CLOSE_AFTER_HOURS",
    "OnlineDetector",
    "DEFAULT_RULES",
    "AlertRule",
    "RuleError",
    "load_rules",
    "rules_from_dicts",
]
