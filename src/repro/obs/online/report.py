"""Post-run detection-quality scoring: ``repro detect RUN``.

Replays a recorded run's persisted telemetry (``events.jsonl``) through
a fresh :class:`~repro.obs.online.detector.OnlineDetector`, rebuilds
the *batch* episode analysis from the same per-hour aggregates, and
scores the online pipeline against it:

* **episode precision / recall** -- the online end-of-run episode cells
  (entity-hours flagged under the final online threshold) against the
  batch :func:`repro.core.episodes.episode_matrix` under
  :func:`~repro.core.episodes.detect_knee`.  These are 1.0 / 1.0 by
  construction (shared knee code, identical rates) -- scoring them is
  the regression trap that keeps it that way;
* **blame agreement** -- the online running buckets against the batch
  Table 5 classification at the paper's f = 5% (no pair exclusion on
  either side: an online observer cannot know which pairs will prove
  permanent);
* **detection latency** -- the onset-to-alert gap distribution of the
  hysteresis detector, the number the planted-fault SLO bounds;
* **digest reproduction** -- re-exporting the replayed alert stream
  must land on the byte digest recorded in the run manifest.

The verdict is appended to the committed bench trajectory as a
``detect`` entry (carrying the alert count + digest so ``repro runs
check`` gains an alert-stream baseline), and the CLI exits non-zero on
any mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.dataset import MIN_SAMPLES_PER_HOUR
from repro.core.episodes import RateMatrix, detect_knee, episode_matrix
from repro.obs.online.detector import BLAME_THRESHOLD, OnlineDetector
from repro.obs.online.rules import RuleError, rules_from_dicts
from repro.obs.runstore.manifest import RunManifest
from repro.obs.runstore.store import ALERTS_FILE, EVENTS_FILE, serialize_alerts


class DetectError(RuntimeError):
    """The run cannot be scored (no event stream, unreadable files...)."""


@dataclass
class DetectReport:
    """Everything ``repro detect`` renders and gates on."""

    run_id: str
    hours: int
    #: Per-side episode-set agreement online vs batch.
    episode_cells: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Online vs batch blame buckets at f = 5%.
    blame_online: Dict[str, int] = field(default_factory=dict)
    blame_batch: Dict[str, int] = field(default_factory=dict)
    #: Final thresholds, per side: online knee vs batch knee.
    thresholds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    latency: Dict[str, Any] = field(default_factory=dict)
    alert_count: int = 0
    alerts_by_rule: Dict[str, int] = field(default_factory=dict)
    #: Replayed-stream digest and whether it matches the manifest's.
    digest: Optional[str] = None
    digest_recorded: Optional[str] = None

    @property
    def blame_match(self) -> bool:
        """True when online and batch bucket counts agree exactly."""
        return self.blame_online == self.blame_batch

    @property
    def digest_match(self) -> Optional[bool]:
        """True/False vs the recorded digest; None when none recorded."""
        if self.digest_recorded is None:
            return None
        return self.digest == self.digest_recorded

    @property
    def ok(self) -> bool:
        """The gate: exact episode sets, exact blame, digest reproduced."""
        for side_scores in self.episode_cells.values():
            if side_scores["precision"] != 1.0 or side_scores["recall"] != 1.0:
                return False
        if not self.blame_match:
            return False
        if self.digest_match is False:
            return False
        return True

    def trajectory_entry(self, config: Dict[str, Any]) -> Dict[str, Any]:
        """The ``detect`` bench observation appended to the trajectory."""
        return {
            "bench": "detect",
            "config": dict(config),
            "run_id": self.run_id,
            "alerts": {"count": self.alert_count, "digest": self.digest},
            "detect": {
                "episode_cells": self.episode_cells,
                "blame_match": self.blame_match,
                "latency": self.latency,
                "ok": self.ok,
            },
        }


def _read_events(path: Path) -> List[Dict[str, Any]]:
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise DetectError(f"cannot read {path}: {exc}")
    events: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # tolerate a torn tail line
        if isinstance(record, dict):
            events.append(record)
    return events


def _rules_from_run(run_dir: Path) -> Optional[List[Any]]:
    """The rules the original run alerted with (its ``alerts.jsonl``
    header), so the replay fires the same alerts; None when the run
    predates alert persistence (defaults apply)."""
    path = run_dir / ALERTS_FILE
    if not path.is_file():
        return None
    for record in _read_events(path):
        if record.get("type") == "header":
            try:
                return rules_from_dicts(record.get("rules") or [])
            except RuleError as exc:
                raise DetectError(f"{path}: bad rules header: {exc}")
    return None


def _batch_matrices(
    events: List[Dict[str, Any]], hours: int
) -> Dict[str, RateMatrix]:
    """Reconstruct the batch per-side rate matrices from ``hour_stats``.

    The batch pipeline only ever sees per-entity-hour aggregates
    (:func:`~repro.core.episodes.client_rate_matrix` sums the cube down
    to exactly these vectors), so rebuilding them from the telemetry
    stream reproduces its inputs bit for bit.
    """
    sizes: Dict[str, Optional[int]] = {"client": None, "server": None}
    for event in events:
        if event.get("type") == "hour_stats":
            sizes["client"] = len(event.get("ct") or [])
            sizes["server"] = len(event.get("st") or [])
            break
    if sizes["client"] is None:
        raise DetectError(
            "run's event stream has no hour_stats events -- was it "
            "recorded with online detection on (--detect/--live)?"
        )
    trans = {
        side: np.zeros((n, hours), dtype=np.int64)
        for side, n in sizes.items()
    }
    fails = {
        side: np.zeros((n, hours), dtype=np.int64)
        for side, n in sizes.items()
    }
    for event in events:
        if event.get("type") != "hour_stats":
            continue
        h = int(event.get("hour") or 0)
        for side, t_key, f_key in (
            ("client", "ct", "cf"), ("server", "st", "sf"),
        ):
            trans[side][:, h] = event.get(t_key) or 0
            fails[side][:, h] = event.get(f_key) or 0
    matrices: Dict[str, RateMatrix] = {}
    for side in ("client", "server"):
        rates = np.full(trans[side].shape, np.nan, dtype=float)
        enough = trans[side] >= MIN_SAMPLES_PER_HOUR
        rates[enough] = fails[side][enough] / trans[side][enough]
        matrices[side] = RateMatrix(rates=rates, transactions=trans[side])
    return matrices


def _batch_blame(
    events: List[Dict[str, Any]],
    flags: Dict[str, np.ndarray],
) -> Dict[str, int]:
    """Batch Table 5 bucketing of the TCP triples under ``flags``."""
    counts = {"server": 0, "client": 0, "both": 0, "other": 0}
    client_flags = flags["client"]
    server_flags = flags["server"]
    for event in events:
        if event.get("type") != "hour_stats":
            continue
        h = int(event.get("hour") or 0)
        for triple in event.get("tcp") or []:
            ci, si, n = int(triple[0]), int(triple[1]), int(triple[2])
            c = bool(client_flags[ci, h])
            s = bool(server_flags[si, h])
            if s and not c:
                counts["server"] += n
            elif c and not s:
                counts["client"] += n
            elif c and s:
                counts["both"] += n
            else:
                counts["other"] += n
    return counts


def _cell_scores(
    online: Set[Tuple[int, int]], batch: Set[Tuple[int, int]]
) -> Dict[str, float]:
    true_positive = len(online & batch)
    precision = true_positive / len(online) if online else 1.0
    recall = true_positive / len(batch) if batch else 1.0
    return {
        "online": len(online),
        "batch": len(batch),
        "precision": precision,
        "recall": recall,
    }


def run_detect(run_dir: Path, manifest: RunManifest) -> DetectReport:
    """Score one recorded run's online detection against batch."""
    events_path = run_dir / EVENTS_FILE
    if not events_path.is_file():
        raise DetectError(
            f"{manifest.run_id}: no {EVENTS_FILE} in {run_dir} -- record "
            "the run with --detect (or --live/--serve-metrics) first"
        )
    events = _read_events(events_path)
    rules = _rules_from_run(run_dir)

    detector = OnlineDetector(rules=rules)
    for event in events:
        detector.update(event)
    detector.drain_pending()

    last = detector.last_folded_hour
    hours = detector.hours_total or ((last + 1) if last is not None else 0)
    if detector.hours_folded == 0:
        raise DetectError(
            f"{manifest.run_id}: event stream carries no hour_stats events"
        )

    matrices = _batch_matrices(events, hours)
    report = DetectReport(run_id=manifest.run_id, hours=hours)

    blame_flags: Dict[str, np.ndarray] = {}
    for side in ("client", "server"):
        matrix = matrices[side]
        batch_knee = detect_knee(matrix)
        online_threshold = detector.final_threshold(side)
        report.thresholds[side] = {
            "online": online_threshold, "batch": batch_knee,
        }
        batch_flags = episode_matrix(matrix, batch_knee)
        batch_cells = {
            (int(i), int(h)) for i, h in zip(*np.nonzero(batch_flags))
        }
        online_cells = detector.final_flags(side)
        report.episode_cells[side] = _cell_scores(online_cells, batch_cells)
        blame_flags[side] = episode_matrix(matrix, BLAME_THRESHOLD)

    report.blame_online = dict(sorted(detector.blame.items()))
    report.blame_batch = dict(sorted(_batch_blame(events, blame_flags).items()))

    snap = detector.snapshot()
    report.latency = snap["detection_latency_hours"]
    report.alert_count = snap["alert_count"]
    report.alerts_by_rule = snap["alerts_by_rule"]

    exported = detector.export()
    report.digest = hashlib.sha256(
        serialize_alerts(exported["lines"])
    ).hexdigest()
    recorded = (manifest.alerts_summary or {}).get("digest")
    report.digest_recorded = recorded
    return report


def render_report(report: DetectReport) -> str:
    """Human-readable ``repro detect`` output."""
    lines: List[str] = []
    lines.append(
        f"detection quality for run {report.run_id} "
        f"({report.hours} hours)"
    )
    lines.append("")
    lines.append("-- episode sets (online final vs batch) --")
    for side in ("client", "server"):
        scores = report.episode_cells.get(side)
        if scores is None:
            continue
        thresholds = report.thresholds.get(side, {})
        lines.append(
            f"{side:<7} precision={scores['precision']:.3f} "
            f"recall={scores['recall']:.3f} "
            f"(online {scores['online']} cells, batch {scores['batch']}; "
            f"f_online={thresholds.get('online', 0):.4f} "
            f"f_batch={thresholds.get('batch', 0):.4f})"
        )
    lines.append("")
    lines.append(f"-- blame at f={BLAME_THRESHOLD:.0%} (online vs batch) --")
    for bucket in ("server", "client", "both", "other"):
        a = report.blame_online.get(bucket, 0)
        b = report.blame_batch.get(bucket, 0)
        marker = "" if a == b else "   <-- MISMATCH"
        lines.append(f"{bucket:<7} {a:>10} vs {b:>10}{marker}")
    lines.append("")
    latency = report.latency or {}
    if latency.get("count"):
        lines.append(
            f"detection latency (hours): mean={latency['mean']:.2f} "
            f"p50={latency['p50']} max={latency['max']} "
            f"over {latency['count']} episodes"
        )
    else:
        lines.append("detection latency: no episodes opened")
    lines.append(
        f"alerts fired: {report.alert_count} "
        + (
            "(" + ", ".join(
                f"{rule}={count}"
                for rule, count in sorted(report.alerts_by_rule.items())
            ) + ")"
            if report.alerts_by_rule else ""
        )
    )
    if report.digest_match is None:
        lines.append(f"alert digest: {report.digest} (none recorded to compare)")
    elif report.digest_match:
        lines.append(f"alert digest: reproduced ({report.digest[:16]}...)")
    else:
        lines.append("alert digest: MISMATCH")
        lines.append(f"  recorded: {report.digest_recorded}")
        lines.append(f"  replayed: {report.digest}")
    lines.append("")
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
