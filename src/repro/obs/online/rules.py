"""The declarative alert-rule engine for online detection.

A rule file is a TOML or JSON document with a ``rules`` list; each rule
is one flat table.  The three kinds mirror what an operator of the
paper's measurement infrastructure would page on:

``episode-opened``
    A failure episode opened for some entity (optionally restricted to
    one ``side`` -- client or server -- and to episodes whose observed
    peak rate is at least ``min_peak_rate``).  Fires once per opened
    episode.

``blame-verdict``
    The running blame attribution crossed a line: the named ``side``'s
    share of classified TCP failures reached ``min_fraction`` with at
    least ``min_total`` failures classified.  Latching -- fires once
    per run.

``failure-rate-burn``
    The overall hourly failure rate was at least ``rate`` for ``hours``
    consecutive simulated hours.  Latching.

``slo-burn``
    The failure rate over the trailing ``hours`` window consumed the
    error budget (``1 - objective``) at at least ``burn`` times the
    sustainable pace -- the multi-window burn-rate alert the SLO engine
    (:mod:`repro.obs.horizon.slo`) reports on ``/slo``.  Latching.

TOML::

    [[rules]]
    name = "server-episode"
    kind = "episode-opened"
    side = "server"
    severity = "page"

JSON is the same shape (``{"rules": [...]}``); a bare JSON list is also
accepted.  TOML parsing needs :mod:`tomllib` (Python 3.11+); on 3.10
only JSON rule files load, and the error says so.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

try:
    import tomllib
except ImportError:  # Python 3.10: JSON rule files only.
    tomllib = None

EPISODE_OPENED = "episode-opened"
BLAME_VERDICT = "blame-verdict"
FAILURE_RATE_BURN = "failure-rate-burn"
SLO_BURN = "slo-burn"

RULE_KINDS = (EPISODE_OPENED, BLAME_VERDICT, FAILURE_RATE_BURN, SLO_BURN)

_SIDES = ("client", "server")


class RuleError(ValueError):
    """A rule file or rule definition that cannot be used."""


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting condition."""

    name: str
    kind: str
    #: ``episode-opened``/``blame-verdict``: restrict to one side
    #: (``client`` or ``server``); ``None`` means either side.
    side: Optional[str] = None
    #: ``episode-opened``: ignore episodes whose peak observed rate at
    #: open time is below this.
    min_peak_rate: float = 0.0
    #: ``blame-verdict``: the side's share of classified failures.
    min_fraction: float = 0.5
    #: ``blame-verdict``: classified-failure floor before the fraction
    #: is meaningful.
    min_total: int = 100
    #: ``failure-rate-burn``: the overall-rate floor ...
    rate: float = 0.05
    #: ... and how many consecutive hours it must hold.
    #: ``slo-burn``: the trailing window length, in hours.
    hours: int = 3
    #: ``slo-burn``: the availability objective the budget derives from.
    objective: float = 0.99
    #: ``slo-burn``: fire when the windowed failure rate consumes the
    #: error budget at at least this multiple of the sustainable pace
    #: (burn = window rate / (1 - objective)).
    burn: float = 10.0
    #: Free-form severity label carried onto every alert the rule fires.
    severity: str = "warning"

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("rule needs a name")
        if self.kind not in RULE_KINDS:
            raise RuleError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(RULE_KINDS)})"
            )
        if self.side is not None and self.side not in _SIDES:
            raise RuleError(
                f"rule {self.name!r}: side must be 'client' or 'server', "
                f"got {self.side!r}"
            )
        if self.kind == BLAME_VERDICT and self.side is None:
            raise RuleError(
                f"rule {self.name!r}: blame-verdict needs a side"
            )
        if not 0.0 <= self.min_fraction <= 1.0:
            raise RuleError(
                f"rule {self.name!r}: min_fraction out of [0, 1]"
            )
        if self.kind in (FAILURE_RATE_BURN, SLO_BURN) and self.hours < 1:
            raise RuleError(
                f"rule {self.name!r}: burn needs hours >= 1"
            )
        if self.kind == SLO_BURN:
            if not 0.0 < self.objective < 1.0:
                raise RuleError(
                    f"rule {self.name!r}: objective out of (0, 1)"
                )
            if self.burn <= 0.0:
                raise RuleError(
                    f"rule {self.name!r}: burn multiple must be > 0"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (the ``alerts.jsonl`` header records it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "AlertRule":
        """Build from a parsed rule table, rejecting unknown keys."""
        if not isinstance(raw, dict):
            raise RuleError(f"rule entry is not a table: {raw!r}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise RuleError(
                f"rule {raw.get('name', '?')!r}: unknown keys "
                f"{', '.join(unknown)}"
            )
        return cls(**raw)


#: The rules active when no ``--alert-rules`` file is given: open
#: episodes on either side page, a server-majority blame verdict and a
#: sustained overall burn warn.
DEFAULT_RULES = (
    AlertRule(name="episode-opened", kind=EPISODE_OPENED, severity="page"),
    AlertRule(
        name="server-blame-majority", kind=BLAME_VERDICT, side="server",
        min_fraction=0.5, min_total=100,
    ),
    AlertRule(
        name="overall-burn", kind=FAILURE_RATE_BURN, rate=0.05, hours=3,
    ),
)

#: Multi-window error-budget burn rules (the standard fast/slow pairing:
#: a 1h window at a page-worthy burn multiple, a 6h window at a slower
#: one).  The serve daemon appends these to :data:`DEFAULT_RULES`; batch
#: ``--detect`` runs opt in via an ``--alert-rules`` file.
SLO_BURN_RULES = (
    AlertRule(
        name="slo-fast-burn", kind=SLO_BURN, objective=0.99, burn=14.4,
        hours=1, severity="page",
    ),
    AlertRule(
        name="slo-slow-burn", kind=SLO_BURN, objective=0.99, burn=6.0,
        hours=6, severity="ticket",
    ),
)


def rules_from_dicts(entries: Sequence[Dict[str, Any]]) -> List[AlertRule]:
    """Materialize rules from parsed tables, enforcing unique names."""
    rules = [AlertRule.from_dict(entry) for entry in entries]
    names = [r.name for r in rules]
    if len(names) != len(set(names)):
        raise RuleError("duplicate rule names")
    if not rules:
        raise RuleError("rule file defines no rules")
    return rules


def load_rules(path: str) -> List[AlertRule]:
    """Load an alert-rule file (TOML by suffix, JSON otherwise)."""
    if path.endswith(".toml"):
        if tomllib is None:
            raise RuleError(
                f"{path}: TOML rule files need Python 3.11+ (tomllib); "
                "use a JSON rule file instead"
            )
        with open(path, "rb") as fh:
            document = tomllib.load(fh)
    else:
        with open(path, "r", encoding="utf-8") as fh:
            try:
                document = json.load(fh)
            except json.JSONDecodeError as exc:
                raise RuleError(f"{path}: not valid JSON ({exc})") from exc
    if isinstance(document, list):
        entries = document
    elif isinstance(document, dict):
        entries = document.get("rules")
        if entries is None:
            raise RuleError(f"{path}: no 'rules' list")
    else:
        raise RuleError(f"{path}: unexpected document shape")
    try:
        return rules_from_dicts(entries)
    except RuleError as exc:
        raise RuleError(f"{path}: {exc}") from exc
