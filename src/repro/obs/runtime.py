"""Process-wide observability state.

Library code reaches the active registry/tracer through this module so a
CLI run (or a test) can swap in a fresh :class:`MetricsRegistry`, a
:class:`NullRegistry`, or an enabled :class:`Tracer` without threading
objects through every constructor::

    from repro import obs

    obs.counter("dns_resolutions_total").inc()
    with obs.span("simulate.hour", hour=h):
        ...
    obs.event("rng.fork", name="faults", seed=123)
"""

from __future__ import annotations

import contextlib
import logging
from typing import Optional, Tuple

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracing import Tracer

logger = logging.getLogger("repro")


class NullEmitter:
    """Disabled progress emitter: ``emit`` is a no-op.

    The live-telemetry counterpart of :class:`NullRegistry` -- engine
    code guards the (mildly) expensive per-hour count summation behind
    ``emitter.enabled`` so a non-``--live`` run pays one attribute read
    per hour and nothing else.
    """

    enabled = False

    def emit(self, kind: str, /, **fields) -> None:  # noqa: D102 - no-op
        pass


NULL_EMITTER = NullEmitter()

_registry: MetricsRegistry = MetricsRegistry()
_tracer: Tracer = Tracer()
_emitter = NULL_EMITTER

NULL_REGISTRY = NullRegistry()


def registry() -> MetricsRegistry:
    """The active metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The active tracer."""
    return _tracer


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Install ``new`` as the active registry; returns the previous one."""
    global _registry
    old, _registry = _registry, new
    return old


def set_tracer(new: Tracer) -> Tracer:
    """Install ``new`` as the active tracer; returns the previous one."""
    global _tracer
    old, _tracer = _tracer, new
    return old


def emitter():
    """The active progress emitter (a no-op unless live telemetry is on)."""
    return _emitter


def set_emitter(new):
    """Install ``new`` as the active emitter; returns the previous one."""
    global _emitter
    old, _emitter = _emitter, new
    return old


@contextlib.contextmanager
def use(
    registry_: Optional[MetricsRegistry] = None,
    tracer_: Optional[Tracer] = None,
):
    """Temporarily install a registry and/or tracer (test support)."""
    old_registry = set_registry(registry_) if registry_ is not None else None
    old_tracer = set_tracer(tracer_) if tracer_ is not None else None
    try:
        yield (registry_ or _registry, tracer_ or _tracer)
    finally:
        if old_registry is not None:
            set_registry(old_registry)
        if old_tracer is not None:
            set_tracer(old_tracer)


# -- convenience pass-throughs (the instrumentation surface) ------------------


def counter(name: str, **labels: str):
    """Counter from the active registry."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: str):
    """Gauge from the active registry."""
    return _registry.gauge(name, **labels)


def histogram(name: str, buckets: Optional[Tuple[float, ...]] = None, **labels: str):
    """Histogram from the active registry."""
    return _registry.histogram(name, buckets, **labels)


def span(name: str, **attrs):
    """Context manager: a span on the active tracer."""
    return _tracer.span(name, **attrs)


def current_span():
    """The active tracer's innermost span (a null span when idle)."""
    return _tracer.current()


def event(name: str, /, **fields) -> None:
    """Record an event on the active tracer's event log.

    Also logged at DEBUG level on the ``repro`` logger so ``-v -v`` runs
    show the event stream even without a trace file.
    """
    _tracer.event(name, **fields)
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug("event %s %s", name, fields)


def progress(kind: str, /, **fields) -> None:
    """Emit a live-telemetry progress event on the active emitter.

    A no-op unless a :mod:`repro.obs.live` bus installed an emitter;
    callers producing non-trivial field payloads should guard on
    ``obs.emitter().enabled`` instead of calling this unconditionally.
    """
    _emitter.emit(kind, **fields)


def inherited_emitter(worker: int):
    """An emitter bound to the telemetry queue inherited over fork.

    Facade for :func:`repro.obs.live.bus.inherited_emitter` so engine
    code (the parallel worker bootstrap) never imports ``obs.live``
    internals -- the layering contract reserves those for the obs layer
    itself.  Returns :data:`NULL_EMITTER` when no queue was parked
    before the fork, exactly like the underlying implementation; the
    live machinery only loads when a queue exists to bind.
    """
    from repro.obs.live.bus import inherited_emitter as _impl

    return _impl(worker)
