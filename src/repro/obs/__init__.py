"""repro.obs -- metrics, tracing, and profiling for the whole pipeline.

The measurement substrate for the reproduction itself: the paper is a
measurement study, and this package is how the simulator and analyses
measure *themselves*.  Three pieces:

* **Metrics** (:mod:`repro.obs.metrics`): a dependency-free, thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms, exported as Prometheus text or a human summary table.
* **Tracing** (:mod:`repro.obs.tracing`): ``with obs.span("simulate.hour",
  hour=h):`` builds a tree of timed spans; a context-var current span
  lets nested library code (DNS resolver, TCP connection, wget) annotate
  without plumbing; spans/events stream to a JSONL file that ``repro
  obs`` replays.
* **Profiling** (:mod:`repro.obs.profiler`): ``stage(...)``/``@timed``
  record per-stage wall time and item counts under uniform
  ``stage_*_total{stage=...}`` metrics.

Everything is off-by-default-cheap: the default tracer is disabled (spans
are shared no-ops) and a :class:`NullRegistry` can be installed to make
metric calls no-ops too, so instrumentation can stay inline in hot paths.
"""

from repro.obs.exporters import summary_table, to_prometheus_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.profiler import StageTimer, stage, timed
from repro.obs.runtime import (
    NULL_EMITTER,
    NULL_REGISTRY,
    NullEmitter,
    counter,
    current_span,
    emitter,
    event,
    gauge,
    histogram,
    inherited_emitter,
    logger,
    progress,
    registry,
    set_emitter,
    set_registry,
    set_tracer,
    span,
    tracer,
    use,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "stage",
    "StageTimer",
    "timed",
    "registry",
    "tracer",
    "set_registry",
    "set_tracer",
    "NullEmitter",
    "NULL_EMITTER",
    "emitter",
    "set_emitter",
    "inherited_emitter",
    "progress",
    "use",
    "counter",
    "gauge",
    "histogram",
    "span",
    "current_span",
    "event",
    "logger",
    "summary_table",
    "to_prometheus_text",
]
