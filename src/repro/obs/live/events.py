"""The streaming-telemetry event vocabulary.

Every record on the telemetry bus is one flat JSON-serializable dict::

    {"type": "hour_done", "t": <unix>, "seq": <per-emitter counter>,
     "worker": <index or None>, ...kind-specific fields...}

The kinds (``EVENT_KINDS``) mirror the simulation's natural grain:

* ``run_start`` / ``run_done`` -- the whole month: hour count, worker
  count, engine, and (on completion) the per-failure-type totals;
* ``shard_start`` / ``shard_done`` -- one worker's contiguous hour
  block, with the worker's wall and CPU seconds on completion;
* ``hour_done`` -- one simulated hour: its RNG stream id and the
  per-failure-type transaction counts for that hour;
* ``hour_stats`` -- one simulated hour's *per-entity* counts, emitted
  only when a consumer asked for them (``emitter.entity_stats``): the
  per-client and per-server transaction/failure vectors plus the sparse
  per-(client, server) TCP-failure triples -- everything the online
  detection pipeline (:mod:`repro.obs.online`) needs to mirror the
  batch episode/blame analysis hour by hour.

The same dicts travel three paths: the multiprocessing queue from
workers to the parent, the ``events.jsonl`` file persisted into
``runs/<run-id>/`` (replayed by ``repro runs show --timeline``), and the
live aggregator feeding the dashboard and the ``/metrics`` endpoint.

Unknown kinds are carried, persisted, and ignored by consumers -- the
stream is additive, like every other schema in this repository.
"""

from __future__ import annotations

from typing import Any, Dict

#: Schema identifier stamped on the ``run_start`` event (and therefore
#: the first line of every persisted ``events.jsonl``).
SCHEMA = "repro.live-events/1"

RUN_START = "run_start"
RUN_DONE = "run_done"
SHARD_START = "shard_start"
SHARD_DONE = "shard_done"
HOUR_DONE = "hour_done"
HOUR_STATS = "hour_stats"

EVENT_KINDS = frozenset({
    RUN_START, RUN_DONE, SHARD_START, SHARD_DONE, HOUR_DONE, HOUR_STATS,
})

#: The per-failure-type count fields an ``hour_done`` event carries
#: (and a ``run_done`` event totals).  Order is presentation order.
FAILURE_FIELDS = ("dns", "tcp", "http", "masked")


def is_event(record: Any) -> bool:
    """True when ``record`` looks like a telemetry event dict."""
    return isinstance(record, dict) and isinstance(record.get("type"), str)


def hour_rate(event: Dict[str, Any]) -> float:
    """Overall failure rate of one ``hour_done`` event (0.0 when idle)."""
    transactions = int(event.get("transactions") or 0)
    if transactions <= 0:
        return 0.0
    failures = sum(int(event.get(f) or 0) for f in FAILURE_FIELDS)
    return failures / transactions
