"""Windowed aggregation of the telemetry stream.

The :class:`LiveAggregator` is the bus subscriber that turns raw events
into everything the dashboard and the ``/metrics`` endpoint render:

* overall progress (hours done / total) and an ETA from the observed
  completion rate;
* one lane per worker: its hour block, hours completed, CPU seconds;
* per-failure-type running counts and a windowed per-hour rate series
  (the dashboard's sparklines);
* a running episode-threshold estimate: the knee of the CDF of hourly
  overall failure rates, via the shared "kneedle" construction in
  :mod:`repro.core.knee` (the same module
  :func:`repro.core.episodes.detect_knee` and the online detector use;
  it is stdlib-only, so no dependency cycle);
* when detection is on, a compact SLO summary (per-side availability,
  error-budget consumption, burn rates) pulled from the horizon
  :class:`~repro.obs.horizon.slo.SLOEngine` through an injected
  provider, so ``/status`` answers the error-budget question without a
  second scrape of ``/slo``.

Thread-safety: ``update`` runs on the bus's drain thread while
``snapshot``/``to_registry`` run on the dashboard timer and HTTP server
threads, so all state sits behind one lock.  Wall-clock reads flow
through the injected ``clock`` (the runstore pattern).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import knee as knee_mod
from repro.obs.live.events import FAILURE_FIELDS, HOUR_DONE, hour_rate
from repro.obs.metrics import MetricsRegistry

#: Fallback episode threshold when the rate CDF is too degenerate for a
#: knee (mirrors the paper's f=5% and ``detect_knee``'s own fallback).
FALLBACK_THRESHOLD = knee_mod.FALLBACK_THRESHOLD

#: Candidate rate window the knee is searched in (as in
#: ``repro.core.episodes.detect_knee``).
KNEE_WINDOW = knee_mod.DEFAULT_CANDIDATE_RANGE


def knee_of_rates(
    rates: List[float],
    candidate_range: Tuple[float, float] = KNEE_WINDOW,
) -> Optional[float]:
    """The knee of a rate sample's CDF, or ``None`` when degenerate.

    ``None`` is the sentinel for "not enough signal to estimate a
    threshold": fewer than three samples inside the candidate window,
    or fewer than three *distinct* values there (an all-equal window
    has a chord of zero length -- any "knee" read off it would be a
    misleading number).  The dashboard renders the sentinel as
    ``knee: —`` and the ``/metrics`` gauge is simply absent.
    """
    samples = sorted(rates)
    if knee_mod.distinct_in_window(samples, candidate_range) < 3:
        return None
    return knee_mod.knee_of_sorted(samples, candidate_range)


class WorkerLane:
    """Mutable progress state of one worker's shard."""

    __slots__ = (
        "worker", "hour_start", "hour_stop", "hours_done", "last_hour",
        "cpu_seconds", "elapsed_seconds", "done",
    )

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self.hour_start: Optional[int] = None
        self.hour_stop: Optional[int] = None
        self.hours_done = 0
        self.last_hour: Optional[int] = None
        self.cpu_seconds = 0.0
        self.elapsed_seconds = 0.0
        self.done = False

    @property
    def hours_total(self) -> Optional[int]:
        """Hours in this lane's shard, when the range is known."""
        if self.hour_start is None or self.hour_stop is None:
            return None
        return self.hour_stop - self.hour_start

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot view of the lane."""
        return {
            "worker": self.worker,
            "hour_start": self.hour_start,
            "hour_stop": self.hour_stop,
            "hours_done": self.hours_done,
            "hours_total": self.hours_total,
            "last_hour": self.last_hour,
            "cpu_seconds": self.cpu_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "done": self.done,
        }


class LiveAggregator:
    """Fold telemetry events into dashboard- and scrape-ready state."""

    def __init__(
        self,
        window_hours: int = 48,
        clock: Callable[[], float] = time.time,
        slo_provider: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.window_hours = window_hours
        self._clock = clock
        #: Optional :meth:`repro.obs.horizon.slo.SLOEngine.document`
        #: hook; when wired (detection on), :meth:`snapshot` carries a
        #: compact error-budget summary so ``/status`` and the dashboard
        #: surface burn without a second scrape.
        self._slo_provider = slo_provider
        self._lock = threading.Lock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.hours_total: Optional[int] = None
        self.workers: Optional[int] = None
        self.engine: Optional[str] = None
        self.hours_done = 0
        self.transactions = 0
        self.failures: Dict[str, int] = {f: 0 for f in FAILURE_FIELDS}
        self._lanes: Dict[int, WorkerLane] = {}
        #: hour -> per-type counts for the sparkline window (pruned to
        #: the most recent ``window_hours`` completed hours).
        self._hour_counts: Dict[int, Dict[str, int]] = {}
        #: All hourly overall failure rates seen (feeds the knee).
        self._hour_rates: List[float] = []
        self.events_seen = 0

    # -- ingestion ------------------------------------------------------------

    def update(self, event: Dict[str, Any]) -> None:
        """Fold one event in (bus drain-thread context)."""
        kind = event.get("type")
        with self._lock:
            self.events_seen += 1
            if self.started_at is None:
                self.started_at = float(event.get("t") or self._clock())
            if kind == "run_start":
                self.hours_total = int(event.get("hours") or 0) or None
                self.workers = event.get("workers")
                self.engine = event.get("engine")
            elif kind == "shard_start":
                lane = self._lane(event)
                lane.hour_start = event.get("hour_start")
                lane.hour_stop = event.get("hour_stop")
            elif kind == HOUR_DONE:
                self._ingest_hour(event)
            elif kind == "shard_done":
                lane = self._lane(event)
                lane.done = True
                lane.cpu_seconds = float(event.get("cpu_seconds") or 0.0)
                lane.elapsed_seconds = float(
                    event.get("elapsed_seconds") or 0.0
                )
            elif kind == "run_done":
                self.finished_at = float(event.get("t") or self._clock())

    def _lane(self, event: Dict[str, Any]) -> WorkerLane:
        worker = int(event.get("worker") or 0)
        lane = self._lanes.get(worker)
        if lane is None:
            lane = self._lanes[worker] = WorkerLane(worker)
        return lane

    def _ingest_hour(self, event: Dict[str, Any]) -> None:
        hour = int(event.get("hour") or 0)
        lane = self._lane(event)
        lane.hours_done += 1
        lane.last_hour = hour
        self.hours_done += 1
        self.transactions += int(event.get("transactions") or 0)
        counts: Dict[str, int] = {}
        for field in FAILURE_FIELDS:
            value = int(event.get(field) or 0)
            self.failures[field] += value
            counts[field] = value
        counts["transactions"] = int(event.get("transactions") or 0)
        self._hour_counts[hour] = counts
        if len(self._hour_counts) > self.window_hours:
            del self._hour_counts[min(self._hour_counts)]
        self._hour_rates.append(hour_rate(event))

    # -- derived views --------------------------------------------------------

    def episode_threshold_estimate(self) -> Optional[float]:
        """Running knee estimate over the hourly overall failure rates.

        ``None`` when the rates seen so far are too degenerate for a
        meaningful knee (see :func:`knee_of_rates`).
        """
        with self._lock:
            rates = list(self._hour_rates)
        return knee_of_rates(rates)

    def snapshot(self) -> Dict[str, Any]:
        """A consistent, render-ready view of everything (locked copy)."""
        with self._lock:
            now = self._clock()
            reference = self.finished_at if self.finished_at else now
            elapsed = (
                reference - self.started_at if self.started_at else 0.0
            )
            eta = None
            if (
                self.hours_total
                and 0 < self.hours_done < self.hours_total
                and elapsed > 0
            ):
                rate = self.hours_done / elapsed
                eta = (self.hours_total - self.hours_done) / rate
            window = [
                self._hour_counts[h] for h in sorted(self._hour_counts)
            ]
            sparks: Dict[str, List[float]] = {}
            for field in FAILURE_FIELDS:
                sparks[field] = [
                    (c[field] / c["transactions"]) if c["transactions"] else 0.0
                    for c in window
                ]
            rates = list(self._hour_rates)
            snap = {
                "engine": self.engine,
                "hours_total": self.hours_total,
                "hours_done": self.hours_done,
                "workers": self.workers,
                "transactions": self.transactions,
                "failures": dict(self.failures),
                "elapsed_seconds": elapsed,
                "eta_seconds": eta,
                "finished": self.finished_at is not None,
                "lanes": [
                    lane.as_dict()
                    for _, lane in sorted(self._lanes.items())
                ],
                "rate_window": sparks,
                "episode_threshold": knee_of_rates(rates),
                "events_seen": self.events_seen,
            }
        # Outside the lock: the SLO engine locks itself, and nothing
        # here still touches aggregator state.
        snap["slo"] = self._slo_summary()
        return snap

    def _slo_summary(self) -> Optional[Dict[str, Any]]:
        """Compact error-budget block for the snapshot (None when off)."""
        if self._slo_provider is None:
            return None
        document = self._slo_provider()
        sides = document["sides"]
        return {
            "objective": document["objective"],
            "hours_folded": document["hours_folded"],
            "availability": {
                side: doc["availability"] for side, doc in sides.items()
            },
            "error_budget_consumed": {
                side: doc["error_budget_consumed"]
                for side, doc in sides.items()
            },
            "burn_rates": document["burn_rates"],
        }

    def to_registry(self) -> MetricsRegistry:
        """The live state as gauges, for the ``/metrics`` endpoint.

        A fresh registry per call: scrape-time state, not accumulation.
        """
        snap = self.snapshot()
        registry = MetricsRegistry()
        registry.gauge("live_hours_total").set(snap["hours_total"] or 0)
        registry.gauge("live_hours_done").set(snap["hours_done"])
        registry.gauge("live_transactions").set(snap["transactions"])
        registry.gauge("live_elapsed_seconds").set(snap["elapsed_seconds"])
        registry.gauge("live_finished").set(1.0 if snap["finished"] else 0.0)
        if snap["episode_threshold"] is not None:
            # Absent, not zero: a scraper must not mistake "no signal
            # yet" for "threshold is 0%".
            registry.gauge("live_episode_threshold_estimate").set(
                snap["episode_threshold"]
            )
        if snap["eta_seconds"] is not None:
            registry.gauge("live_eta_seconds").set(snap["eta_seconds"])
        for field, total in snap["failures"].items():
            registry.gauge("live_failures", type=field).set(total)
        for lane in snap["lanes"]:
            worker = str(lane["worker"])
            registry.gauge("live_worker_hours_done", worker=worker).set(
                lane["hours_done"]
            )
            if lane["cpu_seconds"]:
                registry.gauge("live_worker_cpu_seconds", worker=worker).set(
                    lane["cpu_seconds"]
                )
        return registry
