"""repro.obs.live -- streaming telemetry for in-flight simulations.

The live layer on top of :mod:`repro.obs`: simulation workers emit
structured progress events over a multiprocessing queue
(:mod:`~repro.obs.live.bus`), the parent folds them into windowed
state (:mod:`~repro.obs.live.aggregate`) feeding

* a live ANSI terminal dashboard (:mod:`~repro.obs.live.dashboard`,
  behind ``repro simulate --live``),
* a Prometheus-format ``/metrics`` HTTP endpoint
  (:mod:`~repro.obs.live.server`, behind ``--serve-metrics PORT``), and
* an ``events.jsonl`` stream persisted into the run registry and
  replayed post-hoc by ``repro runs show --timeline``
  (:mod:`~repro.obs.live.timeline`), and
* the online failure-detection pipeline (:mod:`repro.obs.online`,
  behind ``--detect``): streaming episode/blame analysis whose alerts
  surface on the dashboard, on ``/alerts``, and in the run registry's
  ``alerts.jsonl``.

Import as ``from repro.obs import live`` -- :mod:`repro.obs` itself
does **not** import this package eagerly (the CLI and the parallel
driver pull it in only when telemetry is requested), so the zero-cost
default path stays zero-cost.

Determinism contract: nothing here draws randomness or writes into the
dataset; the dataset digest is bit-identical with telemetry on or off,
at any worker count.
"""

from repro.obs.live.aggregate import LiveAggregator, knee_of_rates
from repro.obs.live.bus import QueueEmitter, TelemetryBus, inherited_emitter
from repro.obs.live.dashboard import LiveDashboard, render, render_plain, sparkline
from repro.obs.live.events import EVENT_KINDS, FAILURE_FIELDS, SCHEMA, hour_rate
from repro.obs.live.server import MetricsServer
from repro.obs.live.session import LiveSession
from repro.obs.live.timeline import load_events, render_timeline

__all__ = [
    "EVENT_KINDS",
    "FAILURE_FIELDS",
    "LiveAggregator",
    "LiveDashboard",
    "LiveSession",
    "MetricsServer",
    "QueueEmitter",
    "SCHEMA",
    "TelemetryBus",
    "hour_rate",
    "inherited_emitter",
    "knee_of_rates",
    "load_events",
    "render",
    "render_plain",
    "render_timeline",
    "sparkline",
]
