"""The live HTTP read API for in-flight and daemonized simulations.

``repro simulate --serve-metrics PORT`` and the ``repro serve`` daemon
both mount a :class:`MetricsServer`: a daemon-threaded stdlib HTTP
server exposing a small, versioned, read-only API over the process's
observability state:

* ``/metrics`` -- Prometheus text exposition: the active
  :class:`~repro.obs.metrics.MetricsRegistry` plus the live
  aggregator's and online detector's gauges (``repro_live_*`` /
  ``repro_alert_*``), so a month-long run can sit on an existing
  Prometheus/Grafana stack while it is still in flight;
* ``/healthz`` -- liveness probe (JSON, always 200 while serving);
* ``/status`` -- the run's progress document: sim-clock, chunk cursor,
  ETA, worker lanes (the daemon's status provider, else the live
  aggregator's snapshot);
* ``/alerts`` -- the online detector's alert snapshot;
* ``/episodes`` -- the full episode log (open + closed, with latency);
* ``/blame`` -- running blame attribution and the current verdict --
  queryable sim-hours after fault onset, not at month-end;
* ``/runs`` -- the run registry listing (the same serializer as
  ``repro runs list --json``);
* ``/history`` -- the long-horizon downsampled history rings
  (:class:`~repro.obs.horizon.HistoryStore`; ``?series=``, ``?res=``,
  ``?entity=``, ``?from=``, ``?to=`` select a slice; bad parameters are
  a 400 with the offending name);
* ``/slo`` -- per-side availability, error-budget consumption,
  multi-window burn rates, MTBF/MTTR
  (:class:`~repro.obs.horizon.SLOEngine`);
* ``/`` -- a JSON index of the above.  Unknown paths get a 404 with a
  JSON error body listing the valid endpoints.

Every JSON document is stamped ``"api": "repro.live-api/1"``; fields
are only ever added within a major (the manifest compatibility rule).

The server only ever *reads* observability state -- it can neither slow
the determinism-critical path nor perturb it, and a scrape mid-run
leaves the dataset digest bit-identical to an unscraped run (asserted
in CI).

:class:`ShutdownCoordinator` is the graceful-shutdown half: it installs
SIGTERM/SIGINT handlers so both the batch ``--serve-metrics`` path and
the daemon can flush in-flight work, finalize the run record, and stop
the server cleanly instead of dying mid-write.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qsl

from repro.obs import runtime
from repro.obs.exporters import to_prometheus_text
from repro.obs.live.aggregate import LiveAggregator

DEFAULT_HOST = "127.0.0.1"

#: API schema stamped on every JSON response; additive within a major.
API_VERSION = "repro.live-api/1"

#: The route catalog: path -> one-line description (the ``/`` index and
#: every 404 body list exactly these).
ENDPOINTS = {
    "/": "this index",
    "/healthz": "liveness probe",
    "/status": "run progress: sim-clock, chunk cursor, ETA, worker lanes",
    "/metrics": "Prometheus text exposition",
    "/alerts": "online detector alert snapshot",
    "/episodes": "episode log (open + closed) with detection latency",
    "/blame": "running blame attribution and verdict",
    "/runs": "recorded run registry listing",
    "/history": (
        "downsampled long-horizon history "
        "(?series=&res=&entity=&from=&to=)"
    ),
    "/slo": "availability, error budget, burn rates, MTBF/MTTR",
}


class ShutdownCoordinator:
    """SIGTERM/SIGINT -> one graceful-shutdown request, two flavors.

    ``raise_interrupt=False`` (the daemon): the first signal sets a flag
    the serve loop polls at chunk boundaries, so the in-flight chunk is
    finished and committed before the run record is finalized and the
    server stopped.  ``raise_interrupt=True`` (batch
    ``--serve-metrics``): the signal is converted to
    :class:`KeyboardInterrupt` so the CLI's existing ``finally``
    teardown (live session stop, trace close, metrics export) runs
    exactly as it does for a ^C.

    Handlers are only installable from the main thread (a stdlib
    restriction); elsewhere :meth:`install` is a no-op and returns
    ``False`` -- the flag can still be set programmatically via
    :meth:`request_stop`.  :meth:`restore` puts the previous handlers
    back (tests install/restore around ``os.kill``).
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self, raise_interrupt: bool = False) -> None:
        self.raise_interrupt = raise_interrupt
        self._stop = threading.Event()
        self._previous: Dict[int, Any] = {}
        #: Signal numbers received, in order (observability/tests).
        self.signals_seen: List[int] = []

    def _handle(self, signum, frame) -> None:
        self.signals_seen.append(int(signum))
        self._stop.set()
        runtime.logger.info(
            "received signal %d; finishing in-flight work", signum
        )
        if self.raise_interrupt:
            raise KeyboardInterrupt

    def install(self) -> bool:
        """Install the handlers; False when not on the main thread."""
        try:
            for sig in self.SIGNALS:
                self._previous[sig] = signal.signal(sig, self._handle)
        except ValueError:
            # signal.signal outside the main thread; callers fall back
            # to programmatic request_stop().
            self.restore()
            return False
        return True

    def restore(self) -> None:
        """Reinstall whatever handlers were active before install()."""
        while self._previous:
            sig, previous = self._previous.popitem()
            try:
                signal.signal(sig, previous)
            except (ValueError, TypeError):
                pass

    def request_stop(self) -> None:
        """Programmatic stop request (same flag the signals set)."""
        self._stop.set()

    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a stop is requested (or the timeout elapses)."""
        return self._stop.wait(timeout)


class MetricsServer:
    """The versioned read API on a daemon thread (see module docstring)."""

    def __init__(
        self,
        port: int,
        aggregator: Optional[LiveAggregator] = None,
        registry_provider: Optional[Callable[[], object]] = None,
        host: str = DEFAULT_HOST,
        detector=None,
        status_provider: Optional[Callable[[], Dict[str, Any]]] = None,
        runs_provider: Optional[Callable[[], Dict[str, Any]]] = None,
        history_provider: Optional[
            Callable[[Dict[str, str]], Dict[str, Any]]
        ] = None,
        slo_provider: Optional[Callable[[], Dict[str, Any]]] = None,
        gauges_provider: Optional[Callable[[], Sequence[Any]]] = None,
    ) -> None:
        self.aggregator = aggregator
        #: An :class:`~repro.obs.online.detector.OnlineDetector` (or
        #: anything with ``snapshot()``/``episodes_document()``/
        #: ``blame_document()``/``to_registry()``); backs ``/alerts``,
        #: ``/episodes``, ``/blame`` and the ``repro_alert_*`` gauges.
        self.detector = detector
        #: The daemon's ``/status`` document factory; when absent the
        #: live aggregator's snapshot serves instead.
        self.status_provider = status_provider
        #: The ``/runs`` document factory (see
        #: :func:`repro.obs.runstore.store.runs_index`).
        self.runs_provider = runs_provider
        #: ``/history``: ``params -> document`` (the daemon passes
        #: ``HistoryStore.document``); a ``KeyError`` from the provider
        #: names a bad query parameter and becomes a 400.
        self.history_provider = history_provider
        #: ``/slo``: the SLO engine's document factory.
        self.slo_provider = slo_provider
        #: Extra gauge registries merged into ``/metrics`` with the
        #: ``repro_`` prefix (the daemon's serve/SLO gauges).
        self.gauges_provider = gauges_provider
        self._registry_provider = registry_provider or runtime.registry
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.scrapes = 0

    # -- rendering ------------------------------------------------------------

    def render_metrics(self) -> str:
        """The full exposition body: process registry + live gauges."""
        body = to_prometheus_text(self._registry_provider())
        if self.aggregator is not None:
            body += to_prometheus_text(
                self.aggregator.to_registry(), prefix="repro_"
            )
        if self.detector is not None:
            body += to_prometheus_text(
                self.detector.to_registry(), prefix="repro_"
            )
        if self.gauges_provider is not None:
            for registry in self.gauges_provider():
                body += to_prometheus_text(registry, prefix="repro_")
        return body

    def render_alerts(self) -> str:
        """The ``/alerts`` JSON document (the detector's snapshot)."""
        _, document = self._alerts_document()
        return _encode_json(document).decode("utf-8")

    # -- JSON documents -------------------------------------------------------

    def _index_document(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "service": "repro live metrics endpoint; scrape /metrics",
            "endpoints": dict(ENDPOINTS),
        }

    def _healthz_document(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"ok": True, "scrapes": self.scrapes}

    def _status_document(self) -> Tuple[int, Dict[str, Any]]:
        if self.status_provider is not None:
            return 200, dict(self.status_provider())
        if self.aggregator is not None:
            return 200, self.aggregator.snapshot()
        return 404, {"error": "no status source wired for this run"}

    def _alerts_document(self) -> Tuple[int, Dict[str, Any]]:
        if self.detector is None:
            return 404, {"error": "online detection not enabled for this run"}
        return 200, self.detector.snapshot()

    def _episodes_document(self) -> Tuple[int, Dict[str, Any]]:
        if self.detector is None:
            return 404, {"error": "online detection not enabled for this run"}
        return 200, self.detector.episodes_document()

    def _blame_document(self) -> Tuple[int, Dict[str, Any]]:
        if self.detector is None:
            return 404, {"error": "online detection not enabled for this run"}
        return 200, self.detector.blame_document()

    def _runs_document(self) -> Tuple[int, Dict[str, Any]]:
        if self.runs_provider is None:
            return 404, {"error": "no run registry wired for this server"}
        return 200, dict(self.runs_provider())

    def _history_document(
        self, query: str
    ) -> Tuple[int, Dict[str, Any]]:
        if self.history_provider is None:
            return 404, {
                "error": "long-horizon history not enabled for this run"
            }
        params = dict(parse_qsl(query, keep_blank_values=True))
        try:
            return 200, dict(self.history_provider(params))
        except KeyError as exc:
            return 400, {"error": str(exc.args[0]) if exc.args else "bad query"}

    def _slo_document(self) -> Tuple[int, Dict[str, Any]]:
        if self.slo_provider is None:
            return 404, {"error": "SLO tracking not enabled for this run"}
        return 200, dict(self.slo_provider())

    def _not_found_document(self, route: str) -> Tuple[int, Dict[str, Any]]:
        return 404, {
            "error": f"no such endpoint: {route}",
            "endpoints": dict(ENDPOINTS),
        }

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        """Bind and start serving on a daemon thread."""
        server = self
        json_routes: Dict[str, Callable[[], Tuple[int, Dict[str, Any]]]] = {
            "/": server._index_document,
            "/healthz": server._healthz_document,
            "/status": server._status_document,
            "/alerts": server._alerts_document,
            "/episodes": server._episodes_document,
            "/blame": server._blame_document,
            "/runs": server._runs_document,
            "/slo": server._slo_document,
        }

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                route, _, query = self.path.partition("?")
                if route == "/history":
                    status, document = server._history_document(query)
                    self._reply(
                        status, _encode_json(document),
                        "application/json; charset=utf-8",
                    )
                    return
                if route == "/metrics":
                    body = server.render_metrics().encode("utf-8")
                    server.scrapes += 1
                    self._reply(
                        200, body,
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                    return
                handler = json_routes.get(route)
                if handler is None:
                    status, document = server._not_found_document(route)
                else:
                    status, document = handler()
                self._reply(
                    status, _encode_json(document),
                    "application/json; charset=utf-8",
                )

            def _reply(
                self, status: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                runtime.logger.debug(
                    "metrics server: " + format, *args
                )

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        runtime.logger.info(
            "serving /metrics on http://%s:%d", *self._httpd.server_address[:2]
        )
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def _encode_json(document: Dict[str, Any]) -> bytes:
    """Serialize a response document, stamped with the API version."""
    stamped = {"api": API_VERSION, **document}
    return (json.dumps(stamped, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
