"""A scrapeable ``/metrics`` endpoint for in-flight simulations.

``repro simulate --serve-metrics PORT`` starts a
:class:`MetricsServer`: a daemon-threaded stdlib HTTP server whose
``/metrics`` route renders, in the Prometheus text exposition format,

* the process's active :class:`~repro.obs.metrics.MetricsRegistry`
  (stage counters, outcome totals -- sparse until workers merge), and
* the live aggregator's gauges (progress, ETA, per-failure-type running
  counts, the episode-threshold estimate), prefixed ``repro_live_*``,

so a month-long run can sit on an existing Prometheus/Grafana stack
while it is still in flight.  Port ``0`` binds an ephemeral port
(tests); the bound port is exposed as :attr:`MetricsServer.port`.

The server only ever *reads* observability state -- it can neither slow
the determinism-critical path nor perturb it, and a scrape mid-run
leaves the dataset digest bit-identical to an unscraped run (asserted
in CI).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs import runtime
from repro.obs.exporters import to_prometheus_text
from repro.obs.live.aggregate import LiveAggregator

DEFAULT_HOST = "127.0.0.1"


class MetricsServer:
    """Serve ``/metrics``, ``/alerts``, and a tiny index, on a daemon thread."""

    def __init__(
        self,
        port: int,
        aggregator: Optional[LiveAggregator] = None,
        registry_provider: Optional[Callable[[], object]] = None,
        host: str = DEFAULT_HOST,
        detector=None,
    ) -> None:
        self.aggregator = aggregator
        #: An :class:`~repro.obs.online.detector.OnlineDetector` (or
        #: anything with ``snapshot()``/``to_registry()``); adds the
        #: ``/alerts`` route and the ``repro_alert_*`` /
        #: ``repro_detection_latency_hours`` gauges when present.
        self.detector = detector
        self._registry_provider = registry_provider or runtime.registry
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.scrapes = 0

    # -- rendering ------------------------------------------------------------

    def render_metrics(self) -> str:
        """The full exposition body: process registry + live gauges."""
        body = to_prometheus_text(self._registry_provider())
        if self.aggregator is not None:
            body += to_prometheus_text(
                self.aggregator.to_registry(), prefix="repro_"
            )
        if self.detector is not None:
            body += to_prometheus_text(
                self.detector.to_registry(), prefix="repro_"
            )
        return body

    def render_alerts(self) -> str:
        """The ``/alerts`` JSON document (the detector's snapshot)."""
        if self.detector is None:
            document = {"error": "online detection not enabled for this run"}
        else:
            document = self.detector.snapshot()
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        """Bind and start serving on a daemon thread."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                route = self.path.split("?", 1)[0]
                if route == "/metrics":
                    body = server.render_metrics().encode("utf-8")
                    server.scrapes += 1
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                elif route == "/alerts":
                    body = server.render_alerts().encode("utf-8")
                    self.send_response(
                        200 if server.detector is not None else 404
                    )
                    self.send_header(
                        "Content-Type", "application/json; charset=utf-8"
                    )
                else:
                    body = (
                        "repro live metrics endpoint; "
                        "scrape /metrics, alerts at /alerts\n"
                    ).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                runtime.logger.debug(
                    "metrics server: " + format, *args
                )

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        runtime.logger.info(
            "serving /metrics on http://%s:%d", *self._httpd.server_address[:2]
        )
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
