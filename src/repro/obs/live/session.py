"""One CLI invocation's live-telemetry wiring, composed and torn down.

:class:`LiveSession` is what ``repro simulate --live --serve-metrics
PORT`` actually constructs: a :class:`~repro.obs.live.bus.TelemetryBus`
spooling events to a temp file, a
:class:`~repro.obs.live.aggregate.LiveAggregator` subscribed to it,
optionally a :class:`~repro.obs.live.dashboard.LiveDashboard` (when
``--live``), a :class:`~repro.obs.live.server.MetricsServer` (when
``--serve-metrics``), and an
:class:`~repro.obs.online.detector.OnlineDetector` (when ``--detect``,
or implied by the other two) folding per-hour entity stats into
episodes, blame, and alerts.  Detection also wires the long-horizon
observers (:class:`~repro.obs.horizon.history.HistoryStore`,
:class:`~repro.obs.horizon.slo.SLOEngine`) onto the detector's ordered
hour stream, so batch runs serve the same ``/history`` and ``/slo``
documents -- and ``repro_slo_*`` gauges -- as the serve daemon.  ``stop()`` tears everything down in
reverse order; the spool file survives until :meth:`cleanup` so the run
recorder can copy it into ``runs/<run-id>/events.jsonl`` after the
content-addressed run id becomes known, and the detector's exported
alert stream rides along into ``alerts.jsonl``.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, Optional

from repro.obs import runtime
from repro.obs.live.aggregate import LiveAggregator
from repro.obs.live.bus import TelemetryBus
from repro.obs.live.dashboard import LiveDashboard
from repro.obs.live.server import MetricsServer


class LiveSession:
    """Bus + aggregator + optional dashboard / ``/metrics`` server /
    online detector."""

    def __init__(
        self,
        dashboard: bool = False,
        serve_port: Optional[int] = None,
        stream=None,
        detect: bool = False,
        rules_path: Optional[str] = None,
    ) -> None:
        fd, self.events_path = tempfile.mkstemp(
            prefix="repro-events-", suffix=".jsonl"
        )
        os.close(fd)
        self.detector = None
        self.history = None
        self.slo = None
        if detect or rules_path is not None:
            # Imported lazily: plain --live/--serve-metrics sessions
            # never pay for the online pipeline.
            from repro.obs.horizon import HistoryStore, SLOEngine
            from repro.obs.online import OnlineDetector, load_rules

            rules = load_rules(rules_path) if rules_path else None
            # The horizon observers ride the detector's hour cursor, so
            # batch runs get the same /history and /slo surfaces (and
            # worker-count invariance) the serve daemon has.
            self.history = HistoryStore()
            self.slo = SLOEngine()
            self.detector = OnlineDetector(
                rules=rules, observers=[self.history, self.slo]
            )
        self.aggregator = LiveAggregator(
            slo_provider=(
                self.slo.document if self.slo is not None else None
            ),
        )
        self.bus = TelemetryBus(
            events_path=self.events_path,
            entity_stats=self.detector is not None,
        )
        self.bus.subscribe(self.aggregator.update)
        if self.detector is not None:
            self.bus.subscribe(self.detector.update)
        self.dashboard: Optional[LiveDashboard] = None
        if dashboard:
            self.dashboard = LiveDashboard(
                self.aggregator,
                stream=stream,
                alerts_provider=(
                    self.detector.snapshot
                    if self.detector is not None else None
                ),
            )
            self.bus.subscribe(self.dashboard.update)
        self.server: Optional[MetricsServer] = None
        if serve_port is not None:
            self.server = MetricsServer(
                serve_port, aggregator=self.aggregator,
                detector=self.detector,
                history_provider=(
                    self.history.document
                    if self.history is not None else None
                ),
                slo_provider=(
                    self.slo.document if self.slo is not None else None
                ),
                gauges_provider=(
                    (lambda: [self.slo.to_registry()])
                    if self.slo is not None else None
                ),
            )
        self._started = False

    @property
    def port(self) -> Optional[int]:
        """The metrics server's bound port, when one is serving."""
        return self.server.port if self.server is not None else None

    def start(self) -> "LiveSession":
        """Start the server (if any) and the bus; install the emitter."""
        if self.server is not None:
            self.server.start()
        self.bus.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Final drain, last dashboard frame, server shutdown."""
        if not self._started:
            return
        self._started = False
        self.bus.stop()
        if self.detector is not None:
            self.detector.drain_pending()
        if self.dashboard is not None:
            self.dashboard.close()
        if self.server is not None:
            self.server.stop()

    def export_alerts(self) -> Optional[Dict[str, Any]]:
        """The detector's persistable alert stream (None when off)."""
        if self.detector is None:
            return None
        return self.detector.export()

    def cleanup(self) -> None:
        """Remove the spool file (after the recorder copied it, if ever)."""
        try:
            os.unlink(self.events_path)
        except OSError:
            pass

    def __enter__(self) -> "LiveSession":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
        self.cleanup()


def log_endpoints(session: LiveSession) -> None:
    """Announce the scrape endpoints on the ``repro`` logger."""
    if session.port is not None:
        runtime.logger.info(
            "live metrics: scrape http://127.0.0.1:%d/metrics", session.port
        )
        if session.detector is not None:
            runtime.logger.info(
                "live alerts: http://127.0.0.1:%d/alerts", session.port
            )
            runtime.logger.info(
                "live SLO: http://127.0.0.1:%d/slo  history: /history",
                session.port,
            )
