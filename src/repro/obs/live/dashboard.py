"""The live ANSI terminal dashboard (and its dumb-terminal fallback).

Rendering is split in two so tests never need a terminal:

* :func:`render` -- pure: an aggregator snapshot in, a multi-line
  string out (progress bar + ETA, per-worker shard lanes, per-failure-
  type rate sparklines, the running episode-threshold estimate);
* :class:`LiveDashboard` -- the bus subscriber that throttles redraws
  and owns the terminal: on a capable TTY it repaints in place with
  cursor-home escapes; on a dumb terminal (or any non-TTY stderr, e.g.
  CI logs) it degrades to one plain progress line per refresh.

Everything writes to *stderr*: stdout stays reserved for the dataset
digest and report output, which CI and tests parse.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

_HOME_AND_CLEAR = "\x1b[H\x1b[J"


def sparkline(values: List[float], width: int = 32) -> str:
    """Unicode block sparkline of ``values``, scaled to their max."""
    if not values:
        return ""
    tail = values[-width:]
    peak = max(tail)
    if peak <= 0:
        return _SPARK_BLOCKS[0] * len(tail)
    chars = []
    for v in tail:
        idx = int(v / peak * (len(_SPARK_BLOCKS) - 1) + 0.5)
        chars.append(_SPARK_BLOCKS[max(0, min(idx, len(_SPARK_BLOCKS) - 1))])
    return "".join(chars)


def _bar(fraction: float, width: int) -> str:
    filled = int(max(0.0, min(1.0, fraction)) * width + 0.5)
    return "#" * filled + "-" * (width - filled)


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _fmt_count(n: int) -> str:
    if n >= 10_000_000:
        return f"{n / 1e6:.0f}M"
    if n >= 1_000_000:
        return f"{n / 1e6:.1f}M"
    if n >= 10_000:
        return f"{n / 1e3:.0f}k"
    return str(n)


def render(snapshot: Dict[str, Any], width: int = 78) -> str:
    """The full dashboard frame for one aggregator snapshot."""
    hours_total = snapshot.get("hours_total") or 0
    hours_done = snapshot.get("hours_done") or 0
    fraction = hours_done / hours_total if hours_total else 0.0
    transactions = snapshot.get("transactions") or 0
    elapsed = snapshot.get("elapsed_seconds") or 0.0
    tx_rate = transactions / elapsed if elapsed > 0 else 0.0

    lines = [
        f"repro simulate -- live ({snapshot.get('engine') or '?'} engine)",
        (
            f"[{_bar(fraction, width - 26)}] "
            f"{hours_done:>4}/{hours_total or '?'} hours {fraction:6.1%}"
        ),
        (
            f"elapsed {_fmt_seconds(elapsed):<8} "
            f"eta {_fmt_seconds(snapshot.get('eta_seconds')):<8} "
            f"{_fmt_count(transactions)} transactions "
            f"({_fmt_count(int(tx_rate))}/s)"
        ),
    ]

    lanes = snapshot.get("lanes") or []
    if lanes:
        lines.append("")
        lines.append("-- workers --")
        for lane in lanes:
            total = lane.get("hours_total")
            done = lane.get("hours_done") or 0
            lane_fraction = done / total if total else 0.0
            state = "done" if lane.get("done") else (
                f"hour {lane['last_hour']}" if lane.get("last_hour") is not None
                else "starting"
            )
            span = (
                f"[{lane['hour_start']},{lane['hour_stop']})"
                if lane.get("hour_start") is not None else "[?]"
            )
            lines.append(
                f"  w{lane['worker']:<3} {span:<12} "
                f"[{_bar(lane_fraction, 24)}] {done:>4}/{total or '?':<4} "
                f"{state}"
            )

    window = snapshot.get("rate_window") or {}
    if any(window.values()):
        lines.append("")
        lines.append(f"-- failure rates (last {len(next(iter(window.values())))}h) --")
        for field, series in window.items():
            current = series[-1] if series else 0.0
            lines.append(
                f"  {field:<7} {current:7.2%}  {sparkline(series)}"
            )

    threshold = snapshot.get("episode_threshold")
    if threshold is not None:
        lines.append("")
        lines.append(
            f"episode threshold estimate f~{threshold:.2%} "
            f"(knee over {hours_done} hourly rates)"
        )
    elif hours_done:
        # Degenerate rate CDF (no traffic yet, or all rates equal):
        # show the sentinel rather than a misleading number.
        lines.append("")
        lines.append(
            f"episode threshold estimate knee: — "
            f"(rate CDF too degenerate over {hours_done} hours)"
        )

    online = snapshot.get("online")
    if online is not None:
        lines.append("")
        lines.append(f"-- alerts ({online.get('alert_count') or 0} fired) --")
        recent = online.get("alerts") or []
        for alert in recent[-4:]:
            entity = f" {alert['entity']}" if alert.get("entity") else ""
            lines.append(
                f"  h{alert.get('hour', '?'):<4} "
                f"[{alert.get('severity', '?')}] "
                f"{alert.get('rule', '?')}{entity}"
            )
        if not recent:
            lines.append("  (none)")
        open_episodes = online.get("open_episodes") or []
        if open_episodes:
            shown = ", ".join(
                f"{e['side']} {e['entity']}" for e in open_episodes[:4]
            )
            more = (
                f" (+{len(open_episodes) - 4} more)"
                if len(open_episodes) > 4 else ""
            )
            lines.append(f"  open episodes: {shown}{more}")

    if snapshot.get("finished"):
        lines.append("simulation finished; finalizing ...")
    return "\n".join(line[:width] for line in lines)


def render_plain(snapshot: Dict[str, Any]) -> str:
    """One-line dumb-terminal progress summary."""
    hours_total = snapshot.get("hours_total") or 0
    hours_done = snapshot.get("hours_done") or 0
    fraction = hours_done / hours_total if hours_total else 0.0
    failures = snapshot.get("failures") or {}
    parts = [
        f"live: {hours_done}/{hours_total or '?'} hours ({fraction:.1%})",
        f"eta {_fmt_seconds(snapshot.get('eta_seconds'))}",
        f"tx {_fmt_count(snapshot.get('transactions') or 0)}",
    ]
    parts.extend(
        f"{field}={count}" for field, count in failures.items() if count
    )
    online = snapshot.get("online")
    if online is not None:
        parts.append(f"alerts={online.get('alert_count') or 0}")
    return "  ".join(parts)


def ansi_capable(stream=None, environ=None) -> bool:
    """Whether ``stream`` (default stderr) can take in-place repaints."""
    stream = stream if stream is not None else sys.stderr
    environ = environ if environ is not None else os.environ
    if environ.get("TERM", "").lower() in ("", "dumb"):
        return False
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


class LiveDashboard:
    """Throttled terminal renderer, subscribed to the telemetry bus."""

    def __init__(
        self,
        aggregator,
        stream=None,
        interval_seconds: float = 0.5,
        clock: Callable[[], float] = time.time,
        ansi: Optional[bool] = None,
        alerts_provider: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.aggregator = aggregator
        self.stream = stream if stream is not None else sys.stderr
        self.interval_seconds = interval_seconds
        self._clock = clock
        self.ansi = ansi_capable(self.stream) if ansi is None else ansi
        #: When online detection is on, a callable returning the
        #: detector's snapshot -- merged into each frame's snapshot as
        #: ``online`` so :func:`render` draws the alerts pane.
        self.alerts_provider = alerts_provider
        self._last_render = 0.0
        self.frames = 0

    def update(self, event: Dict[str, Any]) -> None:
        """Bus callback: repaint if the refresh interval has passed."""
        now = self._clock()
        if now - self._last_render < self.interval_seconds:
            return
        self._last_render = now
        self.draw()

    def draw(self) -> None:
        """Render one frame unconditionally."""
        snapshot = self.aggregator.snapshot()
        if self.alerts_provider is not None:
            snapshot["online"] = self.alerts_provider()
        try:
            if self.ansi:
                self.stream.write(_HOME_AND_CLEAR + render(snapshot) + "\n")
            else:
                self.stream.write(render_plain(snapshot) + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            return
        self.frames += 1

    def close(self) -> None:
        """Final frame so the terminal ends on the completed state."""
        self.draw()
