"""Post-hoc replay of a recorded event stream as a progress timeline.

``repro runs show REF --timeline`` loads the ``events.jsonl`` persisted
into the run directory and renders what the live dashboard *would* have
shown over the run's lifetime: one density lane per worker (each column
is an equal slice of wall time, shaded by how many hours that worker
completed in it), the per-shard summary, and the final per-failure-type
totals.  Together with the trace file this makes any past run's
progress inspectable without re-running it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.obs.live.events import FAILURE_FIELDS, HOUR_DONE, is_event

_DENSITY_BLOCKS = " ▁▂▃▄▅▆▇█"


def load_events(source: Union[str, TextIO]) -> List[Dict[str, Any]]:
    """Parse an ``events.jsonl`` file; torn/alien lines are skipped."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    events: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if is_event(record):
            events.append(record)
    events.sort(key=lambda e: (float(e.get("t") or 0.0), e.get("seq") or 0))
    return events


def _density_row(times: List[float], t0: float, t1: float, width: int) -> str:
    """Shade ``width`` equal wall-time columns by event count."""
    counts = [0] * width
    span = max(t1 - t0, 1e-9)
    for t in times:
        column = int((t - t0) / span * width)
        counts[min(max(column, 0), width - 1)] += 1
    peak = max(counts) if counts else 0
    if peak == 0:
        return " " * width
    row = []
    for c in counts:
        idx = int(c / peak * (len(_DENSITY_BLOCKS) - 1) + 0.5)
        row.append(_DENSITY_BLOCKS[min(idx, len(_DENSITY_BLOCKS) - 1)])
    return "".join(row)


def render_timeline(events: List[Dict[str, Any]], width: int = 60) -> str:
    """The full timeline view of one recorded event stream."""
    if not events:
        return "(no events recorded)"
    hour_events = [e for e in events if e.get("type") == HOUR_DONE]
    run_start = next(
        (e for e in events if e.get("type") == "run_start"), None
    )
    run_done = next(
        (e for e in events if e.get("type") == "run_done"), None
    )
    times = [float(e.get("t") or 0.0) for e in events]
    t0, t1 = min(times), max(times)
    duration = t1 - t0

    lines = [
        f"timeline: {len(events)} events over {duration:.2f}s "
        f"({len(hour_events)} hours simulated)"
    ]
    if run_start is not None:
        lines.append(
            f"run: hours={run_start.get('hours')} "
            f"workers={run_start.get('workers')} "
            f"engine={run_start.get('engine') or '?'}"
        )

    by_worker: Dict[int, List[Dict[str, Any]]] = {}
    for e in hour_events:
        by_worker.setdefault(int(e.get("worker") or 0), []).append(e)
    shard_done = {
        int(e.get("worker") or 0): e
        for e in events if e.get("type") == "shard_done"
    }
    shard_start = {
        int(e.get("worker") or 0): e
        for e in events if e.get("type") == "shard_start"
    }
    if by_worker:
        lines.append("")
        lines.append(
            "-- per-worker hour completions "
            f"(each column ~{duration / width:.3f}s) --"
        )
        for worker in sorted(by_worker):
            worker_events = by_worker[worker]
            row = _density_row(
                [float(e.get("t") or 0.0) for e in worker_events], t0, t1, width
            )
            start = shard_start.get(worker) or {}
            done = shard_done.get(worker) or {}
            span = (
                f"[{start.get('hour_start')},{start.get('hour_stop')})"
                if start.get("hour_start") is not None else ""
            )
            suffix = f"{len(worker_events)}h"
            cpu = done.get("cpu_seconds")
            if cpu is not None:
                suffix += f" cpu={float(cpu):.2f}s"
            lines.append(f"  w{worker:<3} |{row}| {span} {suffix}")

    totals: Dict[str, int] = {f: 0 for f in FAILURE_FIELDS}
    transactions = 0
    for e in hour_events:
        transactions += int(e.get("transactions") or 0)
        for f in FAILURE_FIELDS:
            totals[f] += int(e.get(f) or 0)
    if transactions:
        lines.append("")
        breakdown = "  ".join(
            f"{f}={totals[f]}" for f in FAILURE_FIELDS
        )
        lines.append(
            f"totals: {transactions} transactions  {breakdown}"
        )
    if run_done is not None:
        lines.append("run completed (run_done recorded)")
    elif hour_events:
        lines.append("(stream ends without run_done -- interrupted run?)")
    return "\n".join(lines)


def summarize_events_file(path: str, width: int = 60) -> Optional[str]:
    """Timeline for ``path`` or None when the file is absent/empty."""
    try:
        events = load_events(path)
    except OSError:
        return None
    if not events:
        return None
    return render_timeline(events, width=width)
