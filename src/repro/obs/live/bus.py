"""The telemetry bus: emitters on one side, a drain thread on the other.

Topology::

    worker 0 --\
    worker 1 ---> multiprocessing.Queue ---> drain thread ---> subscribers
    parent  --/                                                 (aggregator,
                                                                 events file,
                                                                 dashboard)

Workers (and the parent itself, on the sequential path) hold a
:class:`QueueEmitter` installed process-wide via
:func:`repro.obs.runtime.set_emitter`; engine code reaches it as
``obs.emitter()`` and pays nothing when telemetry is off (the default
:class:`~repro.obs.runtime.NullEmitter`).

The queue is shared with forked worker processes by *inheritance*: the
parent parks it in a module-level global before the process pool is
created (:func:`TelemetryBus.start`), and :func:`inherited_emitter`
picks it up inside the child.  On platforms without ``fork`` the pool
children simply see no queue and emit nothing -- the run itself is
unaffected, and the parent still emits shard-completion events as
results arrive.

Emission must never perturb the simulation: emitters swallow queue
errors, carry no RNG state, and only ever *read* dataset counts.  The
dataset digest is therefore bit-identical with telemetry on or off --
the acceptance test of this whole subsystem.

Backpressure: the queue is *bounded* (:data:`DEFAULT_QUEUE_CAPACITY`)
and emitters put without blocking -- a stalled or slow consumer (hung
dashboard terminal, wedged drain thread) makes workers *drop* telemetry
events, never wait for it.  Drops are counted on the emitter
(:attr:`QueueEmitter.drops`) and in the process-local metrics registry
as ``live_events_dropped_total`` (worker registries merge into the
parent after the join, so the ``/metrics`` surface reports the fleet
total as ``repro_live_events_dropped_total``).
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs import runtime
from repro.obs.live.events import SCHEMA

#: Queue a forked worker inherits (set by the parent before the pool is
#: created, cleared on :meth:`TelemetryBus.stop`).
_WORKER_QUEUE = None

#: Whether forked workers should emit per-entity ``hour_stats`` events
#: (parked next to the queue for the same inheritance reason: the online
#: detector's appetite must survive the fork).
_WORKER_ENTITY_STATS = False

#: Bound on undrained telemetry events.  Sized for minutes of full-rate
#: emission: beyond it the consumer is not slow, it is gone, and
#: dropping beats blocking the simulation hot path.
DEFAULT_QUEUE_CAPACITY = 10_000

#: How long the drain thread blocks on an empty queue before re-checking
#: the stop flag.
_DRAIN_POLL_SECONDS = 0.1

#: Marker :meth:`TelemetryBus.stop` sends through the queue itself: the
#: queue is FIFO per putting process, so by the time the drain thread
#: sees it, every event the parent emitted beforehand has been
#: dispatched (a plain stop flag would race the queue's feeder thread
#: and drop just-emitted events).
_STOP_KIND = "__bus_stop__"


class QueueEmitter:
    """Process-local emitter writing events onto a shared queue.

    ``put`` should be non-blocking (``Queue.put_nowait``): when the
    bounded queue is full the event is dropped and counted rather than
    stalling the simulation (see the module docstring).
    """

    enabled = True

    def __init__(
        self,
        put: Callable[[Dict[str, Any]], None],
        worker: Optional[int] = None,
        clock: Callable[[], float] = time.time,
        entity_stats: bool = False,
    ) -> None:
        self._put = put
        self.worker = worker
        self._clock = clock
        self._seq = 0
        #: Engines check this before computing per-entity hour stats --
        #: the (cheap but not free) payload is only built when an
        #: online-analysis consumer asked for it.
        self.entity_stats = entity_stats
        #: Events dropped by this emitter (full queue / dead pipe).
        self.drops = 0

    def emit(self, kind: str, /, **fields) -> None:
        """Stamp and enqueue one event; never raises or blocks."""
        event: Dict[str, Any] = {
            "type": kind,
            "t": self._clock(),
            "seq": self._seq,
            "worker": self.worker,
        }
        event.update(fields)
        self._seq += 1
        try:
            self._put(event)
        except (OSError, ValueError, queue_module.Full):
            # A telemetry hiccup (full queue, closed queue at teardown,
            # dead pipe) must never fail or slow the simulation it is
            # watching: count the drop and move on.
            self.drops += 1
            runtime.registry().counter("live_events_dropped_total").inc()


def inherited_emitter(worker: int):
    """The emitter a (possibly forked) worker process should install.

    Returns a :class:`QueueEmitter` bound to the parent's queue when one
    was parked before the fork, else the shared null emitter.
    """
    if _WORKER_QUEUE is None:
        return runtime.NULL_EMITTER
    return QueueEmitter(
        _WORKER_QUEUE.put_nowait, worker=worker,
        entity_stats=_WORKER_ENTITY_STATS,
    )


class TelemetryBus:
    """Parent-side hub: owns the queue, the drain thread, the sinks.

    Lifecycle::

        bus = TelemetryBus(events_path="/tmp/events.jsonl")
        bus.subscribe(aggregator.update)
        bus.start()           # installs the parent emitter, parks the
        ...                   # queue for forked workers, starts draining
        bus.stop()            # final drain, restore emitter, close file

    Subscribers are called from the drain thread, one event at a time,
    in arrival order; they must be fast and must not raise (a raising
    subscriber is detached and logged, the bus keeps going).
    """

    def __init__(
        self,
        events_path: Optional[str] = None,
        clock: Callable[[], float] = time.time,
        entity_stats: bool = False,
        maxsize: int = DEFAULT_QUEUE_CAPACITY,
    ) -> None:
        self.events_path = events_path
        self._clock = clock
        self.entity_stats = entity_stats
        ctx_methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in ctx_methods else None
        )
        self.queue = self._ctx.Queue(maxsize)
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._sink = None
        self._old_emitter = None
        self.events_seen = 0

    # -- wiring ---------------------------------------------------------------

    def subscribe(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        """Register a per-event callback (drain-thread context)."""
        self._subscribers.append(callback)

    def emitter(self, worker: Optional[int] = None) -> QueueEmitter:
        """A new emitter publishing onto this bus's queue."""
        return QueueEmitter(
            self.queue.put_nowait, worker=worker, clock=self._clock,
            entity_stats=self.entity_stats,
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "TelemetryBus":
        """Open the sink, park the queue for workers, start draining."""
        global _WORKER_QUEUE, _WORKER_ENTITY_STATS
        if self.events_path is not None:
            self._sink = open(self.events_path, "w", encoding="utf-8")
        _WORKER_QUEUE = self.queue
        _WORKER_ENTITY_STATS = self.entity_stats
        self._old_emitter = runtime.set_emitter(self.emitter())
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-telemetry-drain", daemon=True
        )
        self._thread.start()
        runtime.emitter().emit("bus_start", schema=SCHEMA)
        return self

    def stop(self) -> None:
        """Drain what is left, restore the emitter, close the sink."""
        global _WORKER_QUEUE, _WORKER_ENTITY_STATS
        if self._old_emitter is not None:
            runtime.set_emitter(self._old_emitter)
            self._old_emitter = None
        _WORKER_QUEUE = None
        _WORKER_ENTITY_STATS = False
        try:
            # Non-blocking like every other put: on a full queue the
            # drain thread is woken by the stop flag instead, and any
            # backlog is taken synchronously below.
            self.queue.put_nowait({"type": _STOP_KIND})
        except (OSError, ValueError, queue_module.Full):
            self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._stop.set()
        # Worker events can still race the sentinel (their processes
        # flush on exit); take any stragglers synchronously.
        self._drain_remaining()
        if self._sink is not None:
            self._sink.flush()
            self._sink.close()
            self._sink = None
        self.queue.close()

    # -- draining -------------------------------------------------------------

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            try:
                event = self.queue.get(timeout=_DRAIN_POLL_SECONDS)
            except (queue_module.Empty, OSError, ValueError):
                continue
            if event.get("type") == _STOP_KIND:
                return
            self._dispatch(event)

    def _drain_remaining(self) -> None:
        while True:
            try:
                event = self.queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return
            if event.get("type") == _STOP_KIND:
                continue
            self._dispatch(event)

    def _dispatch(self, event: Dict[str, Any]) -> None:
        self.events_seen += 1
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(event, default=str) + "\n")
                self._sink.flush()
            except (OSError, ValueError) as exc:
                runtime.logger.warning("telemetry sink failed: %s", exc)
                self._sink = None
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception as exc:
                runtime.logger.warning(
                    "telemetry subscriber %r detached: %s", callback, exc
                )
                self._subscribers.remove(callback)
