"""Lightweight stage profiler.

Records per-stage wall time and call/item counts into the active metrics
registry under three canonical metrics::

    stage_calls_total{stage=...}     how many times the stage ran
    stage_seconds_total{stage=...}   cumulative wall-clock seconds
    stage_items_total{stage=...}     work units processed (optional)

so every exporter (Prometheus text, the ``obs summary`` table, the bench
baseline) sees one uniform per-stage breakdown.  Use either the context
manager or the decorator::

    with stage("simulate.hours") as st:
        ...
        st.add_items(n_transactions)

    @timed("classify.category_summary")
    def category_summary(dataset): ...
"""

from __future__ import annotations

import functools
import time
from typing import Optional

from repro.obs import runtime


class StageTimer:
    """Handle yielded by :func:`stage`: lets the body report item counts."""

    __slots__ = ("name", "_items", "started")

    def __init__(self, name: str) -> None:
        self.name = name
        self._items = 0
        self.started = time.perf_counter()

    def add_items(self, count: int) -> None:
        """Count ``count`` work units against this stage."""
        self._items += int(count)

    @property
    def elapsed(self) -> float:
        """Seconds since the stage opened."""
        return time.perf_counter() - self.started


class stage:
    """Context manager timing one stage run into the registry.

    Implemented as a class (not ``@contextmanager``) to keep the per-call
    overhead at two ``perf_counter`` calls plus three counter bumps.
    """

    __slots__ = ("name", "_timer", "_span_cm", "_span")

    def __init__(self, name: str, trace: bool = True, **attrs) -> None:
        self.name = name
        self._timer: Optional[StageTimer] = None
        self._span_cm = runtime.span(name, **attrs) if trace else None
        self._span = None

    def __enter__(self) -> StageTimer:
        if self._span_cm is not None:
            self._span = self._span_cm.__enter__()
        self._timer = StageTimer(self.name)
        return self._timer

    def __exit__(self, exc_type, exc, tb) -> bool:
        timer = self._timer
        elapsed = timer.elapsed
        reg = runtime.registry()
        reg.counter("stage_calls_total", stage=self.name).inc()
        reg.counter("stage_seconds_total", stage=self.name).inc(elapsed)
        if timer._items:
            reg.counter("stage_items_total", stage=self.name).inc(timer._items)
        if self._span_cm is not None:
            if timer._items and not self._span.is_null:
                self._span.set(items=timer._items)
            self._span_cm.__exit__(exc_type, exc, tb)
        return False


def timed(name: str):
    """Decorator: run the function as a profiled stage named ``name``."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with stage(name):
                return func(*args, **kwargs)

        wrapper.__wrapped_stage__ = name
        return wrapper

    return decorate
