"""Long-horizon observability: bounded history + SLO tracking.

``repro.obs.horizon`` is what lets the ``repro serve`` daemon run
*indefinitely*: everything in here is O(window), never O(run length).

* :mod:`repro.obs.horizon.history` -- :class:`HistoryStore`, a
  multi-resolution ring-buffer time series (raw hour -> 6h -> day ->
  week rollups) over the per-hour entity stats the online detector
  folds; backs the ``/history`` endpoint.
* :mod:`repro.obs.horizon.slo` -- :class:`SLOEngine`, per-side and
  per-region availability, error-budget consumption, multi-window burn
  rates, and Cloud-Uptime-Archive-style MTBF/MTTR per entity; backs
  ``/slo``, the ``repro_slo_*`` gauges, and ``repro slo RUN``.
* :mod:`repro.obs.horizon.rolling` -- the hour-chained running dataset
  digest that replaces ``MeasurementDataset.digest()`` once retention
  prunes old chunk payloads (the full dataset can no longer be
  rebuilt, but the rolling digest is still bit-comparable to a batch
  oracle).

Layering: this package may import ``repro.core`` (knee/dataset
constants) and is imported by ``repro.serve`` and ``repro.obs.live`` --
never by ``world/`` or ``core/`` engines (enforced by ``repro lint``'s
ARC rules).
"""

from repro.obs.horizon.history import HistoryStore, RESOLUTIONS
from repro.obs.horizon.rolling import (
    dataset_rolling_digest,
    fold_block,
    rolling_seed,
)
from repro.obs.horizon.slo import SLOEngine

__all__ = [
    "HistoryStore",
    "RESOLUTIONS",
    "SLOEngine",
    "dataset_rolling_digest",
    "fold_block",
    "rolling_seed",
]
