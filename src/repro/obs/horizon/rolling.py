"""The hour-chained rolling dataset digest.

Retention mode deletes old chunk payloads, so a resumed daemon can no
longer rebuild the full in-memory dataset -- and therefore can never
call :meth:`MeasurementDataset.digest` at the horizon.  The rolling
digest is the retention-compatible replacement:

    rolling_0 = sha256("repro.rolling-digest/1:" + fingerprint_sha256)
    rolling_h = sha256(rolling_{h-1} + block_digest(hour h's arrays))

i.e. a chain over *per-hour* block digests, seeded from the world
fingerprint.  Three properties make it the right observable:

* **incremental** -- the daemon folds each committed chunk's hours in
  O(chunk) without keeping any earlier hour around;
* **chunk-boundary invariant** -- per-hour links mean re-chunking the
  same plan (different ``--chunk-hours``, different kill points) folds
  the identical sequence;
* **oracle-checkable** -- :func:`dataset_rolling_digest` recomputes the
  same value from any fully materialized batch dataset via
  :meth:`~repro.core.dataset.MeasurementDataset.extract_block`, so a
  retention run's final digest is still bit-comparable to an
  uninterrupted, unretained oracle run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping

import numpy as np

from repro.core.dataset import MeasurementDataset

#: Domain-separation tag hashed into the chain seed.
ROLLING_SCHEMA = "repro.rolling-digest/1"


def rolling_seed(fingerprint_sha256: str) -> str:
    """The chain value before any hour has been folded."""
    return hashlib.sha256(
        (ROLLING_SCHEMA + ":" + fingerprint_sha256).encode("ascii")
    ).hexdigest()


def _link(previous: str, digest: str) -> str:
    return hashlib.sha256((previous + digest).encode("ascii")).hexdigest()


def fold_block(rolling: str, arrays: Mapping[str, np.ndarray]) -> str:
    """Fold every hour of one committed block into the chain, in order.

    ``arrays`` is a chunk's array mapping (hour on the last axis, as
    committed by the chunk store); the block's hour count is read off
    the ``transactions`` array.
    """
    n_hours = int(arrays["transactions"].shape[-1])
    for t in range(n_hours):
        hour_slice: Dict[str, np.ndarray] = {
            name: arr[..., t : t + 1] for name, arr in arrays.items()
        }
        rolling = _link(rolling, MeasurementDataset.block_digest(hour_slice))
    return rolling


def dataset_rolling_digest(
    dataset: MeasurementDataset, fingerprint_sha256: str
) -> str:
    """Recompute the chain from a fully materialized dataset (the oracle)."""
    rolling = rolling_seed(fingerprint_sha256)
    for hour in range(dataset.world.hours):
        rolling = fold_block(rolling, dataset.extract_block(hour, hour + 1))
    return rolling
