"""``repro slo``: the error-budget table for a recorded serve run.

::

    repro slo latest
    repro slo <run-id-or-prefix> --json

Rebuilds the run's SLO ledger from its durable chunk store.  Retention
runs restore the fold state from the chain-verified checkpoint and
replay only the chunks committed after it was last written; runs
without retention replay every committed chunk.  Either way the table
is bit-identical to what the daemon's ``/slo`` endpoint served at the
same sim-hour -- the ledger is a pure function of the committed hours.

Non-serve runs (no chunk store) get a clear message and exit 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.runstore.store import RunStore, RunStoreError, resolve_runs_dir


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro slo`` options."""
    parser.add_argument(
        "ref", nargs="?", default="latest",
        help="serve run id, unique prefix, or 'latest' (default)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw /slo document instead of the table",
    )
    parser.add_argument(
        "--runs-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="registry root (default: $REPRO_RUNS_DIR or ./runs)",
    )


def rebuild_slo(chunks, config) -> "object":
    """Rebuild an :class:`SLOEngine` from a run's durable chunk store.

    The checkpoint (retention runs) carries the ledger up to its chunk
    boundary; chunks past that boundary -- or all of them when there is
    no checkpoint -- are replayed through the same per-hour fold the
    daemon runs.
    """
    from repro.obs.horizon.slo import SLOEngine
    from repro.serve.daemon import hour_entity_stats_from_block, plan_entities

    engine = SLOEngine()
    start_hour = 0
    checkpoint = chunks.load_checkpoint()
    if checkpoint is not None:
        engine.restore_state(checkpoint["slo"])
        start_hour = int(checkpoint["hour"])
    else:
        # No checkpoint: seed entity names from the run's own world
        # plan (cheap -- builds the topology, simulates nothing).
        engine.on_run_start(plan_entities(config))
    for entry, arrays in chunks.replay(start_hour=start_hour):
        h0, h1 = int(entry["hour_start"]), int(entry["hour_stop"])
        for t in range(h1 - h0):
            stats = hour_entity_stats_from_block(arrays, t)
            engine.on_hour(
                h0 + t, stats["ct"], stats["cf"], stats["st"], stats["sf"]
            )
    return engine


def run(args) -> int:
    """Dispatch a parsed ``repro slo`` invocation."""
    from repro.obs.horizon.slo import render_slo_table
    from repro.obs.runstore.chunks import ChunkStore, ChunkStoreError

    store = RunStore(resolve_runs_dir(getattr(args, "runs_dir", None)))
    try:
        run_id = store.resolve(args.ref)
        chunks = ChunkStore(store.run_dir(run_id))
        if not chunks.exists():
            print(
                f"repro slo: run {run_id} has no chunk store -- the SLO "
                "ledger is rebuilt from committed serve chunks; this "
                "looks like a batch run (try `repro serve`)",
                file=sys.stderr,
            )
            return 2
        engine = rebuild_slo(chunks, chunks.config())
    except (RunStoreError, ChunkStoreError, ValueError, KeyError) as exc:
        print(f"repro slo: {exc}", file=sys.stderr)
        return 2
    document = engine.document()
    if getattr(args, "as_json", False):
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"run {run_id}")
    print(render_slo_table(document))
    return 0
