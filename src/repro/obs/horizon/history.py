"""Multi-resolution, fixed-size history of per-hour entity stats.

:class:`HistoryStore` is the bounded memory behind ``/history``: every
folded simulated hour lands in one *cell* per resolution, and each
resolution keeps at most a fixed number of cells in a ring buffer --
so an indefinite ``repro serve --hours 0`` run holds a two-week
raw-hour window, a quarter at 6h, a year at day, and a decade at week
resolution, in constant space, forever.

Rollup invariants (the property tests in ``tests/obs/test_horizon.py``
hold these exactly, not approximately):

* every cell at every resolution is folded **directly from the raw
  hours it spans** -- there is no cascade of partial rollups, so a
  downsampled cell's sums/counts/maxes are *equal* (not close) to a
  recomputation from the raw hour stream;
* **sums add** (``transactions``, ``failures``, per-entity ``t``/``f``,
  per-entity ``valid`` hour counts), **counts add** (``hours``), and
  **maxes max** (``max_rate``, per-entity ``max_rate``) -- the only
  three merge operators, chosen because they are associative and exact
  over the integers and ratio-of-small-int floats involved;
* a cell is **immutable once complete** (``hours == span``): its
  canonical-JSON digest never changes afterwards, and ring-buffer
  eviction of older cells can never perturb a surviving cell's digest.

Entity-hour validity is the dataset's ``MIN_SAMPLES_PER_HOUR`` rule;
an entity's ``max_rate`` only considers its valid hours (0.0 while it
has none -- disambiguated by ``valid == 0``).

Folding must happen strictly in ascending hour order (the online
detector's cursor guarantees this), which makes every document a pure
function of the folded hour sequence -- bit-identical at any worker
count and across kill/resume (state export/restore round-trips the
exact cells).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.core.dataset import MIN_SAMPLES_PER_HOUR
from repro.obs.runstore.manifest import canonical_json

#: Schema stamped on ``/history`` documents and exported state.
HISTORY_SCHEMA = "repro.history/1"

#: (name, span in raw hours, ring capacity in cells).  Capacities are
#: chosen so coarser resolutions cover strictly longer horizons: 2
#: weeks of raw hours, ~12 weeks of 6h, a year of days, 10 years of
#: weeks -- ~1.5k cells total, constant forever.
RESOLUTIONS = (
    ("hour", 1, 336),
    ("6h", 6, 336),
    ("day", 24, 365),
    ("week", 168, 520),
)

_SIDES = ("client", "server")


def cell_digest(cell: Dict[str, Any]) -> str:
    """Canonical-JSON digest of one cell (stable once the cell is full)."""
    return hashlib.sha256(canonical_json(cell).encode("utf-8")).hexdigest()


def _new_cell(index: int, span: int, entities: Dict[str, int]) -> Dict[str, Any]:
    cell: Dict[str, Any] = {
        "index": index,
        "hour_start": index * span,
        "hour_stop": (index + 1) * span,
        "hours": 0,
        "transactions": 0,
        "failures": 0,
        "max_rate": 0.0,
    }
    for side in _SIDES:
        n = entities[side]
        cell[side] = {
            "t": [0] * n,
            "f": [0] * n,
            "valid": [0] * n,
            "max_rate": [0.0] * n,
        }
    return cell


class HistoryStore:
    """Fixed-size cascading-resolution rollups of the hour-stats stream."""

    def __init__(
        self, resolutions: Sequence[tuple] = RESOLUTIONS
    ) -> None:
        self.resolutions = tuple(
            (str(name), int(span), int(capacity))
            for name, span, capacity in resolutions
        )
        self._lock = threading.Lock()
        self._names: Dict[str, List[str]] = {side: [] for side in _SIDES}
        self._regions: List[str] = []
        #: resolution name -> ring of cells, oldest first.
        self._rings: Dict[str, List[Dict[str, Any]]] = {
            name: [] for name, _, _ in self.resolutions
        }
        self._evicted: Dict[str, int] = {
            name: 0 for name, _, _ in self.resolutions
        }
        self._last_folded: Optional[int] = None
        self.hours_folded = 0

    # -- detector-observer protocol ---------------------------------------------

    def on_run_start(self, event: Dict[str, Any]) -> None:
        """Capture the entity rosters (and client regions, if shipped)."""
        with self._lock:
            clients = event.get("clients")
            servers = event.get("servers")
            regions = event.get("client_regions")
            if isinstance(clients, list):
                self._names["client"] = [str(n) for n in clients]
            if isinstance(servers, list):
                self._names["server"] = [str(n) for n in servers]
            if isinstance(regions, list):
                self._regions = [str(r) for r in regions]

    def on_hour(
        self,
        hour: int,
        ct: Sequence[int],
        cf: Sequence[int],
        st: Sequence[int],
        sf: Sequence[int],
    ) -> None:
        """Fold one completed hour into every resolution's current cell."""
        with self._lock:
            if self._last_folded is not None and hour <= self._last_folded:
                raise ValueError(
                    f"history folded out of order: hour {hour} after "
                    f"{self._last_folded}"
                )
            self._last_folded = hour
            self.hours_folded += 1
            transactions = sum(ct)
            failures = sum(cf)
            rate = (failures / transactions) if transactions > 0 else 0.0
            entities = {"client": len(ct), "server": len(st)}
            per_side = {"client": (ct, cf), "server": (st, sf)}
            for name, span, capacity in self.resolutions:
                ring = self._rings[name]
                index = hour // span
                cell = ring[-1] if ring else None
                if cell is None or cell["index"] != index:
                    cell = _new_cell(index, span, entities)
                    ring.append(cell)
                    excess = len(ring) - capacity
                    if excess > 0:
                        del ring[:excess]
                        self._evicted[name] += excess
                cell["hours"] += 1
                cell["transactions"] += transactions
                cell["failures"] += failures
                if rate > cell["max_rate"]:
                    cell["max_rate"] = rate
                for side, (trans, fails) in per_side.items():
                    bucket = cell[side]
                    t_list, f_list = bucket["t"], bucket["f"]
                    valid, max_rate = bucket["valid"], bucket["max_rate"]
                    for i in range(len(trans)):
                        t = int(trans[i])
                        f = int(fails[i])
                        t_list[i] += t
                        f_list[i] += f
                        if t >= MIN_SAMPLES_PER_HOUR:
                            valid[i] += 1
                            r = f / t
                            if r > max_rate[i]:
                                max_rate[i] = r

    # -- documents ---------------------------------------------------------------

    def document(self, params: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        """The ``/history`` response for one query.

        Parameters (all optional): ``series`` = ``overall`` (default) |
        ``client`` | ``server`` | ``region``; ``res`` = resolution name
        (default ``hour``); ``entity`` = an entity name (restricts a
        ``client``/``server`` series to one roster member); ``from`` /
        ``to`` = inclusive/exclusive raw-hour bounds on cell starts.
        """
        params = params or {}
        series = params.get("series") or "overall"
        res = params.get("res") or self.resolutions[0][0]
        entity = params.get("entity")
        known = {name for name, _, _ in self.resolutions}
        if res not in known:
            raise KeyError(
                f"unknown resolution {res!r} "
                f"(expected one of {', '.join(sorted(known))})"
            )
        if series not in ("overall", "client", "server", "region"):
            raise KeyError(
                f"unknown series {series!r} "
                "(expected overall, client, server, or region)"
            )
        try:
            hour_from = int(params["from"]) if "from" in params else None
            hour_to = int(params["to"]) if "to" in params else None
        except ValueError:
            raise KeyError("from/to must be integers (raw sim-hours)")
        with self._lock:
            if entity is not None and series in _SIDES:
                # Validate eagerly: an empty ring must still 400 on an
                # unknown entity, not silently return zero points.
                if entity not in self._names[series]:
                    raise KeyError(f"unknown {series} entity {entity!r}")
            span = next(s for n, s, _ in self.resolutions if n == res)
            cells = [
                cell for cell in self._rings[res]
                if (hour_from is None or cell["hour_start"] >= hour_from)
                and (hour_to is None or cell["hour_start"] < hour_to)
            ]
            points = [
                self._render_cell(cell, series, entity) for cell in cells
            ]
            return {
                "schema": HISTORY_SCHEMA,
                "series": series,
                "resolution": res,
                "span_hours": span,
                "entity": entity,
                "hours_folded": self.hours_folded,
                "last_folded_hour": self._last_folded,
                "evicted_cells": self._evicted[res],
                "point_count": len(points),
                "points": points,
            }

    def _render_cell(
        self, cell: Dict[str, Any], series: str, entity: Optional[str]
    ) -> Dict[str, Any]:
        point = {
            "hour_start": cell["hour_start"],
            "hour_stop": cell["hour_stop"],
            "hours": cell["hours"],
        }
        if series == "overall":
            t, f = cell["transactions"], cell["failures"]
            point.update({
                "transactions": t,
                "failures": f,
                "rate": (f / t) if t > 0 else None,
                "max_rate": cell["max_rate"],
            })
        elif series in _SIDES:
            bucket = cell[series]
            if entity is not None:
                names = self._names[series]
                if entity not in names:
                    raise KeyError(
                        f"unknown {series} entity {entity!r}"
                    )
                i = names.index(entity)
                t, f = bucket["t"][i], bucket["f"][i]
                point.update({
                    "transactions": t,
                    "failures": f,
                    "rate": (f / t) if t > 0 else None,
                    "valid_hours": bucket["valid"][i],
                    "max_rate": bucket["max_rate"][i],
                })
            else:
                t, f = sum(bucket["t"]), sum(bucket["f"])
                point.update({
                    "transactions": t,
                    "failures": f,
                    "rate": (f / t) if t > 0 else None,
                    "entities": len(bucket["t"]),
                    "entities_valid": sum(
                        1 for v in bucket["valid"] if v > 0
                    ),
                })
        else:  # region
            bucket = cell["client"]
            regions: Dict[str, Dict[str, int]] = {}
            for i, region in enumerate(self._regions):
                agg = regions.setdefault(
                    region, {"transactions": 0, "failures": 0}
                )
                agg["transactions"] += bucket["t"][i]
                agg["failures"] += bucket["f"][i]
            point["regions"] = {
                region: {
                    **agg,
                    "rate": (
                        agg["failures"] / agg["transactions"]
                        if agg["transactions"] > 0 else None
                    ),
                }
                for region, agg in sorted(regions.items())
            }
        return point

    def cell_digests(self, res: str) -> List[str]:
        """Digests of the resolution's cells, oldest first (tests)."""
        with self._lock:
            return [cell_digest(cell) for cell in self._rings[res]]

    def cell_counts(self) -> Dict[str, int]:
        """Cells currently held per resolution (bounded by capacity)."""
        with self._lock:
            return {name: len(ring) for name, ring in self._rings.items()}

    # -- checkpoint state --------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """The full JSON-able state (checkpointed at pruning boundaries)."""
        with self._lock:
            return {
                "schema": HISTORY_SCHEMA,
                "resolutions": [list(r) for r in self.resolutions],
                "names": {s: list(self._names[s]) for s in _SIDES},
                "regions": list(self._regions),
                "rings": {
                    name: [dict(cell) for cell in ring]
                    for name, ring in self._rings.items()
                },
                "evicted": dict(self._evicted),
                "last_folded": self._last_folded,
                "hours_folded": self.hours_folded,
            }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore an :meth:`export_state` snapshot (exact round-trip)."""
        with self._lock:
            stored = tuple(
                (str(n), int(s), int(c)) for n, s, c in state["resolutions"]
            )
            if stored != self.resolutions:
                raise ValueError(
                    "history checkpoint was taken under different "
                    f"resolutions ({stored} vs {self.resolutions})"
                )
            self._names = {
                s: [str(n) for n in state["names"][s]] for s in _SIDES
            }
            self._regions = [str(r) for r in state.get("regions") or []]
            self._rings = {
                name: [dict(cell) for cell in state["rings"][name]]
                for name, _, _ in self.resolutions
            }
            self._evicted = {
                name: int(state["evicted"][name])
                for name, _, _ in self.resolutions
            }
            self._last_folded = (
                int(state["last_folded"])
                if state["last_folded"] is not None else None
            )
            self.hours_folded = int(state["hours_folded"])
