"""The SLO engine: availability, error budget, burn rates, MTBF/MTTR.

:class:`SLOEngine` consumes the same per-hour entity stats the online
detector folds and maintains, in O(entities + window) space:

* **availability** per side (client / server) and per client *region*:
  the fraction of *valid* entity-hours (``MIN_SAMPLES_PER_HOUR``
  transactions, exactly the dataset's validity rule) in which the
  entity's failure rate stayed below the paper's fixed f = 5%
  threshold.  The fixed threshold -- not the adaptive knee -- keeps the
  SLO ledger stable over an indefinite horizon: an availability number
  must not change retroactively because the threshold moved;
* **error budget**: with objective ``o`` the budget is ``1 - o``;
  consumption is cumulative unavailability divided by the budget
  (>1.0 means the budget is blown);
* **burn rates** over trailing 1h / 6h / 3d windows of the overall
  failure rate (rate / budget, the standard multi-window burn framing);
* **MTBF / MTTR** per entity, Cloud-Uptime-Archive-style: a *down
  episode* starts when a valid hour crosses the threshold and ends at
  the next valid below-threshold hour; MTBF is up-hours per episode,
  MTTR down-hours per episode.  Invalid hours neither heal nor extend
  an episode -- an unmeasured entity keeps its last known state.

Every quantity is a pure integer-accumulator function of the folded
hour sequence (divisions only at render time), so documents are
bit-identical at any worker count and across kill/resume;
:meth:`export_state` / :meth:`restore_state` round-trip the
accumulators exactly for the retention checkpoint.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core import knee as knee_mod
from repro.core.dataset import MIN_SAMPLES_PER_HOUR
from repro.obs.metrics import MetricsRegistry

#: Schema stamped on ``/slo`` documents and exported state.
SLO_SCHEMA = "repro.slo/1"

#: Default availability objective (two nines of entity-hours).
DEFAULT_OBJECTIVE = 0.99

#: The fixed down threshold (the paper's f = 5%; see module docstring).
DOWN_THRESHOLD = knee_mod.FALLBACK_THRESHOLD

#: Trailing burn-rate windows: (label, hours).
BURN_WINDOWS = (("1h", 1), ("6h", 6), ("3d", 72))

_SIDES = ("client", "server")

_UNKNOWN, _UP, _DOWN = -1, 1, 0


class _SideLedger:
    """Integer availability accumulators for one side's entities."""

    __slots__ = ("names", "up", "down", "valid", "status", "episodes")

    def __init__(self) -> None:
        self.names: List[str] = []
        self.up: List[int] = []
        self.down: List[int] = []
        self.valid: List[int] = []
        self.status: List[int] = []
        self.episodes: List[int] = []

    def resize(self, n: int) -> None:
        while len(self.up) < n:
            self.up.append(0)
            self.down.append(0)
            self.valid.append(0)
            self.status.append(_UNKNOWN)
            self.episodes.append(0)


class SLOEngine:
    """Fold hour stats into an SLO ledger (see module docstring)."""

    def __init__(self, objective: float = DEFAULT_OBJECTIVE) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective out of (0, 1): {objective}")
        self.objective = objective
        self.budget = 1.0 - objective
        self._lock = threading.Lock()
        self._sides = {side: _SideLedger() for side in _SIDES}
        self._regions: List[str] = []
        self._window: Deque[Tuple[int, int, int]] = deque(
            maxlen=max(hours for _, hours in BURN_WINDOWS)
        )
        self.transactions = 0
        self.failures = 0
        self._last_folded: Optional[int] = None
        self.hours_folded = 0

    # -- detector-observer protocol ---------------------------------------------

    def on_run_start(self, event: Dict[str, Any]) -> None:
        with self._lock:
            clients = event.get("clients")
            servers = event.get("servers")
            regions = event.get("client_regions")
            if isinstance(clients, list):
                self._sides["client"].names = [str(n) for n in clients]
            if isinstance(servers, list):
                self._sides["server"].names = [str(n) for n in servers]
            if isinstance(regions, list):
                self._regions = [str(r) for r in regions]

    def on_hour(
        self,
        hour: int,
        ct: Sequence[int],
        cf: Sequence[int],
        st: Sequence[int],
        sf: Sequence[int],
    ) -> None:
        with self._lock:
            if self._last_folded is not None and hour <= self._last_folded:
                raise ValueError(
                    f"SLO ledger folded out of order: hour {hour} after "
                    f"{self._last_folded}"
                )
            self._last_folded = hour
            self.hours_folded += 1
            transactions = sum(ct)
            failures = sum(cf)
            self.transactions += transactions
            self.failures += failures
            self._window.append((hour, transactions, failures))
            for side, trans, fails in (
                ("client", ct, cf), ("server", st, sf)
            ):
                ledger = self._sides[side]
                ledger.resize(len(trans))
                for i in range(len(trans)):
                    t = int(trans[i])
                    if t < MIN_SAMPLES_PER_HOUR:
                        continue
                    ledger.valid[i] += 1
                    if int(fails[i]) / t >= DOWN_THRESHOLD:
                        ledger.down[i] += 1
                        if ledger.status[i] != _DOWN:
                            ledger.episodes[i] += 1
                        ledger.status[i] = _DOWN
                    else:
                        ledger.up[i] += 1
                        ledger.status[i] = _UP

    # -- render-time math --------------------------------------------------------

    def _burn_rates(self) -> Dict[str, Optional[float]]:
        burn: Dict[str, Optional[float]] = {}
        newest = self._last_folded
        for label, hours in BURN_WINDOWS:
            if newest is None:
                burn[label] = None
                continue
            t = f = 0
            for entry_hour, trans, fails in self._window:
                if entry_hour > newest - hours:
                    t += trans
                    f += fails
            burn[label] = ((f / t) / self.budget) if t > 0 else None
        return burn

    def _side_document(self, side: str) -> Dict[str, Any]:
        ledger = self._sides[side]
        up = sum(ledger.up)
        down = sum(ledger.down)
        valid = sum(ledger.valid)
        episodes = sum(ledger.episodes)
        availability = (up / valid) if valid > 0 else None
        return {
            "entities": len(ledger.up),
            "valid_entity_hours": valid,
            "up_entity_hours": up,
            "down_entity_hours": down,
            "availability": availability,
            "error_budget_consumed": (
                (1.0 - availability) / self.budget
                if availability is not None else None
            ),
            "down_episodes": episodes,
            "mtbf_hours": (up / episodes) if episodes > 0 else None,
            "mttr_hours": (down / episodes) if episodes > 0 else None,
        }

    def _region_documents(self) -> Dict[str, Dict[str, Any]]:
        ledger = self._sides["client"]
        grouped: Dict[str, Dict[str, int]] = {}
        for i, region in enumerate(self._regions):
            if i >= len(ledger.up):
                break
            agg = grouped.setdefault(
                region, {"entities": 0, "up": 0, "down": 0, "valid": 0}
            )
            agg["entities"] += 1
            agg["up"] += ledger.up[i]
            agg["down"] += ledger.down[i]
            agg["valid"] += ledger.valid[i]
        documents: Dict[str, Dict[str, Any]] = {}
        for region, agg in sorted(grouped.items()):
            availability = (
                agg["up"] / agg["valid"] if agg["valid"] > 0 else None
            )
            documents[region] = {
                "entities": agg["entities"],
                "valid_entity_hours": agg["valid"],
                "availability": availability,
                "error_budget_consumed": (
                    (1.0 - availability) / self.budget
                    if availability is not None else None
                ),
            }
        return documents

    def _worst_entities(self, limit: int = 10) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for side in _SIDES:
            ledger = self._sides[side]
            for i in range(len(ledger.up)):
                if ledger.valid[i] == 0 or ledger.down[i] == 0:
                    continue
                episodes = ledger.episodes[i]
                name = (
                    ledger.names[i] if i < len(ledger.names)
                    else f"{side}:{i}"
                )
                rows.append({
                    "side": side,
                    "entity": name,
                    "availability": ledger.up[i] / ledger.valid[i],
                    "valid_hours": ledger.valid[i],
                    "down_hours": ledger.down[i],
                    "down_episodes": episodes,
                    "mtbf_hours": (
                        ledger.up[i] / episodes if episodes > 0 else None
                    ),
                    "mttr_hours": (
                        ledger.down[i] / episodes if episodes > 0 else None
                    ),
                })
        rows.sort(
            key=lambda r: (r["availability"], r["side"], r["entity"])
        )
        return rows[:limit]

    def document(self, worst_limit: int = 10) -> Dict[str, Any]:
        """The ``/slo`` response (and the ``repro slo`` table's source)."""
        with self._lock:
            overall_rate = (
                self.failures / self.transactions
                if self.transactions > 0 else None
            )
            return {
                "schema": SLO_SCHEMA,
                "objective": self.objective,
                "budget": self.budget,
                "down_threshold": DOWN_THRESHOLD,
                "hours_folded": self.hours_folded,
                "last_folded_hour": self._last_folded,
                "transactions": self.transactions,
                "failures": self.failures,
                "overall_failure_rate": overall_rate,
                "burn_rates": self._burn_rates(),
                "sides": {
                    side: self._side_document(side) for side in _SIDES
                },
                "regions": self._region_documents(),
                "worst_entities": self._worst_entities(worst_limit),
            }

    def to_registry(self) -> MetricsRegistry:
        """SLO state as gauges (``repro_slo_*`` once the server prefixes)."""
        registry = MetricsRegistry()
        document = self.document(worst_limit=0)
        for side, doc in document["sides"].items():
            if doc["availability"] is not None:
                registry.gauge("slo_availability", side=side).set(
                    doc["availability"]
                )
                registry.gauge(
                    "slo_error_budget_consumed", side=side
                ).set(doc["error_budget_consumed"])
            registry.gauge("slo_down_episodes", side=side).set(
                doc["down_episodes"]
            )
        for label, burn in document["burn_rates"].items():
            if burn is not None:
                registry.gauge("slo_burn_rate", window=label).set(burn)
        return registry

    # -- checkpoint state --------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "schema": SLO_SCHEMA,
                "objective": self.objective,
                "regions": list(self._regions),
                "sides": {
                    side: {
                        "names": list(ledger.names),
                        "up": list(ledger.up),
                        "down": list(ledger.down),
                        "valid": list(ledger.valid),
                        "status": list(ledger.status),
                        "episodes": list(ledger.episodes),
                    }
                    for side, ledger in self._sides.items()
                },
                "window": [list(entry) for entry in self._window],
                "transactions": self.transactions,
                "failures": self.failures,
                "last_folded": self._last_folded,
                "hours_folded": self.hours_folded,
            }

    def restore_state(self, state: Dict[str, Any]) -> None:
        with self._lock:
            if float(state["objective"]) != self.objective:
                raise ValueError(
                    "SLO checkpoint was taken under a different objective "
                    f"({state['objective']} vs {self.objective})"
                )
            self._regions = [str(r) for r in state.get("regions") or []]
            for side in _SIDES:
                stored = state["sides"][side]
                ledger = self._sides[side]
                ledger.names = [str(n) for n in stored["names"]]
                ledger.up = [int(v) for v in stored["up"]]
                ledger.down = [int(v) for v in stored["down"]]
                ledger.valid = [int(v) for v in stored["valid"]]
                ledger.status = [int(v) for v in stored["status"]]
                ledger.episodes = [int(v) for v in stored["episodes"]]
            self._window.clear()
            for entry in state["window"]:
                self._window.append(
                    (int(entry[0]), int(entry[1]), int(entry[2]))
                )
            self.transactions = int(state["transactions"])
            self.failures = int(state["failures"])
            self._last_folded = (
                int(state["last_folded"])
                if state["last_folded"] is not None else None
            )
            self.hours_folded = int(state["hours_folded"])


def render_slo_table(document: Dict[str, Any]) -> str:
    """The ``repro slo`` budget table, rendered from a :meth:`document`."""
    lines: List[str] = []
    objective = document["objective"]
    lines.append(
        f"SLO objective {objective:.4f} "
        f"(budget {document['budget']:.4f}, "
        f"down threshold f={document['down_threshold']:.2f})"
    )
    lines.append(
        f"hours folded: {document['hours_folded']}"
        + (
            f" (through sim-hour {document['last_folded_hour']})"
            if document["last_folded_hour"] is not None else ""
        )
    )
    lines.append("")
    lines.append(
        f"{'side':<14} {'availability':>12} {'budget used':>12} "
        f"{'episodes':>9} {'MTBF h':>8} {'MTTR h':>8}"
    )
    rows = list(document["sides"].items()) + [
        (f"region:{name}", doc) for name, doc in document["regions"].items()
    ]
    def _fmt(value: Optional[float], width: int, spec: str) -> str:
        if value is None:
            return f"{'n/a':>{width}}"
        return f"{value:>{width}{spec}}"

    for name, doc in rows:
        lines.append(
            f"{name:<14} "
            + _fmt(doc.get("availability"), 12, ".6f") + " "
            + _fmt(doc.get("error_budget_consumed"), 12, ".3f") + " "
            + _fmt(doc.get("down_episodes"), 9, "d") + " "
            + _fmt(doc.get("mtbf_hours"), 8, ".1f") + " "
            + _fmt(doc.get("mttr_hours"), 8, ".1f")
        )
    burn = document["burn_rates"]
    lines.append("")
    lines.append(
        "burn rates: " + "  ".join(
            f"{label}={burn[label]:.2f}x" if burn[label] is not None
            else f"{label}=n/a"
            for label, _ in BURN_WINDOWS
        )
    )
    worst = document["worst_entities"]
    if worst:
        lines.append("")
        lines.append("worst entities:")
        for row in worst:
            lines.append(
                f"  {row['side']:<7} {row['entity']:<28} "
                f"avail {row['availability']:.4f}  "
                f"down {row['down_hours']}h/"
                f"{row['down_episodes']} episode(s)"
            )
    return "\n".join(lines) + "\n"
