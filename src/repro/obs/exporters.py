"""Metric exporters: Prometheus text format and the human summary table.

Two renderings of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`to_prometheus_text` -- the ``text/plain; version=0.0.4``
  exposition format, so a scrape endpoint or a ``--metrics PATH`` file
  drops straight into existing dashboards;
* :func:`summary_table` -- the ``obs summary`` fixed-width table a human
  reads after a run, leading with the per-stage wall-time breakdown.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """A valid Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    name = _INVALID_METRIC_CHARS.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    ) + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: Quantiles estimated for every histogram in both exports.
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


def estimate_quantile(
    bucket_pairs: Sequence[Tuple[float, int]], q: float
) -> float:
    """Linearly interpolated quantile from cumulative (bound, count) pairs.

    ``bucket_pairs`` is :meth:`Histogram.bucket_counts` output: cumulative
    counts per upper bound, ``+Inf`` last.  Within the bucket holding the
    target rank the observation mass is assumed uniform (the standard
    ``histogram_quantile`` construction); the lower edge of the first
    bucket is 0.  Ranks landing in the ``+Inf`` bucket clamp to the last
    finite bound -- there is nothing to interpolate towards.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not bucket_pairs:
        return 0.0
    total = bucket_pairs[-1][1]
    if total == 0:
        return 0.0
    target = q * total
    prev_bound, prev_cum = 0.0, 0
    for bound, cum in bucket_pairs:
        if cum >= target:
            if bound == math.inf:
                return prev_bound
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return bound
            frac = (target - prev_cum) / in_bucket
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_cum = bound, cum
    return prev_bound


def to_prometheus_text(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Dump every instrument in the Prometheus exposition format.

    Histograms additionally export interpolated ``<name>_p50`` /
    ``_p95`` / ``_p99`` gauges (grouped after the main families --
    quantile-labelled samples inside a ``TYPE histogram`` family would
    be invalid exposition).
    """
    lines: List[str] = []
    # qname -> sample lines, insertion-ordered so each gauge family is
    # emitted contiguously even when one histogram has many label sets.
    quantile_families: Dict[str, List[str]] = {}
    seen_types = set()
    for metric in registry.collect():
        name = prefix + _sanitize(metric.name)
        if name not in seen_types:
            lines.append(f"# TYPE {name} {metric.kind}")
            seen_types.add(name)
        labels = _render_labels(metric.labels)
        if isinstance(metric, Histogram):
            pairs = metric.bucket_counts()
            for bound, count in pairs:
                bucket_labels = metric.labels + (("le", _fmt(bound)),)
                lines.append(
                    f"{name}_bucket{_render_labels(bucket_labels)} {count}"
                )
            lines.append(f"{name}_sum{labels} {_fmt(metric.sum)}")
            lines.append(f"{name}_count{labels} {metric.count}")
            if metric.count:
                for suffix, q in QUANTILES:
                    qname = f"{name}_{suffix}"
                    quantile_families.setdefault(qname, []).append(
                        f"{qname}{labels} {_fmt(estimate_quantile(pairs, q))}"
                    )
        else:
            lines.append(f"{name}{labels} {_fmt(metric.value)}")
    for qname, samples in quantile_families.items():
        lines.append(f"# TYPE {qname} gauge")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def _stage_rows(registry: MetricsRegistry) -> List[Tuple[str, int, float, int]]:
    """(stage, calls, seconds, items) rows from the canonical stage metrics."""
    calls: Dict[str, float] = {}
    seconds: Dict[str, float] = {}
    items: Dict[str, float] = {}
    for metric in registry.collect():
        labels = dict(metric.labels)
        if "stage" not in labels:
            continue
        target = {
            "stage_calls_total": calls,
            "stage_seconds_total": seconds,
            "stage_items_total": items,
        }.get(metric.name)
        if target is not None:
            target[labels["stage"]] = metric.value
    rows = []
    for stage in sorted(set(calls) | set(seconds)):
        rows.append(
            (
                stage,
                int(calls.get(stage, 0)),
                seconds.get(stage, 0.0),
                int(items.get(stage, 0)),
            )
        )
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def summary_table(registry: MetricsRegistry, title: str = "obs summary") -> str:
    """The human-readable metrics summary (stages, counters, histograms)."""
    lines = [f"== {title} =="]

    stages = _stage_rows(registry)
    if stages:
        lines.append("")
        lines.append("-- stages (by wall time) --")
        lines.append(
            f"{'stage':<38} {'calls':>8} {'total_s':>10} "
            f"{'mean_ms':>10} {'items':>12}"
        )
        for name, calls, seconds, items in stages:
            mean_ms = (seconds / calls * 1000.0) if calls else 0.0
            lines.append(
                f"{name:<38} {calls:>8} {seconds:>10.3f} "
                f"{mean_ms:>10.2f} {items:>12}"
            )

    counters = [
        m for m in registry.collect()
        if m.kind == "counter" and "stage" not in dict(m.labels)
    ]
    if counters:
        lines.append("")
        lines.append("-- counters --")
        for metric in counters:
            label = metric.name + _render_labels(metric.labels)
            lines.append(f"{label:<58} {_fmt(metric.value):>14}")

    gauges = [m for m in registry.collect() if m.kind == "gauge"]
    if gauges:
        lines.append("")
        lines.append("-- gauges --")
        for metric in gauges:
            label = metric.name + _render_labels(metric.labels)
            lines.append(f"{label:<58} {_fmt(metric.value):>14}")

    histograms = [m for m in registry.collect() if isinstance(m, Histogram)]
    if histograms:
        lines.append("")
        lines.append("-- histograms --")
        for metric in histograms:
            label = metric.name + _render_labels(metric.labels)
            pairs = metric.bucket_counts()
            quantiles = " ".join(
                f"{suffix}~{estimate_quantile(pairs, q):.5f}"
                for suffix, q in QUANTILES
            )
            lines.append(
                f"{label:<44} count={metric.count} sum={metric.sum:.4f} "
                f"mean={metric.mean:.5f} {quantiles}"
            )

    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
