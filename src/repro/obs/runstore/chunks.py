"""Chunk-granular dataset commits: the service daemon's durability unit.

``repro serve`` simulates sim-time in chunks of N hours and must be
killable at any moment without losing committed work or (worse)
resuming into a subtly different dataset.  :class:`ChunkStore` provides
that guarantee under ``runs/<run-id>/chunks/``::

    runs/<run-id>/chunks/
      chunks.json               # ChunkStore manifest (schema below)
      chunk-0000-0006.npz       # count arrays for hours [0, 6)
      chunk-0006-0012.npz       # ...

The manifest is the source of truth.  Each commit first writes the
chunk ``.npz`` via a sibling temp file + rename, then appends a chunk
entry to the manifest (also atomically) -- a crash between the two
leaves an orphan ``.npz`` the next resume simply overwrites, never a
manifest entry pointing at missing or torn data.

Integrity is a **digest chain**: every entry carries the chunk's
content digest (:meth:`MeasurementDataset.block_digest` -- field
names, shapes, ``int64``-normalised bytes) and a chain value
``sha256(previous_chain + digest)`` seeded from the manifest header,
so replacing, reordering, or truncating any committed chunk breaks
every later link.  :meth:`replay` re-verifies both per chunk while a
resume rebuilds the dataset, and the final chain value is itself a
compact fingerprint of everything committed so far (served on the
daemon's ``/status``).

Determinism: chunk files are compressed ``.npz`` archives whose *bytes*
are not stable across runs (zip member timestamps); the chain digests
array *contents*, which are -- a resumed run therefore reproduces the
uninterrupted run's chain and final dataset digest bit for bit.

**Retention** (``repro serve --retain-hours N``): :meth:`prune_payloads`
deletes old chunk ``.npz`` payloads while keeping their manifest
entries -- marked ``"pruned": true`` -- so the digest chain stays
fully verifiable from the stored digests even though the bytes are
gone.  A resume can no longer replay pruned hours, so the daemon
writes a **checkpoint record** (:meth:`write_checkpoint`) after every
committed chunk in retention mode: the fold state (detector, history,
SLO ledger, rolling dataset digest) as of a chunk boundary, pinned to
that boundary's chain value.  :meth:`load_checkpoint` refuses a record
whose ``(hour, chain)`` pin does not match the manifest, and
``replay(start_hour=...)`` chain-verifies *every* entry (pruned ones
from their stored digests) while yielding only the still-payloaded
chunks past the checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.dataset import MeasurementDataset
from repro.obs.runstore.manifest import canonical_json, check_schema
from repro.obs.runstore.store import RunStoreError

#: Chunk-manifest schema; additive within the major (see manifest.py).
CHUNKS_SCHEMA = "repro.serve-chunks/1"

#: Directory (under the run directory) holding chunk checkpoints.
CHUNKS_DIR = "chunks"

#: The chunk manifest file name.
CHUNKS_MANIFEST = "chunks.json"

#: The retention checkpoint record (sibling of the chunk manifest).
CHECKPOINT_FILE = "checkpoint.json"

#: Checkpoint-record schema; additive within the major.
CHECKPOINT_SCHEMA = "repro.serve-checkpoint/1"


class ChunkStoreError(RunStoreError):
    """A chunk commit, load, or verification failed."""


def _chain(previous: str, digest: str) -> str:
    """One link of the digest chain."""
    return hashlib.sha256((previous + digest).encode("ascii")).hexdigest()


def _chunk_filename(hour_start: int, hour_stop: int) -> str:
    return f"chunk-{hour_start:04d}-{hour_stop:04d}.npz"


class ChunkStore:
    """Read/write access to one run's incremental chunk commits."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.chunks_dir = self.run_dir / CHUNKS_DIR
        self.manifest_path = self.chunks_dir / CHUNKS_MANIFEST
        self._document: Optional[Dict[str, Any]] = None

    # -- manifest -------------------------------------------------------------

    def exists(self) -> bool:
        """Has this run ever committed (or initialized) chunks?"""
        return self.manifest_path.is_file()

    def initialize(
        self, config: Dict[str, Any], fingerprint_sha256: str,
        run_id: str = "",
    ) -> Dict[str, Any]:
        """Create a fresh, empty chunk manifest for this run.

        ``config`` is the full simulation configuration a resume needs
        to rebuild the world/truth/simulator identically (hours,
        per_hour, seed, fault, chunk_hours); ``fingerprint_sha256``
        pins the world roster so a resume against drifted world-building
        code fails loudly instead of merging counts into wrong axes.
        The chain is seeded from the canonical JSON of both, so two
        runs with different configs can never share a chain prefix.
        """
        seed = hashlib.sha256(
            canonical_json(
                {"schema": CHUNKS_SCHEMA, "config": config,
                 "fingerprint_sha256": fingerprint_sha256}
            ).encode("utf-8")
        ).hexdigest()
        document = {
            "schema": CHUNKS_SCHEMA,
            "run_id": run_id,
            "config": dict(config),
            "fingerprint_sha256": fingerprint_sha256,
            "chain_seed": seed,
            "chunks": [],
        }
        self.chunks_dir.mkdir(parents=True, exist_ok=True)
        self._write_manifest(document)
        self._document = document
        return document

    def load(self) -> Dict[str, Any]:
        """Read (and cache) the chunk manifest; validates the schema."""
        if self._document is not None:
            return self._document
        try:
            document = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ChunkStoreError(
                f"cannot read chunk manifest {self.manifest_path}: {exc}"
            )
        schema = document.get("schema")
        if not isinstance(schema, str):
            raise ChunkStoreError(
                f"{self.manifest_path}: missing schema field"
            )
        check_schema(schema, CHUNKS_SCHEMA)
        self._document = document
        return document

    def _write_manifest(self, document: Dict[str, Any]) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        tmp.replace(self.manifest_path)

    # -- properties of the committed prefix -----------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """The committed chunk entries, in commit (== hour) order."""
        return list(self.load().get("chunks") or [])

    def config(self) -> Dict[str, Any]:
        """The simulation configuration the chunks were committed under."""
        return dict(self.load().get("config") or {})

    def committed_hours(self) -> int:
        """Hours committed so far (chunks are contiguous from hour 0)."""
        entries = self.entries()
        return int(entries[-1]["hour_stop"]) if entries else 0

    def chain_digest(self) -> str:
        """The chain value after the last committed chunk."""
        entries = self.entries()
        if entries:
            return str(entries[-1]["chain"])
        return str(self.load()["chain_seed"])

    # -- committing -----------------------------------------------------------

    def commit(
        self,
        hour_start: int,
        hour_stop: int,
        arrays: Dict[str, np.ndarray],
    ) -> Dict[str, Any]:
        """Durably commit one chunk's count arrays; returns its entry.

        Chunks must be committed contiguously: ``hour_start`` has to be
        exactly the committed-hours cursor.  The ``.npz`` lands first
        (temp + rename), the manifest entry second, so a kill between
        the two is invisible to the next resume.
        """
        document = self.load()
        cursor = self.committed_hours()
        if hour_start != cursor:
            raise ChunkStoreError(
                f"non-contiguous chunk commit: [{hour_start}, {hour_stop}) "
                f"but {cursor} hour(s) committed so far"
            )
        if hour_stop <= hour_start:
            raise ChunkStoreError(
                f"empty chunk commit [{hour_start}, {hour_stop})"
            )
        digest = MeasurementDataset.block_digest(arrays)
        filename = _chunk_filename(hour_start, hour_stop)
        path = self.chunks_dir / filename
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
        entry = {
            "hour_start": int(hour_start),
            "hour_stop": int(hour_stop),
            "file": filename,
            "digest": digest,
            "chain": _chain(self.chain_digest(), digest),
        }
        document.setdefault("chunks", []).append(entry)
        self._write_manifest(document)
        return entry

    # -- replaying ------------------------------------------------------------

    def replay(
        self, start_hour: int = 0
    ) -> Iterator[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
        """Yield ``(entry, arrays)`` per committed chunk, verifying as it goes.

        Each chunk's content digest and chain link are recomputed and
        compared against the manifest; any mismatch (bit rot, a chunk
        file swapped between runs, a truncated manifest edit) raises
        :class:`ChunkStoreError` naming the offending chunk, before any
        corrupt counts can reach a dataset.

        ``start_hour`` is the retention-resume cursor: chunks wholly
        before it are chain-verified from their *stored* digests (their
        payloads may have been pruned) but not loaded or yielded;
        chunks past it must still have payloads -- a pruned chunk there
        means the checkpoint is older than the pruning horizon, which
        :meth:`prune_payloads` never allows the daemon to produce, so
        it is reported as corruption rather than skipped.
        """
        chain = str(self.load()["chain_seed"])
        cursor = 0
        for entry in self.entries():
            h0, h1 = int(entry["hour_start"]), int(entry["hour_stop"])
            if h0 != cursor or h1 <= h0:
                raise ChunkStoreError(
                    f"chunk manifest is not contiguous at [{h0}, {h1}) "
                    f"(expected hour_start {cursor})"
                )
            cursor = h1
            path = self.chunks_dir / str(entry["file"])
            if h1 <= start_hour:
                # Behind the checkpoint: link the chain from the stored
                # digest (payload possibly pruned), skip the load.
                chain = _chain(chain, str(entry.get("digest")))
                if chain != entry.get("chain"):
                    raise ChunkStoreError(
                        f"chunk {path} breaks the digest chain: "
                        f"manifest {entry.get('chain')}, recomputed {chain}"
                    )
                continue
            if entry.get("pruned"):
                raise ChunkStoreError(
                    f"chunk {path} covering [{h0}, {h1}) was "
                    "retention-pruned but is needed to rebuild state from "
                    f"hour {start_hour}; resume from the retention "
                    "checkpoint (or the payload was pruned incorrectly)"
                )
            try:
                with np.load(path) as data:
                    arrays = {name: data[name] for name in data.files}
            except (OSError, ValueError) as exc:
                raise ChunkStoreError(f"cannot load chunk {path}: {exc}")
            digest = MeasurementDataset.block_digest(arrays)
            if digest != entry.get("digest"):
                raise ChunkStoreError(
                    f"chunk {path} content digest mismatch: "
                    f"manifest {entry.get('digest')}, file {digest}"
                )
            chain = _chain(chain, digest)
            if chain != entry.get("chain"):
                raise ChunkStoreError(
                    f"chunk {path} breaks the digest chain: "
                    f"manifest {entry.get('chain')}, recomputed {chain}"
                )
            yield entry, arrays

    # -- retention --------------------------------------------------------------

    def prune_payloads(self, before_hour: int) -> int:
        """Delete payloads of chunks wholly before ``before_hour``.

        Manifest entries stay (marked ``"pruned": true``) so the digest
        chain remains verifiable end to end; only the ``.npz`` bytes
        go.  Returns the number of chunks newly pruned.  Idempotent --
        already-pruned entries are skipped -- and atomic in the same
        sense as :meth:`commit`: payloads are unlinked first, the
        manifest rewritten once at the end, so a crash mid-prune leaves
        at worst an entry whose missing payload the next prune (same
        ``before_hour`` policy) marks.
        """
        document = self.load()
        pruned = 0
        for entry in document.get("chunks") or []:
            if entry.get("pruned") or int(entry["hour_stop"]) > before_hour:
                continue
            path = self.chunks_dir / str(entry["file"])
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            except OSError as exc:
                raise ChunkStoreError(f"cannot prune chunk {path}: {exc}")
            entry["pruned"] = True
            pruned += 1
        if pruned:
            self._write_manifest(document)
        return pruned

    def pruned_hours(self) -> int:
        """Hours whose payloads have been pruned (prefix of the chain)."""
        last = 0
        for entry in self.entries():
            if entry.get("pruned"):
                last = int(entry["hour_stop"])
        return last

    def payload_files(self) -> List[str]:
        """Chunk payload files currently on disk (bounded-disk asserts)."""
        return sorted(
            p.name for p in self.chunks_dir.glob("chunk-*.npz")
        )

    def record_retention(self, retain_hours: int) -> None:
        """Persist the retention policy on the manifest (resume default)."""
        document = self.load()
        if document.get("retention", {}).get("retain_hours") == retain_hours:
            return
        document["retention"] = {"retain_hours": int(retain_hours)}
        self._write_manifest(document)

    def retention(self) -> Optional[Dict[str, Any]]:
        """The recorded retention policy, if any."""
        record = self.load().get("retention")
        return dict(record) if isinstance(record, dict) else None

    # -- the retention checkpoint ------------------------------------------------

    @property
    def checkpoint_path(self) -> Path:
        return self.chunks_dir / CHECKPOINT_FILE

    def write_checkpoint(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Atomically persist a fold-state checkpoint at a chunk boundary.

        ``document`` carries the caller's state payloads (rolling
        digest, detector/history/SLO state) plus the boundary ``hour``;
        the chain value at that boundary is pinned here from the
        manifest so a checkpoint can never be paired with a different
        chunk history.
        """
        hour = int(document["hour"])
        chain = self._chain_at(hour)
        record = {
            "schema": CHECKPOINT_SCHEMA,
            **document,
            "hour": hour,
            "chain": chain,
        }
        tmp = self.checkpoint_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        tmp.replace(self.checkpoint_path)
        return record

    def load_checkpoint(self) -> Optional[Dict[str, Any]]:
        """Read and chain-verify the checkpoint record (None if absent).

        The pinned ``(hour, chain)`` pair must match the manifest's
        chain value at that boundary -- a checkpoint pasted in from a
        different run (or a manifest edited underneath one) fails here,
        before any state is restored from it.
        """
        try:
            raw = self.checkpoint_path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise ChunkStoreError(
                f"cannot read checkpoint {self.checkpoint_path}: {exc}"
            )
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ChunkStoreError(
                f"checkpoint {self.checkpoint_path} is not valid JSON: {exc}"
            )
        schema = record.get("schema")
        if not isinstance(schema, str):
            raise ChunkStoreError(
                f"{self.checkpoint_path}: missing schema field"
            )
        check_schema(schema, CHECKPOINT_SCHEMA)
        hour = int(record.get("hour") or 0)
        expected = self._chain_at(hour)
        if record.get("chain") != expected:
            raise ChunkStoreError(
                f"checkpoint {self.checkpoint_path} chain mismatch at hour "
                f"{hour}: checkpoint {record.get('chain')}, manifest "
                f"{expected}"
            )
        return record

    def _chain_at(self, hour: int) -> str:
        """The manifest chain value at the chunk boundary ``hour``."""
        if hour == 0:
            return str(self.load()["chain_seed"])
        for entry in self.entries():
            if int(entry["hour_stop"]) == hour:
                return str(entry["chain"])
        raise ChunkStoreError(
            f"hour {hour} is not a committed chunk boundary of "
            f"{self.manifest_path}"
        )

    def restore_into(self, dataset: MeasurementDataset) -> int:
        """Merge every committed chunk into ``dataset``; returns the cursor.

        The dataset must belong to the same world the chunks were
        simulated in (shape mismatches surface as merge errors; roster
        drift is caught earlier by the fingerprint check in the serve
        daemon's resume path).
        """
        cursor = 0
        for entry, arrays in self.replay():
            dataset.merge(arrays, (entry["hour_start"], entry["hour_stop"]))
            cursor = int(entry["hour_stop"])
        return cursor
