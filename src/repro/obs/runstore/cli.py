"""``repro runs``: render, diff, and gate the recorded run registry.

Verbs:

* ``repro runs list`` -- one line per recorded run;
* ``repro runs show REF`` -- full manifest plus the attribution
  evidence (flagged episodes with their knee threshold and the per-hour
  bins that crossed it);
* ``repro runs diff A B`` -- compare two runs: config changes, dataset
  digest match/mismatch (exit 1 on mismatch), per-stage timing deltas,
  and episode-verdict churn with evidence-level explanations;
* ``repro runs check REF --baseline BENCH_trajectory.json`` -- gate a
  run against the committed bench trajectory (digest drift or
  simulate-stage slowdown beyond ``--max-slowdown`` fails).

``REF`` is a run id, any unique prefix, or ``latest``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.obs.runstore.diffing import check_run, diff_runs, render_diff
from repro.obs.runstore.evidence import EvidenceBundle
from repro.obs.runstore.manifest import RunManifest
from repro.obs.runstore.store import RunStore, RunStoreError, resolve_runs_dir
from repro.obs.runstore.trajectory import TrajectoryError, load_trajectory


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro runs`` verbs to an argparse (sub)parser."""
    # SUPPRESS: when mounted under the main `repro` parser (which has
    # its own --runs-dir), an omitted flag must not clobber the value
    # parsed before the subcommand.
    parser.add_argument(
        "--runs-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="registry root (default: $REPRO_RUNS_DIR or ./runs)",
    )
    verbs = parser.add_subparsers(dest="runs_verb", required=True)

    list_verb = verbs.add_parser("list", help="one line per recorded run")
    list_verb.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable output (same document as the serve "
        "daemon's /runs endpoint)",
    )

    show = verbs.add_parser(
        "show", help="manifest + attribution evidence for one run"
    )
    show.add_argument("ref", help="run id, unique prefix, or 'latest'")
    show.add_argument(
        "--max-episodes", type=int, default=10, metavar="N",
        help="episode records to print per side (default 10)",
    )
    show.add_argument(
        "--timeline", action="store_true",
        help="replay the recorded live-telemetry event stream "
        "(events.jsonl) as a per-worker progress timeline",
    )
    show.add_argument(
        "--alerts", action="store_true",
        help="replay the recorded online-detection alert stream "
        "(alerts.jsonl) in firing order",
    )

    diff = verbs.add_parser(
        "diff", help="compare two runs (exit 1 on dataset-digest mismatch)"
    )
    diff.add_argument("ref_a", help="first run (id/prefix/'latest')")
    diff.add_argument("ref_b", help="second run (id/prefix/'latest')")

    check = verbs.add_parser(
        "check", help="gate a run against the committed bench trajectory"
    )
    check.add_argument(
        "ref", nargs="?", default="latest",
        help="run to check (default: latest)",
    )
    check.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="trajectory file (BENCH_trajectory.json)",
    )
    check.add_argument(
        "--max-slowdown", type=float, default=2.0, metavar="X",
        help="fail when simulate.month exceeds X times the baseline "
        "(default 2.0)",
    )
    check.add_argument(
        "--require-entry", action="store_true",
        help="fail when the baseline has no entry for this config",
    )


def _pruned_hours(store: RunStore, run_id: str) -> int:
    """Sim-hours of chunk payloads retention-pruned for a run (0 when
    the run has no chunk store or nothing was pruned)."""
    from repro.obs.runstore.chunks import ChunkStore, ChunkStoreError

    chunks = ChunkStore(store.run_dir(run_id))
    if not chunks.exists():
        return 0
    try:
        return chunks.pruned_hours()
    except ChunkStoreError:
        return 0


def _format_when(unix: float) -> str:
    if not unix:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(unix)) + "Z"


def _cmd_list(store: RunStore, as_json: bool = False) -> int:
    if as_json:
        import json

        from repro.obs.runstore.store import runs_index

        print(json.dumps(runs_index(store), indent=2, sort_keys=True))
        return 0
    manifests = store.list_manifests()
    if not manifests:
        print(f"no runs recorded under {store.root}")
        return 0
    print(
        f"{'run id':<14} {'command':<10} {'engine':<8} {'hours':>5} "
        f"{'seed':>10} {'workers':>7} {'digest':<18} created"
    )
    for m in manifests:
        digest = (m.dataset.get("digest") or "")[:16] or "-"
        config = m.config
        print(
            f"{m.run_id:<14} {m.command:<10} {m.engine or '-':<8} "
            f"{config.get('hours', '-'):>5} {config.get('seed', '-'):>10} "
            f"{config.get('workers', '-'):>7} {digest:<18} "
            f"{_format_when(m.created_unix)}"
        )
    return 0


def _show_evidence(evidence: EvidenceBundle, max_episodes: int) -> None:
    print("-- attribution evidence --")
    for side in ("client", "server"):
        knee = evidence.thresholds.get(side)
        flagged = evidence.flagged.get(side, [])
        knee_str = f"{knee:.2%}" if knee is not None else "?"
        print(
            f"{side} knee threshold f={knee_str}; "
            f"{len(flagged)} {side}(s) crossed it"
        )
        if flagged:
            print(f"  crossing: {', '.join(flagged)}")
        records = evidence.records_for(side)
        for record in records[:max_episodes]:
            print(
                f"  episode: {record.entity} hours "
                f"{record.start_hour}-{record.end_hour} "
                f"(peak rate {record.peak_rate:.2%} >= f={record.threshold:.2%})"
            )
            for b in record.bins[:6]:
                print(
                    f"    hour {b['hour']:>4}: rate {b['rate']:.2%} "
                    f"({b['failures']}/{b['transactions']})"
                )
            if len(record.bins) > 6 or record.bins_truncated:
                hidden = len(record.bins) - 6 + record.bins_truncated
                print(f"    ... {max(0, hidden)} more hour bin(s)")
        if len(records) > max_episodes:
            print(f"  ... {len(records) - max_episodes} more episode(s)")
        truncated = evidence.truncated.get(side, 0)
        if truncated:
            print(f"  ({truncated} low-peak episode record(s) not stored)")
    blame = evidence.blame
    if blame:
        print(
            f"blame at f={blame.get('threshold', 0.05):g}: "
            f"server={blame.get('server_side')} client={blame.get('client_side')} "
            f"both={blame.get('both')} other={blame.get('other')} "
            f"(total {blame.get('total')})"
        )


def _show_alerts(path) -> None:
    """Replay ``alerts.jsonl`` in firing order (header, alerts, summary)."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
    except (OSError, ValueError) as exc:
        print(f"(cannot replay alert stream: {exc})")
        return
    print("-- alert stream --")
    header = lines[0] if lines and lines[0].get("type") == "header" else {}
    if header:
        rules = header.get("rules") or []
        print(
            f"schema {header.get('schema', '?')}; "
            f"{len(rules)} rule(s): "
            + ", ".join(r.get("name", "?") for r in rules)
        )
    fired = [line for line in lines if line.get("type") == "alert"]
    for alert in fired:
        entity = f" {alert['entity']}" if alert.get("entity") else ""
        detail = f" -- {alert['detail']}" if alert.get("detail") else ""
        print(
            f"  h{alert.get('hour', '?'):>4} [{alert.get('severity', '?')}] "
            f"{alert.get('rule', '?')}{entity}{detail}"
        )
    if not fired:
        print("  (no alerts fired)")
    summary = next(
        (line for line in lines if line.get("type") == "summary"), None
    )
    if summary:
        latency = summary.get("detection_latency_hours") or {}
        mean = latency.get("mean")
        print(
            f"summary: {summary.get('count', len(fired))} alert(s) over "
            f"{summary.get('hours_folded', '?')} folded hour(s)"
            + (
                f"; detection latency mean {mean:.2f}h "
                f"max {latency.get('max', 0)}h"
                if mean is not None else ""
            )
        )


def _cmd_show(
    store: RunStore, ref: str, max_episodes: int, timeline: bool = False,
    alerts: bool = False,
) -> int:
    manifest = store.load(ref)
    print(f"run {manifest.run_id}  ({manifest.schema})")
    print(f"command:    {manifest.command} ({' '.join(manifest.argv)})")
    config = manifest.config
    print(
        f"config:     hours={config.get('hours')} "
        f"per_hour={config.get('per_hour')} seed={config.get('seed')} "
        f"workers={config.get('workers')}"
    )
    print(f"engine:     {manifest.engine or '-'}")
    fallback = (manifest.dataset.get("provenance") or {}).get(
        "parallel_fallback"
    )
    if fallback:
        print(
            f"fallback:   parallel dispatch FAILED; "
            f"{fallback.get('shards', '?')} shard(s) ran sequentially "
            f"in-process ({fallback.get('reason', 'unknown reason')})"
        )
    print(f"git rev:    {manifest.git_rev or '-'}")
    print(f"created:    {_format_when(manifest.created_unix)}")
    timings = manifest.timings
    wall = timings.get("wall_seconds")
    cpu = timings.get("cpu_seconds")
    if wall is not None:
        line = f"timings:    wall={wall:.3f}s"
        if cpu is not None:
            line += f" cpu={cpu:.3f}s"
        worker_cpu = timings.get("worker_cpu_seconds")
        if worker_cpu is not None:
            line += f" worker_cpu={worker_cpu:.3f}s"
        print(line)
    digest = manifest.dataset.get("digest")
    if digest:
        print(f"digest:     {digest}")
    serve = manifest.serve_provenance()
    if serve:
        committed = serve.get("committed_hours", 0)
        horizon = "∞" if serve.get("indefinite") else "finite"
        state = "completed" if serve.get("completed") else "resumable"
        line = (
            f"serve:      {committed}h committed ({horizon} horizon, "
            f"{state}"
        )
        resumed = serve.get("resumed_hours") or 0
        if resumed:
            line += f", resumed at {resumed}h"
        line += ")"
        print(line)
        retain = serve.get("retain_hours")
        if retain is not None:
            print(
                f"retention:  keep last {retain}h of chunk payloads "
                f"({serve.get('pruned_hours', 0)}h pruned)"
            )
        rolling = serve.get("rolling_digest")
        if rolling:
            print(f"rolling:    {rolling}")
    if manifest.trace_file:
        print(f"trace:      {store.run_dir(manifest.run_id) / manifest.trace_file}")
    if manifest.events_file:
        print(
            f"events:     "
            f"{store.run_dir(manifest.run_id) / manifest.events_file} "
            f"(replay with `repro runs show {manifest.run_id} --timeline`)"
        )
    if manifest.alerts_file:
        summary = manifest.alerts_summary
        print(
            f"alerts:     "
            f"{store.run_dir(manifest.run_id) / manifest.alerts_file} "
            f"({summary.get('count', '?')} fired, "
            f"digest {(summary.get('digest') or '?')[:16]}; replay with "
            f"`repro runs show {manifest.run_id} --alerts`)"
        )
    stages = sorted(
        manifest.stage_seconds().items(), key=lambda kv: -kv[1]
    )
    if stages:
        print()
        print("-- stages (wall seconds) --")
        for stage, seconds in stages[:12]:
            print(f"{stage:<32} {seconds:>9.3f}")
    print()
    evidence = store.load_evidence(manifest.run_id)
    if evidence is None:
        print("(no attribution evidence recorded)")
    else:
        _show_evidence(evidence, max_episodes)
    if timeline:
        from repro.obs.live.timeline import summarize_events_file

        events_name = manifest.events_file or "events.jsonl"
        rendered = summarize_events_file(
            str(store.run_dir(manifest.run_id) / events_name)
        )
        print()
        if rendered is None:
            pruned = _pruned_hours(store, manifest.run_id)
            if pruned:
                # A long-horizon serve run under --retain-hours: the
                # raw material a timeline replays was pruned by design,
                # not lost.  Exit 0 -- this is a policy, not an error.
                print(
                    f"(no replayable timeline: this serve run's rolling "
                    f"retention pruned the first {pruned} sim-hour(s) of "
                    "chunk payloads; the digest-chained manifest and "
                    "downsampled /history survive -- see `repro slo "
                    f"{manifest.run_id}`)"
                )
            else:
                print(
                    "(no live-telemetry events recorded for this run -- "
                    "re-run with --live or --serve-metrics)"
                )
        else:
            print(rendered)
    if alerts:
        print()
        if manifest.alerts_file:
            _show_alerts(store.run_dir(manifest.run_id) / manifest.alerts_file)
        else:
            print(
                "(no alert stream recorded for this run -- "
                "re-run with --detect)"
            )
    return 0


def _cmd_diff(store: RunStore, ref_a: str, ref_b: str) -> int:
    a, b = store.load(ref_a), store.load(ref_b)
    diff = diff_runs(
        a, b,
        evidence_a=store.load_evidence(a.run_id),
        evidence_b=store.load_evidence(b.run_id),
    )
    print(render_diff(diff))
    return 0 if diff.identical_dataset else 1


def _cmd_check(store: RunStore, args) -> int:
    manifest = store.load(args.ref)
    try:
        entries = load_trajectory(args.baseline)
    except TrajectoryError as exc:
        print(f"repro runs check: {exc}", file=sys.stderr)
        return 2
    result = check_run(
        manifest, entries,
        max_slowdown=args.max_slowdown,
        require_entry=args.require_entry,
    )
    print(f"checking run {manifest.run_id} against {args.baseline}")
    for line in result.lines:
        print(line)
    return 0 if result.ok else 1


def run(args) -> int:
    """Dispatch a parsed ``repro runs`` invocation."""
    store = RunStore(resolve_runs_dir(getattr(args, "runs_dir", None)))
    try:
        if args.runs_verb == "list":
            return _cmd_list(store, as_json=getattr(args, "as_json", False))
        if args.runs_verb == "show":
            return _cmd_show(
                store, args.ref, args.max_episodes,
                timeline=getattr(args, "timeline", False),
                alerts=getattr(args, "alerts", False),
            )
        if args.runs_verb == "diff":
            return _cmd_diff(store, args.ref_a, args.ref_b)
        if args.runs_verb == "check":
            return _cmd_check(store, args)
    except RunStoreError as exc:
        print(f"repro runs: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled runs verb {args.runs_verb!r}")
