"""The bench trajectory: an append-only log of benchmark observations.

``BENCH_trajectory.json`` is a single committed document every benchmark
appends to (simulator wall time, dataset digest, configuration), so the
repository carries its own performance history and ``repro runs check``
has a baseline to gate against.  Schema ``repro.bench-trajectory/1``;
the same additive-within-a-major compatibility rule as run manifests.

Entries are plain dicts::

    {"t": <unix>, "bench": "obs_baseline", "config": {"hours": ..,
     "per_hour": .., "seed": ..}, "engine": "fast",
     "simulate_seconds": .., "transactions": .., "digest": "..."}

Appends are atomic (write-temp-then-rename) so a crashed benchmark
cannot tear the committed file.  Timestamps flow through the injected
``clock`` (DET003-by-construction, as everywhere in the runstore).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Union

from repro.obs.runstore.manifest import check_schema, config_key

#: Trajectory schema identifier.
SCHEMA = "repro.bench-trajectory/1"

#: Retained observations per (bench, config) series; older ones are
#: pruned on append so the committed file stays bounded.
MAX_ENTRIES_PER_SERIES = 50


class TrajectoryError(ValueError):
    """The trajectory file is unreadable or from a newer schema."""


def load_trajectory(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All entries, oldest first; empty list for a missing file."""
    path = Path(path)
    if not path.is_file():
        return []
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TrajectoryError(f"cannot read {path}: {exc}")
    if not isinstance(document, dict):
        raise TrajectoryError(f"{path}: not a trajectory document")
    check_schema(str(document.get("schema", SCHEMA)), SCHEMA)
    entries = document.get("entries") or []
    return sorted(entries, key=lambda e: (e.get("t", 0.0),))


def _series_key(entry: Dict[str, Any]) -> tuple:
    return (str(entry.get("bench", "")), config_key(entry.get("config") or {}))


def prune_entries(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Dedupe per git revision and cap each series' retained history.

    Within one (bench, config) series only the newest entry per git
    revision survives, so re-running a benchmark on the same commit
    refreshes its observation instead of growing the file without
    bound.  Legacy entries without a ``git_rev`` (written before the
    field existed) are never deduped against each other, only capped.
    Each series keeps at most :data:`MAX_ENTRIES_PER_SERIES` newest
    entries.  Input and output are both oldest-first.
    """
    seen_revs: set = set()
    per_series: Dict[tuple, int] = {}
    kept: List[Dict[str, Any]] = []
    for entry in reversed(entries):  # newest first: newest wins a dupe
        series = _series_key(entry)
        rev = entry.get("git_rev")
        if rev is not None:
            if (series, rev) in seen_revs:
                continue
            seen_revs.add((series, rev))
        count = per_series.get(series, 0)
        if count >= MAX_ENTRIES_PER_SERIES:
            continue
        per_series[series] = count + 1
        kept.append(entry)
    kept.reverse()
    return kept


def append_entry(
    path: Union[str, Path],
    entry: Dict[str, Any],
    clock: Callable[[], float] = time.time,
) -> Dict[str, Any]:
    """Stamp ``entry`` with the clock and git revision; append atomically.

    Appending also prunes: entries from the same (bench, config) series
    and git revision are replaced rather than accumulated, and each
    series is capped at :data:`MAX_ENTRIES_PER_SERIES` observations.
    """
    path = Path(path)
    entries = load_trajectory(path)
    stamped = dict(entry)
    stamped.setdefault("t", clock())
    if "git_rev" not in stamped:
        # Lazy import: store pulls in the heavier manifest/evidence
        # machinery that plain trajectory readers don't need.
        from repro.obs.runstore.store import _git_revision

        rev = _git_revision()
        if rev is not None:
            stamped["git_rev"] = rev
    entries.append(stamped)
    entries = prune_entries(entries)
    document = {"schema": SCHEMA, "entries": entries}
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return stamped


def matching_entries(
    entries: List[Dict[str, Any]], config: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Entries whose config identity matches ``config``, oldest first."""
    key = config_key(config)
    return [e for e in entries if config_key(e.get("config") or {}) == key]
