"""The bench trajectory: an append-only log of benchmark observations.

``BENCH_trajectory.json`` is a single committed document every benchmark
appends to (simulator wall time, dataset digest, configuration), so the
repository carries its own performance history and ``repro runs check``
has a baseline to gate against.  Schema ``repro.bench-trajectory/1``;
the same additive-within-a-major compatibility rule as run manifests.

Entries are plain dicts::

    {"t": <unix>, "bench": "obs_baseline", "config": {"hours": ..,
     "per_hour": .., "seed": ..}, "engine": "fast",
     "simulate_seconds": .., "transactions": .., "digest": "..."}

Appends are atomic (write-temp-then-rename) so a crashed benchmark
cannot tear the committed file.  Timestamps flow through the injected
``clock`` (DET003-by-construction, as everywhere in the runstore).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Union

from repro.obs.runstore.manifest import check_schema, config_key

#: Trajectory schema identifier.
SCHEMA = "repro.bench-trajectory/1"


class TrajectoryError(ValueError):
    """The trajectory file is unreadable or from a newer schema."""


def load_trajectory(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All entries, oldest first; empty list for a missing file."""
    path = Path(path)
    if not path.is_file():
        return []
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TrajectoryError(f"cannot read {path}: {exc}")
    if not isinstance(document, dict):
        raise TrajectoryError(f"{path}: not a trajectory document")
    check_schema(str(document.get("schema", SCHEMA)), SCHEMA)
    entries = document.get("entries") or []
    return sorted(entries, key=lambda e: (e.get("t", 0.0),))


def append_entry(
    path: Union[str, Path],
    entry: Dict[str, Any],
    clock: Callable[[], float] = time.time,
) -> Dict[str, Any]:
    """Stamp ``entry`` with the clock and append it atomically."""
    path = Path(path)
    entries = load_trajectory(path)
    stamped = dict(entry)
    stamped.setdefault("t", clock())
    entries.append(stamped)
    document = {"schema": SCHEMA, "entries": entries}
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return stamped


def matching_entries(
    entries: List[Dict[str, Any]], config: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Entries whose config identity matches ``config``, oldest first."""
    key = config_key(config)
    return [e for e in entries if config_key(e.get("config") or {}) == key]
