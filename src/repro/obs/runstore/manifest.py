"""Run manifests: the durable, content-addressed record of one run.

A :class:`RunManifest` is everything ``repro runs`` needs to render,
diff, or regression-gate an invocation after the process is gone: the
CLI arguments and simulation configuration, the master seed, the engine
and worker count, wall/CPU timings, a full
:meth:`~repro.obs.metrics.MetricsRegistry.dump_state` snapshot, the
dataset digest + world-fingerprint hash, the git revision, and a digest
of the attribution evidence stored alongside it.

**Identity.** The run id is content-addressed: a SHA-256 (truncated to
:data:`RUN_ID_LENGTH` hex chars) over the canonical JSON of the fields
that *define* the run -- command, configuration, engine, worker count,
dataset digest, evidence digest, git revision.  Re-running the same
configuration on the same tree lands on the same id and refreshes the
record in place; anything that changes what was computed (seed, worker
count, code revision) produces a new id.  Volatile fields (timestamps,
timings, metric values) are deliberately excluded so identity never
depends on machine speed.

**Compatibility rule.** ``schema`` is ``"repro.run-manifest/<major>"``.
Within a major version fields are only ever *added*; readers must
ignore unknown fields (this module's :func:`manifest_from_dict` does).
A breaking change bumps the major, and readers refuse newer majors with
a clear error instead of misinterpreting them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Manifest schema identifier; bump the major on breaking changes only.
SCHEMA = "repro.run-manifest/1"

#: Hex chars of SHA-256 kept as the run id (12 gives 48 bits -- ample
#: for a per-repository registry while staying typeable).
RUN_ID_LENGTH = 12


class ManifestError(ValueError):
    """A manifest could not be parsed or belongs to a newer schema."""


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def schema_major(schema: str) -> int:
    """The major version of a ``name/<major>`` schema string."""
    _, _, major = schema.rpartition("/")
    try:
        return int(major)
    except ValueError:
        raise ManifestError(f"unversioned schema identifier {schema!r}")


def check_schema(schema: str, expected: str) -> None:
    """Refuse newer majors; accept this and older majors of ``expected``."""
    name, _, _ = expected.rpartition("/")
    if not schema.startswith(name + "/"):
        raise ManifestError(
            f"schema {schema!r} is not a {name!r} document"
        )
    if schema_major(schema) > schema_major(expected):
        raise ManifestError(
            f"document schema {schema!r} is newer than this reader "
            f"({expected}); upgrade repro to read it"
        )


def compute_run_id(identity: Dict[str, Any]) -> str:
    """Content-address an identity payload into a run id."""
    digest = hashlib.sha256(canonical_json(identity).encode("utf-8"))
    return digest.hexdigest()[:RUN_ID_LENGTH]


@dataclass
class RunManifest:
    """One recorded ``repro`` invocation (see module docstring)."""

    run_id: str
    command: str
    argv: List[str]
    #: Simulation configuration: hours, per_hour, seed, workers
    #: requested and resolved.
    config: Dict[str, Any]
    engine: Optional[str] = None
    git_rev: Optional[str] = None
    created_unix: float = 0.0
    #: wall_seconds / cpu_seconds for the whole command; worker CPU when
    #: the parallel engine reported it.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Full MetricsRegistry.dump_state() snapshot.
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    #: digest / fingerprint_sha256 / provenance of the dataset.
    dataset: Dict[str, Any] = field(default_factory=dict)
    #: Digest of the evidence document stored next to the manifest, and
    #: a small summary for listings (thresholds, flagged counts).
    evidence_digest: Optional[str] = None
    evidence_summary: Dict[str, Any] = field(default_factory=dict)
    #: Name of the trace file copied into the run directory, if any.
    trace_file: Optional[str] = None
    #: Name of the live-telemetry event stream copied into the run
    #: directory (``repro runs show --timeline`` replays it), if any.
    events_file: Optional[str] = None
    #: Name of the persisted online alert stream (``repro runs show
    #: --alerts`` replays it), if any.
    alerts_file: Optional[str] = None
    #: Small summary of the alert stream for listings and the
    #: ``runs check`` gate: count, per-rule counts, the stream digest.
    alerts_summary: Dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA

    # -- identity ------------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The content-addressed part of the manifest."""
        return {
            "schema": self.schema,
            "command": self.command,
            "config": self.config,
            "engine": self.engine,
            "git_rev": self.git_rev,
            "dataset_digest": self.dataset.get("digest"),
            "evidence_digest": self.evidence_digest,
        }

    def seal(self) -> "RunManifest":
        """Recompute ``run_id`` from the identity fields."""
        self.run_id = compute_run_id(self.identity())
        return self

    # -- convenience accessors ----------------------------------------------

    def metric_value(
        self, kind: str, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        """Scalar value of one counter/gauge in the snapshot, or None."""
        wanted = sorted((k, str(v)) for k, v in (labels or {}).items())
        for record in self.metrics:
            if record.get("kind") != kind or record.get("name") != name:
                continue
            have = sorted(
                (str(k), str(v)) for k, v in (record.get("labels") or ())
            )
            if have == wanted:
                value = record.get("value")
                return float(value) if value is not None else None
        return None

    def serve_provenance(self) -> Dict[str, Any]:
        """The serve-daemon block under ``dataset.provenance.serve``.

        Serve runs record their chunk progress there (committed /
        resumed hours, ``completed``, ``indefinite``, retention policy,
        pruned hours, rolling digest).  Empty dict for batch runs, so
        callers can render conditionally without schema sniffing.
        """
        provenance = self.dataset.get("provenance")
        if not isinstance(provenance, dict):
            return {}
        serve = provenance.get("serve")
        return dict(serve) if isinstance(serve, dict) else {}

    def stage_seconds(self) -> Dict[str, float]:
        """``{stage: seconds}`` from the ``stage_seconds_total`` counters."""
        out: Dict[str, float] = {}
        for record in self.metrics:
            if (
                record.get("kind") != "counter"
                or record.get("name") != "stage_seconds_total"
            ):
                continue
            labels = dict(
                (str(k), str(v)) for k, v in (record.get("labels") or ())
            )
            stage = labels.get("stage")
            if stage is not None:
                out[stage] = float(record.get("value", 0.0))
        return out

    def simulate_seconds(self) -> Optional[float]:
        """Wall seconds of the ``simulate.month`` stage, if recorded."""
        return self.stage_seconds().get("simulate.month")

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON document written to ``manifest.json``."""
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "command": self.command,
            "argv": list(self.argv),
            "config": dict(self.config),
            "engine": self.engine,
            "git_rev": self.git_rev,
            "created_unix": self.created_unix,
            "timings": dict(self.timings),
            "metrics": list(self.metrics),
            "dataset": dict(self.dataset),
            "evidence_digest": self.evidence_digest,
            "evidence_summary": dict(self.evidence_summary),
            "trace_file": self.trace_file,
            "events_file": self.events_file,
            "alerts_file": self.alerts_file,
            "alerts_summary": dict(self.alerts_summary),
        }


#: Fields copied verbatim from a manifest document; everything else in
#: the document is ignored (the additive-within-a-major rule).
_KNOWN_FIELDS = (
    "run_id", "command", "argv", "config", "engine", "git_rev",
    "created_unix", "timings", "metrics", "dataset", "evidence_digest",
    "evidence_summary", "trace_file", "events_file", "alerts_file",
    "alerts_summary", "schema",
)


def manifest_from_dict(document: Dict[str, Any]) -> RunManifest:
    """Parse a manifest document, tolerating unknown (newer) fields."""
    if not isinstance(document, dict):
        raise ManifestError("manifest document is not a JSON object")
    schema = document.get("schema")
    if not isinstance(schema, str):
        raise ManifestError("manifest document carries no schema field")
    check_schema(schema, SCHEMA)
    known = {k: document[k] for k in _KNOWN_FIELDS if k in document}
    try:
        return RunManifest(**known)
    except TypeError as exc:
        raise ManifestError(f"malformed manifest: {exc}")


def config_key(config: Dict[str, Any]) -> Tuple:
    """The comparable simulation identity of a config (baseline matching).

    ``fault`` is the planted-fault spec (``--fault``); absent and None
    compare equal, so legacy entries keep matching un-faulted runs.
    """
    return (
        config.get("hours"), config.get("per_hour"), config.get("seed"),
        config.get("fault"),
    )
