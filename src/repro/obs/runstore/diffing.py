"""Cross-run comparison and regression gating.

``diff_runs`` compares two recorded runs along the axes that matter for
this repository's contracts:

* **determinism** -- dataset digest and world-fingerprint match/mismatch
  (same seed must digest identically at any worker count);
* **performance** -- per-stage wall-time deltas from the two metrics
  snapshots;
* **conclusions** -- episode-verdict churn, explained at the evidence
  level: which entities were flagged in one run but not the other, with
  the peak rate vs knee threshold on each side of the comparison.

``check_run`` is the CI gate: it matches a manifest against the
committed bench trajectory (same hours/per_hour/seed), and fails on
dataset-digest drift or a simulate-stage slowdown beyond the allowed
factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.runstore.evidence import EvidenceBundle
from repro.obs.runstore.manifest import RunManifest, config_key


@dataclass
class VerdictChange:
    """One entity flagged in exactly one of the two runs."""

    side: str
    entity: str
    flagged_in: str  # "a" | "b"
    explanation: str


@dataclass
class RunDiff:
    """The structured comparison ``repro runs diff`` renders."""

    a: RunManifest
    b: RunManifest
    config_changes: List[Tuple[str, Any, Any]] = field(default_factory=list)
    digest_match: bool = False
    fingerprint_match: bool = False
    #: {stage: (seconds_a, seconds_b)} union of both snapshots.
    stage_deltas: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: {metric_name: (value_a, value_b)} for differing outcome counters.
    counter_deltas: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    verdict_changes: List[VerdictChange] = field(default_factory=list)
    threshold_changes: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def identical_dataset(self) -> bool:
        """True when both digests exist and agree."""
        return self.digest_match


def _flat_counters(manifest: RunManifest) -> Dict[str, float]:
    """{rendered_name: value} for every counter in the snapshot."""
    out: Dict[str, float] = {}
    for record in manifest.metrics:
        if record.get("kind") != "counter":
            continue
        labels = sorted(
            (str(k), str(v)) for k, v in (record.get("labels") or ())
        )
        label_str = (
            "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            if labels else ""
        )
        out[str(record.get("name")) + label_str] = float(
            record.get("value", 0.0)
        )
    return out


def _explain_change(
    side: str,
    entity: str,
    flagged_in: str,
    evidence_a: Optional[EvidenceBundle],
    evidence_b: Optional[EvidenceBundle],
) -> str:
    """Evidence-level sentence for why an entity's flag churned."""
    parts: List[str] = []
    for tag, bundle in (("a", evidence_a), ("b", evidence_b)):
        if bundle is None:
            parts.append(f"run {tag}: no evidence recorded")
            continue
        knee = bundle.thresholds.get(side)
        peak = bundle.entity_peak_rates.get(side, {}).get(entity)
        if peak is None:
            parts.append(f"run {tag}: no valid rate bins")
            continue
        op = ">=" if tag == flagged_in else "<"
        knee_str = f"f={knee:.2%}" if knee is not None else "f=?"
        parts.append(f"run {tag}: peak rate {peak:.2%} {op} {knee_str}")
    return "; ".join(parts)


def diff_runs(
    a: RunManifest,
    b: RunManifest,
    evidence_a: Optional[EvidenceBundle] = None,
    evidence_b: Optional[EvidenceBundle] = None,
) -> RunDiff:
    """Compare two runs (see module docstring for the axes)."""
    diff = RunDiff(a=a, b=b)

    keys = sorted(set(a.config) | set(b.config))
    for key in keys:
        va, vb = a.config.get(key), b.config.get(key)
        if va != vb:
            diff.config_changes.append((key, va, vb))

    digest_a = a.dataset.get("digest")
    digest_b = b.dataset.get("digest")
    diff.digest_match = bool(digest_a and digest_a == digest_b)
    fp_a = a.dataset.get("fingerprint_sha256")
    fp_b = b.dataset.get("fingerprint_sha256")
    diff.fingerprint_match = bool(fp_a and fp_a == fp_b)

    stages_a, stages_b = a.stage_seconds(), b.stage_seconds()
    for stage in sorted(set(stages_a) | set(stages_b)):
        diff.stage_deltas[stage] = (
            stages_a.get(stage, 0.0), stages_b.get(stage, 0.0)
        )

    counters_a, counters_b = _flat_counters(a), _flat_counters(b)
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0.0), counters_b.get(name, 0.0)
        if va != vb and not name.startswith("stage_"):
            diff.counter_deltas[name] = (va, vb)

    if evidence_a is not None and evidence_b is not None:
        for side in ("client", "server"):
            ka = evidence_a.thresholds.get(side)
            kb = evidence_b.thresholds.get(side)
            if ka is not None and kb is not None and ka != kb:
                diff.threshold_changes[side] = (ka, kb)
            flagged_a = set(evidence_a.flagged.get(side, ()))
            flagged_b = set(evidence_b.flagged.get(side, ()))
            for entity in sorted(flagged_a - flagged_b):
                diff.verdict_changes.append(VerdictChange(
                    side=side, entity=entity, flagged_in="a",
                    explanation=_explain_change(
                        side, entity, "a", evidence_a, evidence_b
                    ),
                ))
            for entity in sorted(flagged_b - flagged_a):
                diff.verdict_changes.append(VerdictChange(
                    side=side, entity=entity, flagged_in="b",
                    explanation=_explain_change(
                        side, entity, "b", evidence_a, evidence_b
                    ),
                ))
    return diff


def render_diff(diff: RunDiff) -> str:
    """Human-readable diff report."""
    a, b = diff.a, diff.b
    lines: List[str] = []
    lines.append(f"run a: {a.run_id}  ({a.command}, engine={a.engine})")
    lines.append(f"run b: {b.run_id}  ({b.command}, engine={b.engine})")
    lines.append("")

    if diff.config_changes:
        lines.append("-- config changes --")
        for key, va, vb in diff.config_changes:
            lines.append(f"{key:<16} {va!r:>12} -> {vb!r}")
    else:
        lines.append("-- config: identical --")
    lines.append("")

    lines.append("-- dataset --")
    digest_a = a.dataset.get("digest") or "(none)"
    digest_b = b.dataset.get("digest") or "(none)"
    verdict = "IDENTICAL" if diff.digest_match else "MISMATCH"
    lines.append(f"digest: {verdict}")
    lines.append(f"  a: {digest_a}")
    lines.append(f"  b: {digest_b}")
    if a.dataset.get("fingerprint_sha256") or b.dataset.get("fingerprint_sha256"):
        fp = "match" if diff.fingerprint_match else "MISMATCH"
        lines.append(f"world fingerprint: {fp}")
    lines.append("")

    if diff.stage_deltas:
        lines.append("-- stage timings (wall seconds) --")
        lines.append(f"{'stage':<28} {'a':>9} {'b':>9} {'delta':>9}")
        for stage, (sa, sb) in sorted(
            diff.stage_deltas.items(), key=lambda kv: -max(kv[1])
        ):
            lines.append(
                f"{stage:<28} {sa:>9.3f} {sb:>9.3f} {sb - sa:>+9.3f}"
            )
        lines.append("")

    if diff.counter_deltas:
        lines.append("-- differing counters --")
        for name, (va, vb) in sorted(diff.counter_deltas.items()):
            lines.append(f"{name:<44} {va:>14g} -> {vb:g}")
        lines.append("")

    if diff.threshold_changes:
        lines.append("-- knee thresholds --")
        for side, (ka, kb) in sorted(diff.threshold_changes.items()):
            lines.append(f"{side}: f={ka:.2%} -> f={kb:.2%}")
        lines.append("")

    if diff.verdict_changes:
        lines.append("-- episode-verdict churn --")
        for change in diff.verdict_changes:
            only = "only in a" if change.flagged_in == "a" else "only in b"
            lines.append(f"{change.side} {change.entity} ({only})")
            lines.append(f"  {change.explanation}")
    else:
        lines.append("-- episode verdicts: no churn --")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Regression gate
# --------------------------------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of gating one run against the bench trajectory."""

    ok: bool
    lines: List[str] = field(default_factory=list)


def check_run(
    manifest: RunManifest,
    entries: List[Dict[str, Any]],
    max_slowdown: float = 2.0,
    require_entry: bool = False,
) -> CheckResult:
    """Gate a run against trajectory ``entries`` (newest entry wins).

    Fails on dataset-digest drift against the matching baseline entry,
    or on ``simulate.month`` wall time exceeding ``max_slowdown`` x the
    baseline.  With no matching entry: pass unless ``require_entry``.
    """
    lines: List[str] = []
    key = config_key(manifest.config)
    matching = [e for e in entries if config_key(e.get("config") or {}) == key]
    if not matching:
        fault = f" fault={key[3]}" if key[3] else ""
        lines.append(
            f"no baseline entry for config hours={key[0]} "
            f"per_hour={key[1]} seed={key[2]}{fault}"
        )
        if require_entry:
            lines.append("FAIL: baseline entry required (--require-entry)")
            return CheckResult(ok=False, lines=lines)
        lines.append("PASS: nothing to compare against")
        return CheckResult(ok=True, lines=lines)

    baseline = matching[-1]
    ok = True
    lines.append(
        f"baseline: bench={baseline.get('bench')} t={baseline.get('t')}"
    )

    base_digest = baseline.get("digest")
    run_digest = manifest.dataset.get("digest")
    if base_digest and run_digest:
        if base_digest == run_digest:
            lines.append(f"digest: OK ({run_digest[:16]}...)")
        else:
            ok = False
            lines.append("digest: DRIFT")
            lines.append(f"  baseline: {base_digest}")
            lines.append(f"  run:      {run_digest}")
    else:
        lines.append("digest: not compared (missing on one side)")

    base_alerts = baseline.get("alerts") or {}
    run_alerts = dict(manifest.alerts_summary or {})
    if base_alerts.get("digest") and run_alerts.get("digest"):
        # The online alert stream is part of the determinism contract:
        # same config, same revision series -> same alerts, bit for bit.
        if base_alerts["digest"] == run_alerts["digest"]:
            lines.append(
                f"alerts: OK ({run_alerts.get('count', '?')} alerts, "
                f"digest {run_alerts['digest'][:16]}...)"
            )
        else:
            ok = False
            lines.append("alerts: DRIFT")
            lines.append(
                f"  baseline: count={base_alerts.get('count')} "
                f"digest={base_alerts['digest']}"
            )
            lines.append(
                f"  run:      count={run_alerts.get('count')} "
                f"digest={run_alerts['digest']}"
            )
            if base_alerts.get("count") != run_alerts.get("count"):
                lines.append("  (alert count changed, not just contents)")
    elif base_alerts.get("digest") or run_alerts.get("digest"):
        lines.append("alerts: not compared (stream missing on one side)")

    base_seconds = baseline.get("simulate_seconds")
    run_seconds = manifest.simulate_seconds()
    if base_seconds and run_seconds:
        ratio = run_seconds / float(base_seconds)
        verdict = "OK" if ratio <= max_slowdown else "SLOW"
        lines.append(
            f"simulate.month: {run_seconds:.3f}s vs baseline "
            f"{float(base_seconds):.3f}s ({ratio:.2f}x, limit "
            f"{max_slowdown:.2f}x): {verdict}"
        )
        if ratio > max_slowdown:
            ok = False
    else:
        lines.append("simulate.month: not compared (missing timing)")

    lines.append("PASS" if ok else "FAIL")
    return CheckResult(ok=ok, lines=lines)
