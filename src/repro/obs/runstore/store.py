"""The on-disk run registry and the per-invocation recorder.

Layout (under the runs root, default ``./runs``, overridable with
``--runs-dir`` or the ``REPRO_RUNS_DIR`` environment variable)::

    runs/
      <run-id>/
        manifest.json     # RunManifest document
        evidence.json     # EvidenceBundle document (when collected)
        trace.jsonl       # copy of the span trace (when --trace was on)

Because run ids are content-addressed, re-running an identical
configuration on the same revision lands on the same directory and
refreshes it in place -- the registry stores *distinct* runs, not a
log of invocations (the bench trajectory plays that role).

:class:`RunRecorder` is the CLI-facing half: construct it when a
command starts, feed it the simulation result and evidence as they
appear, and :meth:`~RunRecorder.finalize` writes the manifest.  All
wall-clock reads flow through the injected ``clock`` so the module
stays DET003-clean by construction, not by suppression.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.runstore.evidence import EvidenceBundle
from repro.obs.runstore.manifest import (
    ManifestError,
    RunManifest,
    canonical_json,
    manifest_from_dict,
)

#: Default registry root, relative to the working directory.
DEFAULT_RUNS_DIR = "runs"

#: Environment override for the registry root (tests point it at tmp).
ENV_RUNS_DIR = "REPRO_RUNS_DIR"

MANIFEST_FILE = "manifest.json"
EVIDENCE_FILE = "evidence.json"
TRACE_FILE = "trace.jsonl"
EVENTS_FILE = "events.jsonl"
ALERTS_FILE = "alerts.jsonl"


class RunStoreError(RuntimeError):
    """A registry operation failed (missing run, ambiguous prefix ...)."""


def resolve_runs_dir(explicit: Optional[Union[str, Path]] = None) -> Path:
    """The registry root: explicit flag > $REPRO_RUNS_DIR > ./runs."""
    if explicit:
        return Path(explicit)
    env = os.environ.get(ENV_RUNS_DIR)
    if env:
        return Path(env)
    return Path(DEFAULT_RUNS_DIR)


def _write_json_atomic(path: Path, payload: Any) -> None:
    """Write JSON via a sibling temp file + rename (no torn documents)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def serialize_alerts(lines: List[Dict[str, Any]]) -> bytes:
    """Canonical ``alerts.jsonl`` bytes: one canonical-JSON line each.

    The same function serves writing and the ``repro detect``
    digest-reproduction check, so "bit-identical alert stream" means
    exactly these bytes.
    """
    return "".join(
        canonical_json(line) + "\n" for line in lines
    ).encode("utf-8")


def _git_revision() -> Optional[str]:
    """The current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


class RunStore:
    """Read/write access to one registry root."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- writing -------------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        """The directory backing ``run_id`` (not necessarily existing)."""
        return self.root / run_id

    def write(
        self,
        manifest: RunManifest,
        evidence: Optional[EvidenceBundle] = None,
        trace_path: Optional[Union[str, Path]] = None,
        events_path: Optional[Union[str, Path]] = None,
        alerts: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist a run; returns its directory.

        ``events_path`` is the live-telemetry spool written during the
        run (run ids are content-addressed over the dataset digest, so
        the destination directory is only known now); a non-empty spool
        is copied in as ``events.jsonl`` for ``runs show --timeline``.

        ``alerts`` is an :meth:`OnlineDetector.export` document
        (``lines`` + ``summary``); the lines are serialized canonically
        into ``alerts.jsonl`` and the stream's SHA-256 lands in
        ``manifest.alerts_summary["digest"]`` -- the number ``runs
        check`` and CI hold bit-identical across worker counts.
        """
        run_dir = self.run_dir(manifest.run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        if evidence is not None:
            _write_json_atomic(run_dir / EVIDENCE_FILE, evidence.to_dict())
        if trace_path is not None:
            source = Path(trace_path)
            if source.is_file():
                shutil.copyfile(source, run_dir / TRACE_FILE)
                manifest.trace_file = TRACE_FILE
        if events_path is not None:
            source = Path(events_path)
            if source.is_file() and source.stat().st_size > 0:
                shutil.copyfile(source, run_dir / EVENTS_FILE)
                manifest.events_file = EVENTS_FILE
        if alerts is not None:
            body = serialize_alerts(alerts.get("lines") or [])
            (run_dir / ALERTS_FILE).write_bytes(body)
            manifest.alerts_file = ALERTS_FILE
            manifest.alerts_summary = {
                **(alerts.get("summary") or {}),
                "digest": hashlib.sha256(body).hexdigest(),
            }
        _write_json_atomic(run_dir / MANIFEST_FILE, manifest.to_dict())
        return run_dir

    # -- reading -------------------------------------------------------------

    def run_ids(self) -> List[str]:
        """All run ids present, sorted lexicographically."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and (p / MANIFEST_FILE).is_file()
        )

    def resolve(self, ref: str) -> str:
        """Resolve ``ref`` (full id, unique prefix, or ``latest``)."""
        ids = self.run_ids()
        if not ids:
            raise RunStoreError(f"no runs recorded under {self.root}")
        if ref == "latest":
            manifests = [self.load(run_id) for run_id in ids]
            manifests.sort(key=lambda m: (m.created_unix, m.run_id))
            return manifests[-1].run_id
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if not matches:
            raise RunStoreError(
                f"no run matching {ref!r} under {self.root} "
                f"(have: {', '.join(ids)})"
            )
        if len(matches) > 1:
            raise RunStoreError(
                f"ambiguous run ref {ref!r}: matches {', '.join(matches)}"
            )
        return matches[0]

    def load(self, ref: str) -> RunManifest:
        """Load the manifest for ``ref`` (id, unique prefix, ``latest``)."""
        run_id = ref if (self.root / ref / MANIFEST_FILE).is_file() else self.resolve(ref)
        path = self.root / run_id / MANIFEST_FILE
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RunStoreError(f"cannot read {path}: {exc}")
        try:
            return manifest_from_dict(document)
        except ManifestError as exc:
            raise RunStoreError(f"{path}: {exc}")

    def load_evidence(self, ref: str) -> Optional[EvidenceBundle]:
        """The evidence bundle for ``ref``, or None if none was stored."""
        run_id = self.resolve(ref)
        path = self.root / run_id / EVIDENCE_FILE
        if not path.is_file():
            return None
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RunStoreError(f"cannot read {path}: {exc}")
        return EvidenceBundle.from_dict(document)

    def list_manifests(self) -> List[RunManifest]:
        """Every manifest, oldest first."""
        manifests = [self.load(run_id) for run_id in self.run_ids()]
        manifests.sort(key=lambda m: (m.created_unix, m.run_id))
        return manifests


def run_summary(manifest: RunManifest) -> Dict[str, Any]:
    """One run's machine-readable listing record.

    The single serializer behind both ``repro runs list --json`` and the
    daemon's ``/runs`` endpoint, so the two surfaces can never drift.
    Summarizes rather than dumps: the full manifest stays one
    ``runs show`` away.
    """
    config = manifest.config
    return {
        "run_id": manifest.run_id,
        "schema": manifest.schema,
        "command": manifest.command,
        "engine": manifest.engine,
        "config": {
            "hours": config.get("hours"),
            "per_hour": config.get("per_hour"),
            "seed": config.get("seed"),
            "workers": config.get("workers"),
            "fault": config.get("fault"),
        },
        "git_rev": manifest.git_rev,
        "created_unix": manifest.created_unix,
        "dataset_digest": manifest.dataset.get("digest"),
        "alerts": {
            "count": manifest.alerts_summary.get("count"),
            "digest": manifest.alerts_summary.get("digest"),
        } if manifest.alerts_summary else None,
        "wall_seconds": manifest.timings.get("wall_seconds"),
    }


def runs_index(store: "RunStore") -> Dict[str, Any]:
    """The registry as one JSON document (oldest run first)."""
    runs = [run_summary(m) for m in store.list_manifests()]
    return {
        "runs_dir": str(store.root),
        "count": len(runs),
        "runs": runs,
    }


class RunRecorder:
    """Accumulates one invocation's facts and writes them on finalize.

    The recorder is deliberately forgiving: a registry that cannot be
    written must never fail the run it is recording, so callers wrap
    :meth:`finalize` and downgrade errors to a warning.
    """

    def __init__(
        self,
        command: str,
        argv: List[str],
        config: Dict[str, Any],
        runs_dir: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.command = command
        self.argv = list(argv)
        self.config = dict(config)
        self.store = RunStore(resolve_runs_dir(runs_dir))
        self._clock = clock
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.engine: Optional[str] = None
        self.dataset_info: Dict[str, Any] = {}
        self.evidence: Optional[EvidenceBundle] = None
        self.worker_cpu_seconds: Optional[float] = None

    def record_result(self, result: Any) -> None:
        """Capture dataset identity from a ``SimulationResult``."""
        dataset = getattr(result, "dataset", result)
        provenance = dict(getattr(dataset, "provenance", {}) or {})
        self.engine = provenance.get("engine")
        workers = provenance.get("workers")
        if workers is not None:
            self.config["workers"] = workers
        fingerprint = canonical_json(dataset.fingerprint())
        self.dataset_info = {
            "digest": dataset.digest(),
            "fingerprint_sha256": hashlib.sha256(
                fingerprint.encode("utf-8")
            ).hexdigest(),
            "provenance": provenance,
        }

    def record_evidence(self, bundle: EvidenceBundle) -> None:
        """Attach the attribution evidence collected for this run."""
        self.evidence = bundle

    def finalize(
        self,
        registry: MetricsRegistry,
        trace_path: Optional[Union[str, Path]] = None,
        events_path: Optional[Union[str, Path]] = None,
        alerts: Optional[Dict[str, Any]] = None,
    ) -> RunManifest:
        """Build the manifest, write the run directory, return the manifest."""
        timings = {
            "wall_seconds": time.perf_counter() - self._wall_start,
            "cpu_seconds": time.process_time() - self._cpu_start,
        }
        if self.worker_cpu_seconds is not None:
            timings["worker_cpu_seconds"] = self.worker_cpu_seconds
        evidence_digest = None
        evidence_summary: Dict[str, Any] = {}
        if self.evidence is not None:
            evidence_digest = self.evidence.digest()
            evidence_summary = self.evidence.summary()
        manifest = RunManifest(
            run_id="",
            command=self.command,
            argv=self.argv,
            config=self.config,
            engine=self.engine,
            git_rev=_git_revision(),
            created_unix=self._clock(),
            timings=timings,
            metrics=registry.dump_state(),
            dataset=self.dataset_info,
            evidence_digest=evidence_digest,
            evidence_summary=evidence_summary,
        ).seal()
        self.store.write(
            manifest, evidence=self.evidence, trace_path=trace_path,
            events_path=events_path, alerts=alerts,
        )
        return manifest
