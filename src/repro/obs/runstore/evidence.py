"""Attribution evidence: the structured facts behind each episode verdict.

The paper's blame pipeline compresses a month of per-hour failure rates
into a handful of verdict counts (Table 5).  When two runs disagree --
an episode appears, vanishes, or flips sides -- the counts alone cannot
say *why*.  This module captures, per run, the facts the verdicts rest
on:

* the knee threshold *f* detected on each side's failure-rate CDF;
* for every flagged episode, the per-hour bins (rate, transactions,
  failures) that crossed the knee, the peak rate, and the entity;
* peak rates for *all* entities (so a diff can explain near-misses:
  "client X peaked at 4.8% < f=5.0% in run B");
* the Table 5 blame breakdown at the paper's f = 0.05.

Everything is plain JSON (``repro.run-evidence/1``), content-digested so
manifests can pin it, and replayed by ``repro runs show`` / ``diff``.
Collection also mirrors each record as a Tracer event, so a ``--trace``
run carries the evidence inline in the span log.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.obs.runstore.manifest import canonical_json, check_schema

#: Evidence schema identifier; same compatibility rule as manifests.
SCHEMA = "repro.run-evidence/1"

#: Hour bins kept per episode record (long outages keep the first ones;
#: ``bins_truncated`` marks the cut).
MAX_BINS_PER_EPISODE = 24

#: Episode records kept per side, peak-rate-descending (``truncated``
#: counts the dropped tail).
MAX_RECORDS_PER_SIDE = 50

#: The paper's Table 5 operating point; verdict counts are recorded at
#: this f regardless of where the knee landed.
PAPER_THRESHOLD = 0.05


@dataclass
class EpisodeEvidence:
    """One flagged episode and the per-hour facts that flagged it."""

    side: str  # "client" | "server"
    entity: str
    entity_index: int
    start_hour: int
    end_hour: int  # inclusive
    threshold: float  # the knee f this episode was flagged at
    peak_rate: float
    #: Per-hour facts: {"hour", "rate", "transactions", "failures"}.
    bins: List[Dict[str, Any]] = field(default_factory=list)
    bins_truncated: int = 0

    @property
    def duration_hours(self) -> int:
        """Length of the episode in hours."""
        return self.end_hour - self.start_hour + 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON form."""
        return {
            "side": self.side,
            "entity": self.entity,
            "entity_index": self.entity_index,
            "start_hour": self.start_hour,
            "end_hour": self.end_hour,
            "threshold": self.threshold,
            "peak_rate": self.peak_rate,
            "bins": list(self.bins),
            "bins_truncated": self.bins_truncated,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "EpisodeEvidence":
        """Parse, ignoring unknown fields."""
        return cls(
            side=document["side"],
            entity=document["entity"],
            entity_index=int(document.get("entity_index", -1)),
            start_hour=int(document["start_hour"]),
            end_hour=int(document["end_hour"]),
            threshold=float(document["threshold"]),
            peak_rate=float(document["peak_rate"]),
            bins=list(document.get("bins") or []),
            bins_truncated=int(document.get("bins_truncated", 0)),
        )


@dataclass
class EvidenceBundle:
    """Everything ``repro runs show``/``diff`` needs to explain verdicts."""

    #: Detected knee per side: {"client": f, "server": f}.
    thresholds: Dict[str, float] = field(default_factory=dict)
    #: Entities with >= 1 flagged hour: {"client": [names], "server": [...]}.
    flagged: Dict[str, List[str]] = field(default_factory=dict)
    records: List[EpisodeEvidence] = field(default_factory=list)
    #: Dropped episode records per side (peak-rate tail).
    truncated: Dict[str, int] = field(default_factory=dict)
    #: Peak valid rate for EVERY entity: {"client": {name: rate}, ...}.
    entity_peak_rates: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Table 5 verdicts at the paper's f: counts keyed by side.
    blame: Dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON document (``evidence.json``)."""
        return {
            "schema": self.schema,
            "thresholds": dict(self.thresholds),
            "flagged": {k: list(v) for k, v in sorted(self.flagged.items())},
            "records": [r.to_dict() for r in self.records],
            "truncated": dict(self.truncated),
            "entity_peak_rates": {
                side: dict(sorted(rates.items()))
                for side, rates in sorted(self.entity_peak_rates.items())
            },
            "blame": dict(self.blame),
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "EvidenceBundle":
        """Parse an evidence document, ignoring unknown fields."""
        schema = document.get("schema", SCHEMA)
        check_schema(schema, SCHEMA)
        return cls(
            thresholds={
                str(k): float(v)
                for k, v in sorted((document.get("thresholds") or {}).items())
            },
            flagged={
                str(k): list(v)
                for k, v in sorted((document.get("flagged") or {}).items())
            },
            records=[
                EpisodeEvidence.from_dict(r)
                for r in document.get("records") or []
            ],
            truncated={
                str(k): int(v)
                for k, v in sorted((document.get("truncated") or {}).items())
            },
            entity_peak_rates={
                str(side): {str(n): float(r) for n, r in sorted(rates.items())}
                for side, rates in sorted(
                    (document.get("entity_peak_rates") or {}).items()
                )
            },
            blame=dict(document.get("blame") or {}),
            schema=schema,
        )

    def digest(self) -> str:
        """Content digest of the canonical JSON document."""
        payload = canonical_json(self.to_dict())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """The small manifest-embedded summary."""
        return {
            "thresholds": dict(self.thresholds),
            "flagged_clients": len(self.flagged.get("client", ())),
            "flagged_servers": len(self.flagged.get("server", ())),
            "episode_records": len(self.records),
            "blame": dict(self.blame),
        }

    def records_for(self, side: str) -> List[EpisodeEvidence]:
        """This side's episode records, peak-rate-descending."""
        return [r for r in self.records if r.side == side]


# --------------------------------------------------------------------------
# Collection
# --------------------------------------------------------------------------


def _side_evidence(
    side: str,
    names: List[str],
    rates: np.ndarray,
    transactions: np.ndarray,
    failures: np.ndarray,
    threshold: float,
    max_records: int,
    max_bins: int,
) -> Dict[str, Any]:
    """Flagged entities, episode records, and peak rates for one side."""
    from repro.core.episodes import RateMatrix, coalesce_episodes, episode_matrix

    matrix = RateMatrix(rates=rates, transactions=transactions)
    flags = episode_matrix(matrix, threshold)
    episodes = coalesce_episodes(flags)

    records: List[EpisodeEvidence] = []
    for episode in episodes:
        i = episode.entity_index
        hours = range(episode.start_hour, episode.end_hour + 1)
        bins = [
            {
                "hour": h,
                "rate": round(float(rates[i, h]), 6),
                "transactions": int(transactions[i, h]),
                "failures": int(failures[i, h]),
            }
            for h in hours
        ]
        truncated_bins = max(0, len(bins) - max_bins)
        peak = max(b["rate"] for b in bins)
        records.append(
            EpisodeEvidence(
                side=side,
                entity=names[i],
                entity_index=i,
                start_hour=episode.start_hour,
                end_hour=episode.end_hour,
                threshold=threshold,
                peak_rate=peak,
                bins=bins[:max_bins],
                bins_truncated=truncated_bins,
            )
        )
    records.sort(key=lambda r: (-r.peak_rate, r.entity, r.start_hour))
    truncated = max(0, len(records) - max_records)

    flagged = sorted({r.entity for r in records})
    peak_rates: Dict[str, float] = {}
    for i, name in enumerate(names):
        row = rates[i]
        valid = row[~np.isnan(row)]
        if valid.size:
            peak_rates[name] = round(float(valid.max()), 6)
    return {
        "flagged": flagged,
        "records": records[:max_records],
        "truncated": truncated,
        "peak_rates": peak_rates,
    }


@obs.timed("evidence.collect")
def collect_evidence(
    dataset,
    excluded_pairs: Optional[np.ndarray] = None,
    max_records: int = MAX_RECORDS_PER_SIDE,
    max_bins: int = MAX_BINS_PER_EPISODE,
) -> EvidenceBundle:
    """Run the episode/blame pipeline and keep the facts, not just verdicts.

    ``excluded_pairs`` is the permanent-pair mask (Section 4.4.2); pass
    the mask the report used so the evidence matches the headline
    numbers.
    """
    from repro.core.blame import run_blame_analysis
    from repro.core.episodes import client_rate_matrix, detect_knee, server_rate_matrix

    if excluded_pairs is not None:
        view = dataset.pair_exclusion_view(excluded_pairs)
        transactions, failures = view.transactions, view.failures
    else:
        transactions, failures = dataset.transactions, dataset.failures

    client_names = [c.name for c in dataset.world.clients]
    server_names = [w.name for w in dataset.world.websites]

    client_matrix = client_rate_matrix(dataset, transactions, failures)
    server_matrix = server_rate_matrix(dataset, transactions, failures)
    client_fails = failures.sum(axis=1, dtype=np.int64)
    server_fails = failures.sum(axis=0, dtype=np.int64)

    thresholds: Dict[str, float] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for side, matrix, fails, names in (
        ("client", client_matrix, client_fails, client_names),
        ("server", server_matrix, server_fails, server_names),
    ):
        try:
            knee = detect_knee(matrix)
        except ValueError:
            knee = PAPER_THRESHOLD  # no valid rates at all: paper's f
        thresholds[side] = round(float(knee), 6)
        sides[side] = _side_evidence(
            side, names, matrix.rates, matrix.transactions, fails,
            thresholds[side], max_records, max_bins,
        )

    blame = run_blame_analysis(
        dataset, threshold=PAPER_THRESHOLD, excluded_pairs=excluded_pairs
    )
    breakdown = blame.breakdown
    bundle = EvidenceBundle(
        thresholds=thresholds,
        flagged={side: sides[side]["flagged"] for side in sorted(sides)},
        records=[r for side in sorted(sides) for r in sides[side]["records"]],
        truncated={side: sides[side]["truncated"] for side in sorted(sides)},
        entity_peak_rates={
            side: sides[side]["peak_rates"] for side in sorted(sides)
        },
        blame={
            "threshold": breakdown.threshold,
            "server_side": breakdown.server_side,
            "client_side": breakdown.client_side,
            "both": breakdown.both,
            "other": breakdown.other,
            "total": breakdown.total,
        },
    )

    # Mirror into the trace so a --trace run carries its evidence inline.
    span = obs.current_span()
    span.event(
        "evidence.summary",
        client_knee=thresholds["client"],
        server_knee=thresholds["server"],
        flagged_clients=len(bundle.flagged.get("client", ())),
        flagged_servers=len(bundle.flagged.get("server", ())),
        episode_records=len(bundle.records),
    )
    for record in bundle.records:
        span.event(
            "evidence.episode",
            side=record.side,
            entity=record.entity,
            start_hour=record.start_hour,
            end_hour=record.end_hour,
            peak_rate=record.peak_rate,
            threshold=record.threshold,
        )
    return bundle
