"""Persistent run registry: content-addressed manifests, attribution
evidence, cross-run diffing, and the bench trajectory.

Import as ``from repro.obs import runstore`` -- :mod:`repro.obs` itself
does **not** import this package (it depends on :mod:`repro.core`,
which depends on :mod:`repro.obs`; importing it eagerly would cycle).
"""

from repro.obs.runstore.diffing import (
    CheckResult,
    RunDiff,
    check_run,
    diff_runs,
    render_diff,
)
from repro.obs.runstore.evidence import (
    EpisodeEvidence,
    EvidenceBundle,
    collect_evidence,
)
from repro.obs.runstore.manifest import (
    ManifestError,
    RunManifest,
    compute_run_id,
    manifest_from_dict,
)
from repro.obs.runstore.store import (
    RunRecorder,
    RunStore,
    RunStoreError,
    resolve_runs_dir,
)
from repro.obs.runstore.trajectory import (
    TrajectoryError,
    append_entry,
    load_trajectory,
    matching_entries,
)

__all__ = [
    "CheckResult",
    "EpisodeEvidence",
    "EvidenceBundle",
    "ManifestError",
    "RunDiff",
    "RunManifest",
    "RunRecorder",
    "RunStore",
    "RunStoreError",
    "TrajectoryError",
    "append_entry",
    "check_run",
    "collect_evidence",
    "compute_run_id",
    "diff_runs",
    "load_trajectory",
    "manifest_from_dict",
    "matching_entries",
    "render_diff",
    "resolve_runs_dir",
]
