"""Replay a JSONL trace file back into a span tree and summary.

``repro obs trace.jsonl`` uses this to turn the streamed records back
into something a human can read: the reconstructed span tree (repeated
siblings of the same name are collapsed into one aggregate line) plus a
per-name duration table and the event log highlights (e.g. the
``rng.fork`` seed events that make a run reproducible from its trace).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Tuple,
)


@dataclass
class TraceNode:
    """One span reconstructed from the JSONL stream."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    children: List["TraceNode"] = field(default_factory=list)


@dataclass
class LoadedTrace:
    """A parsed trace file: span forest plus standalone events."""

    roots: List[TraceNode]
    spans: Dict[int, TraceNode]
    events: List[Dict[str, Any]]

    @property
    def span_count(self) -> int:
        """Total spans in the trace."""
        return len(self.spans)


def load_trace(path: str) -> LoadedTrace:
    """Parse a JSONL trace file into a :class:`LoadedTrace`.

    Lines that are not valid JSON objects are skipped (a crashed run may
    leave a torn final line).
    """
    spans: Dict[int, TraceNode] = {}
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("type") == "span":
                node = TraceNode(
                    span_id=int(record["id"]),
                    parent_id=record.get("parent"),
                    name=str(record.get("name", "?")),
                    start=float(record.get("start", 0.0)),
                    duration=float(record.get("duration", 0.0)),
                    attrs=record.get("attrs") or {},
                    events=record.get("events") or [],
                )
                spans[node.span_id] = node
            elif record.get("type") == "event":
                events.append(record)
    roots: List[TraceNode] = []
    for node in spans.values():
        parent = spans.get(node.parent_id) if node.parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in spans.values():
        node.children.sort(key=lambda n: n.start)
    roots.sort(key=lambda n: n.start)
    return LoadedTrace(roots=roots, spans=spans, events=events)


def tail_records(
    path: str,
    poll_interval: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield records from ``path`` as they are appended (``tail -f``).

    Existing records are yielded first, then the file is polled every
    ``poll_interval`` seconds for new lines.  A torn final line (the
    writer mid-append) is buffered until its newline arrives, so a
    record is never yielded half-parsed.  ``stop`` is polled at EOF;
    returning True ends the stream (tests and the CLI's Ctrl-C path).
    """
    with open(path, "r", encoding="utf-8") as fh:
        buffer = ""
        while True:
            chunk = fh.readline()
            if chunk:
                buffer += chunk
                if not buffer.endswith("\n"):
                    continue
                line, buffer = buffer.strip(), ""
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
                continue
            if stop is not None and stop():
                return
            sleep(poll_interval)


def format_record(record: Dict[str, Any]) -> str:
    """One compact ``--follow`` line for a streamed span or event."""
    kind = record.get("type")
    if kind == "span":
        return (
            f"span  {record.get('name', '?')}  "
            f"{float(record.get('duration', 0.0)):.3f}s"
            f"{_fmt_attrs(record.get('attrs') or {})}"
        )
    if kind == "event":
        fields = record.get("fields") or {}
        body = " ".join(f"{k}={v}" for k, v in list(fields.items())[:6])
        return f"event {record.get('name', '?')}  {body}".rstrip()
    return json.dumps(record, sort_keys=True)


def _fmt_attrs(attrs: Dict[str, Any], limit: int = 3) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    body = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        body += ", ..."
    return f" [{body}]"


def render_tree(trace: LoadedTrace, collapse_threshold: int = 3) -> str:
    """Render the span forest; same-name sibling groups are collapsed.

    A run of >= ``collapse_threshold`` same-name siblings (e.g. 744
    ``simulate.hour`` spans) renders as one aggregate line with count,
    total, and mean duration.
    """
    lines: List[str] = []

    def walk(nodes: List[TraceNode], depth: int) -> None:
        indent = "  " * depth
        groups: Dict[str, List[TraceNode]] = {}
        order: List[str] = []
        for node in nodes:
            if node.name not in groups:
                groups[node.name] = []
                order.append(node.name)
            groups[node.name].append(node)
        for name in order:
            members = groups[name]
            if len(members) >= collapse_threshold:
                total = sum(n.duration for n in members)
                mean_ms = total / len(members) * 1000.0
                lines.append(
                    f"{indent}{name} x{len(members)}  "
                    f"total={total:.3f}s mean={mean_ms:.2f}ms"
                )
                merged: List[TraceNode] = []
                for member in members:
                    merged.extend(member.children)
                walk(merged, depth + 1)
            else:
                for node in members:
                    lines.append(
                        f"{indent}{node.name}  {node.duration:.3f}s"
                        f"{_fmt_attrs(node.attrs)}"
                    )
                    walk(node.children, depth + 1)

    walk(trace.roots, 0)
    return "\n".join(lines)


def aggregate_by_name(trace: LoadedTrace) -> List[Tuple[str, int, float]]:
    """(name, count, total_seconds) rows, slowest first."""
    totals: Dict[str, Tuple[int, float]] = {}
    for node in trace.spans.values():
        count, total = totals.get(node.name, (0, 0.0))
        totals[node.name] = (count + 1, total + node.duration)
    rows = [(name, c, t) for name, (c, t) in totals.items()]
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def summarize(trace: LoadedTrace) -> str:
    """The full ``repro obs`` output: tree, aggregates, event digest."""
    lines = [
        f"trace: {trace.span_count} spans, {len(trace.events)} events",
        "",
        "-- span tree --",
        render_tree(trace) or "(no spans)",
        "",
        "-- by span name --",
        f"{'name':<38} {'count':>8} {'total_s':>10} {'mean_ms':>10}",
    ]
    for name, count, total in aggregate_by_name(trace):
        lines.append(
            f"{name:<38} {count:>8} {total:>10.3f} "
            f"{total / count * 1000.0:>10.2f}"
        )
    event_counts: Dict[str, int] = {}
    for record in trace.events:
        event_counts[record.get("name", "?")] = (
            event_counts.get(record.get("name", "?"), 0) + 1
        )
    if event_counts:
        lines.append("")
        lines.append("-- events --")
        for name in sorted(event_counts):
            lines.append(f"{name:<38} {event_counts[name]:>8}")
    seeds = [
        record for record in trace.events
        if record.get("name") in ("rng.fork", "rng.stream", "rng.np_stream")
    ]
    if seeds:
        lines.append("")
        lines.append("-- rng seeds (replay these to reproduce the run) --")
        for record in seeds[:40]:
            fields = record.get("fields", {})
            lines.append(
                f"{record['name']:<14} {str(fields.get('name', '?')):<28} "
                f"seed={fields.get('seed')}"
            )
        if len(seeds) > 40:
            lines.append(f"... and {len(seeds) - 40} more")
    return "\n".join(lines)
