"""Co-located client similarity (Section 4.4.6, validation #2).

For each pair of co-located clients, the *similarity* of their client-side
failure episodes is |intersection| / |union| of their episode-hour sets
(Jaccard).  Co-located clients should share many client-side episodes
(same subnet, LDNS, uplink); randomly paired clients should not.  Tables 7
and 8 report exactly this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import MeasurementDataset
from repro.world.entities import Client


@dataclass(frozen=True)
class PairSimilarity:
    """Similarity of one client pair (a Table 8 row)."""

    client_a: str
    client_b: str
    episodes_a: int
    episodes_b: int
    intersection: int
    union: int

    @property
    def similarity(self) -> float:
        """|intersection| / |union|; 0 when neither has episodes."""
        return self.intersection / self.union if self.union else 0.0


def pair_similarity(
    dataset: MeasurementDataset,
    client_episodes: np.ndarray,
    name_a: str,
    name_b: str,
) -> PairSimilarity:
    """Similarity of two named clients' client-side episode sets."""
    ia = dataset.world.client_idx(name_a)
    ib = dataset.world.client_idx(name_b)
    a = client_episodes[ia]
    b = client_episodes[ib]
    return PairSimilarity(
        client_a=name_a,
        client_b=name_b,
        episodes_a=int(a.sum()),
        episodes_b=int(b.sum()),
        intersection=int((a & b).sum()),
        union=int((a | b).sum()),
    )


def colocated_similarities(
    dataset: MeasurementDataset, client_episodes: np.ndarray
) -> List[PairSimilarity]:
    """Similarities for every co-located pair in the world."""
    return [
        pair_similarity(dataset, client_episodes, a.name, b.name)
        for a, b in dataset.world.colocated_pairs()
    ]


def random_pair_similarities(
    dataset: MeasurementDataset,
    client_episodes: np.ndarray,
    count: int,
    seed: int = 42,
) -> List[PairSimilarity]:
    """Similarities for ``count`` random (non-co-located) client pairs --
    Table 7's control group."""
    rng = random.Random(seed)
    clients = dataset.world.clients
    colocated = {
        frozenset((a.name, b.name)) for a, b in dataset.world.colocated_pairs()
    }
    pairs = set()
    guard = 0
    while len(pairs) < count and guard < 100000:
        guard += 1
        a, b = rng.sample(range(len(clients)), 2)
        key = frozenset((clients[a].name, clients[b].name))
        if key in colocated or key in pairs:
            continue
        if clients[a].site == clients[b].site:
            continue
        pairs.add(key)
    return [
        pair_similarity(dataset, client_episodes, *sorted(key)) for key in pairs
    ]


#: Table 7's similarity buckets: (label, lower, upper], with exact-zero
#: broken out separately.
SIMILARITY_BUCKETS = (
    ("> 75%", 0.75, 1.01),
    ("50-75%", 0.50, 0.75),
    ("25-50%", 0.25, 0.50),
    ("< 25% & > 0%", 0.0, 0.25),
)


def bucket_similarities(rows: Sequence[PairSimilarity]) -> Dict[str, int]:
    """Bucket pair similarities into Table 7's rows."""
    result = {label: 0 for label, _, _ in SIMILARITY_BUCKETS}
    result["= 0%"] = 0
    for row in rows:
        s = row.similarity
        if s == 0.0:
            result["= 0%"] += 1
        elif s > 0.75:
            result["> 75%"] += 1
        elif s > 0.50:
            result["50-75%"] += 1
        elif s > 0.25:
            result["25-50%"] += 1
        else:
            result["< 25% & > 0%"] += 1
    return result


def showcase_pairs(
    dataset: MeasurementDataset, client_episodes: np.ndarray
) -> List[PairSimilarity]:
    """The named Table 8 pairs (Intel, KAIST, Columbia), where present."""
    wanted = [
        ("planet1.pittsburgh.intel-research.net", "planet2.pittsburgh.intel-research.net"),
        ("csplanetlab1.kaist.ac.kr", "csplanetlab3.kaist.ac.kr"),
        ("csplanetlab3.kaist.ac.kr", "csplanetlab4.kaist.ac.kr"),
        ("csplanetlab4.kaist.ac.kr", "csplanetlab1.kaist.ac.kr"),
        ("planetlab1.comet.columbia.edu", "planetlab2.comet.columbia.edu"),
        ("planetlab2.comet.columbia.edu", "planetlab3.comet.columbia.edu"),
        ("planetlab3.comet.columbia.edu", "planetlab1.comet.columbia.edu"),
    ]
    rows = []
    known = {c.name for c in dataset.world.clients}
    for a, b in wanted:
        if a in known and b in known:
            rows.append(pair_similarity(dataset, client_episodes, a, b))
    return rows
