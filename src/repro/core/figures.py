"""Figure data series: CSV export and terminal rendering.

The report builders (:mod:`repro.core.report`) print paper-vs-measured
summary tables; this module produces the underlying *series* for each
figure -- suitable for CSV export into any plotting tool -- plus a small
dependency-free ASCII renderer so the curves can be eyeballed in a
terminal.

Builders return :class:`FigureSeries` objects: named columns of equal
length.  One builder per figure:

* :func:`figure1_series`  -- stacked failure-rate bars per category.
* :func:`figure2_series`  -- cumulative domain-contribution curves.
* :func:`figure3_series`  -- TCP failure breakdown bars.
* :func:`figure4_series`  -- client/server episode-rate CDFs.
* :func:`figure5_series`  -- the per-client five-panel time series.
* :func:`figure6_series`  -- failure-rate CDF during BGP instability.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import classify, episodes
from repro.core.bgp_correlation import ClientTimeseries, InstabilityCorrelation
from repro.core.dataset import MeasurementDataset


@dataclass
class FigureSeries:
    """Named, equal-length data columns for one figure."""

    name: str
    columns: Dict[str, List[float]] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns in figure {self.name!r}: {lengths}")

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def to_csv(self) -> str:
        """Render the series as CSV text (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        headers = list(self.columns)
        writer.writerow(headers)
        for i in range(len(self)):
            writer.writerow([self.columns[h][i] for h in headers])
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        """Write the CSV to a file."""
        with open(path, "w") as fh:
            fh.write(self.to_csv())

    def column(self, name: str) -> List[float]:
        """One column's values."""
        return self.columns[name]


# --------------------------------------------------------------------------
# Builders
# --------------------------------------------------------------------------


def figure1_series(dataset: MeasurementDataset) -> FigureSeries:
    """Failure rate by type per category (stacked-bar data)."""
    rows = classify.failure_type_breakdown(dataset)
    return FigureSeries(
        name="figure1",
        columns={
            "category": [r.category.value for r in rows],
            "overall_rate": [r.overall_rate for r in rows],
            "dns_rate": [r.overall_rate * r.fraction("dns") for r in rows],
            "tcp_rate": [r.overall_rate * r.fraction("tcp") for r in rows],
            "http_rate": [r.overall_rate * r.fraction("http") for r in rows],
        },
        meta={"x": "category", "y": "transaction failure rate"},
    )


def figure2_series(dataset: MeasurementDataset) -> FigureSeries:
    """Cumulative contribution of domains to each DNS failure category."""
    contributions = classify.dns_domain_contributions(dataset)
    n = len(dataset.world.websites)
    columns: Dict[str, List[float]] = {"domain_rank": list(range(1, n + 1))}
    for series_name, rows in contributions.items():
        curve = classify.cumulative_fractions(rows)
        curve = curve + [1.0] * (n - len(curve)) if curve else [0.0] * n
        columns[series_name] = curve
    return FigureSeries(
        name="figure2",
        columns=columns,
        meta={"x": "domains (sorted by contribution)", "y": "cumulative share"},
    )


def figure3_series(dataset: MeasurementDataset) -> FigureSeries:
    """TCP failure sub-category shares per client category."""
    rows = classify.tcp_breakdown(dataset)
    return FigureSeries(
        name="figure3",
        columns={
            "category": [r.category.value for r in rows],
            "no_connection": [r.fraction("no_connection") for r in rows],
            "no_response": [r.fraction("no_response") for r in rows],
            "partial_response": [r.fraction("partial_response") for r in rows],
            "no_or_partial": [r.fraction("no_or_partial") for r in rows],
        },
        meta={"x": "category", "y": "share of TCP failures"},
    )


def figure4_series(
    dataset: MeasurementDataset,
    excluded_pairs: Optional[np.ndarray] = None,
    points: int = 200,
) -> FigureSeries:
    """The client and server per-episode failure-rate CDFs.

    Both CDFs are resampled onto a common ``points``-long grid so they can
    share one table.
    """
    if excluded_pairs is not None:
        view = dataset.pair_exclusion_view(excluded_pairs)
        transactions, failures = view.transactions, view.failures
    else:
        transactions = failures = None
    client_m = episodes.client_rate_matrix(dataset, transactions, failures)
    server_m = episodes.server_rate_matrix(dataset, transactions, failures)
    quantiles = np.linspace(0.0, 1.0, points)
    columns: Dict[str, List[float]] = {"cdf": quantiles.tolist()}
    for label, matrix in (("client_rate", client_m), ("server_rate", server_m)):
        samples = np.sort(matrix.flatten_valid())
        if samples.size == 0:
            columns[label] = [0.0] * points
        else:
            columns[label] = np.quantile(samples, quantiles).tolist()
    return FigureSeries(
        name="figure4",
        columns=columns,
        meta={"x": "episode failure rate", "y": "CDF"},
    )


def figure5_series(timeseries: ClientTimeseries) -> FigureSeries:
    """The five stacked panels of Figure 5 / Figure 7 for one client."""
    return FigureSeries(
        name=f"figure5:{timeseries.client_name}",
        columns={
            "hour": timeseries.hours.tolist(),
            "attempts": timeseries.attempts.tolist(),
            "failures": timeseries.failures.tolist(),
            "longest_streak": timeseries.longest_streak.tolist(),
            "withdrawals": timeseries.withdrawals.tolist(),
            "withdrawing_neighbors": timeseries.withdrawing_neighbors.tolist(),
        },
        meta={"x": "hour", "client": timeseries.client_name},
    )


def figure6_series(correlation: InstabilityCorrelation) -> FigureSeries:
    """CDF of TCP failure rates during severe BGP instability."""
    rates, cdf = correlation.cdf()
    return FigureSeries(
        name="figure6",
        columns={
            "failure_rate": rates.tolist(),
            "cdf": cdf.tolist(),
        },
        meta={"definition": correlation.definition},
    )


# --------------------------------------------------------------------------
# Terminal rendering
# --------------------------------------------------------------------------

_BLOCKS = " .:-=+*#%@"


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 12,
    title: str = "",
) -> str:
    """Plot a monotone-x curve as ASCII art.

    >>> art = ascii_curve([0, 1, 2], [0.0, 0.5, 1.0], width=10, height=4)
    >>> len(art.splitlines()) >= 4
    True
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if not xs:
        return "(empty curve)"
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_lo:8.3g} +" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<10.3g}" + " " * max(0, width - 20) + f"{x_hi:>10.3g}")
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart.

    >>> print(ascii_bars(["a", "b"], [1.0, 0.5], width=4))  # doctest: +SKIP
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no bars)"
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{str(label):<{label_w}}  {bar} {value:.3g}")
    return "\n".join(lines)


def render_figure(series: FigureSeries, width: int = 64) -> str:
    """Best-effort terminal rendering of a figure series."""
    numeric = {
        k: v for k, v in series.columns.items()
        if v and isinstance(v[0], (int, float))
    }
    labelish = [k for k, v in series.columns.items() if k not in numeric]
    if labelish and numeric:
        label_col = series.columns[labelish[0]]
        first_numeric = next(iter(numeric))
        return ascii_bars(
            [str(l) for l in label_col], numeric[first_numeric],
            width=width, title=series.name,
        )
    keys = list(numeric)
    if len(keys) >= 2:
        return ascii_curve(
            numeric[keys[0]], numeric[keys[1]], width=width, title=series.name
        )
    return f"{series.name}: nothing to render"
