"""Blame attribution (Sections 4.4.1 and 4.4.4).

Given the per-hour episode flags for clients and servers, each TCP
connection-level transaction failure between client C and server S in hour
H is classified:

* **server-side** -- H is a failure episode for S only;
* **client-side** -- H is a failure episode for C only;
* **both**        -- H is a failure episode for both;
* **other**       -- neither (intermittent / pair-specific trouble).

Permanent pairs are excluded first (Section 4.4.2).  Episodes are
identified on *overall* transaction failure rates (Figure 4's CDFs), while
the classified failures are the TCP ones -- this asymmetry is what surfaces
the paper's headline finding: client connectivity problems mostly appear as
DNS failures, so TCP failures skew server-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from repro import obs

from repro.core.dataset import MeasurementDataset
from repro.core.episodes import (
    RateMatrix,
    client_rate_matrix,
    episode_matrix,
    server_rate_matrix,
)


@dataclass(frozen=True)
class BlameBreakdown:
    """One row of Table 5."""

    threshold: float
    server_side: int
    client_side: int
    both: int
    other: int

    @property
    def total(self) -> int:
        """All classified TCP failures."""
        return self.server_side + self.client_side + self.both + self.other

    def fractions(self) -> Tuple[float, float, float, float]:
        """(server, client, both, other) fractions."""
        total = max(1, self.total)
        return (
            self.server_side / total,
            self.client_side / total,
            self.both / total,
            self.other / total,
        )

    @property
    def classified_fraction(self) -> float:
        """Fraction of failures attributable to some episode."""
        total = max(1, self.total)
        return (self.server_side + self.client_side + self.both) / total


@dataclass
class BlameAnalysis:
    """Everything downstream sections need: flags, rates, and breakdowns."""

    threshold: float
    client_rates: RateMatrix
    server_rates: RateMatrix
    client_episodes: np.ndarray  # (C, H) bool
    server_episodes: np.ndarray  # (S, H) bool
    breakdown: BlameBreakdown
    #: Failure counts attributed per (entity, hour): used by spread and
    #: similarity analyses.
    server_attributed: np.ndarray  # (C, S, H) failures in server-side hours
    client_attributed: np.ndarray
    #: The (C, S) permanent-pair exclusion mask used (None if no exclusion).
    excluded_pairs: Optional[np.ndarray] = None


@obs.timed("blame.run")
def run_blame_analysis(
    dataset: MeasurementDataset,
    threshold: float = 0.05,
    excluded_pairs: Optional[np.ndarray] = None,
) -> BlameAnalysis:
    """The full Section 4.4 pipeline for one threshold setting.

    ``excluded_pairs`` is the (C, S) permanent-pair mask; when None, no
    exclusion is applied.
    """
    if excluded_pairs is not None:
        view = dataset.pair_exclusion_view(excluded_pairs)
        transactions = view.transactions
        failures = view.failures
        tcp_failures = view.tcp_failures
    else:
        transactions = dataset.transactions
        failures = dataset.failures
        tcp_failures = dataset.tcp_failures

    client_rates = client_rate_matrix(dataset, transactions, failures)
    server_rates = server_rate_matrix(dataset, transactions, failures)
    client_flags = episode_matrix(client_rates, threshold)
    server_flags = episode_matrix(server_rates, threshold)

    # Broadcast the flags to (C, S, H) and bucket the TCP failures.
    c_flag = client_flags[:, None, :]
    s_flag = server_flags[None, :, :]
    tcp = tcp_failures.astype(np.int64)

    server_only = int((tcp * (s_flag & ~c_flag)).sum())
    client_only = int((tcp * (c_flag & ~s_flag)).sum())
    both = int((tcp * (c_flag & s_flag)).sum())
    other = int((tcp * (~c_flag & ~s_flag)).sum())

    breakdown = BlameBreakdown(
        threshold=threshold,
        server_side=server_only,
        client_side=client_only,
        both=both,
        other=other,
    )
    registry = obs.registry()
    threshold_label = f"{threshold:g}"
    for side, count in (
        ("server", server_only), ("client", client_only),
        ("both", both), ("other", other),
    ):
        registry.gauge(
            "blame_attributed_failures", side=side, threshold=threshold_label
        ).set(count)
    obs.current_span().set(
        threshold=threshold, server_side=server_only, client_side=client_only,
        both=both, other=other,
    )
    # Evidence trail: the verdict counts plus which entities were in an
    # episode at all (the facts `repro runs diff` explains churn with).
    obs.current_span().event(
        "blame.verdicts",
        threshold=threshold,
        server_side=server_only, client_side=client_only,
        both=both, other=other,
        clients_flagged=int(client_flags.any(axis=1).sum()),
        servers_flagged=int(server_flags.any(axis=1).sum()),
    )
    return BlameAnalysis(
        threshold=threshold,
        client_rates=client_rates,
        server_rates=server_rates,
        client_episodes=client_flags,
        server_episodes=server_flags,
        breakdown=breakdown,
        server_attributed=(tcp * s_flag).astype(np.int64),
        client_attributed=(tcp * c_flag).astype(np.int64),
        excluded_pairs=excluded_pairs,
    )


@obs.timed("blame.table")
def blame_table(
    dataset: MeasurementDataset,
    thresholds: Tuple[float, ...] = (0.05, 0.10),
    excluded_pairs: Optional[np.ndarray] = None,
) -> Tuple[BlameBreakdown, ...]:
    """Table 5: the breakdown at each threshold setting."""
    return tuple(
        run_blame_analysis(dataset, f, excluded_pairs).breakdown
        for f in thresholds
    )
