"""BGP instability vs end-to-end TCP failures (Section 4.6).

Consumes (a) the cleaned per-prefix-hour BGP statistics and (b) the
dataset's per-client-hour and per-replica-hour connection failure counts,
and produces:

* the two instability definitions' prefix-hour sets and their sizes (the
  paper's 111 and 32);
* the TCP failure-rate distribution during instability hours (Figure 6);
* the per-client time series for the Figure 5 / Figure 7 showcases
  (connection attempts, failures, longest failure streak, withdrawals,
  withdrawing neighbors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from repro import obs

from repro.bgp.cleaning import (
    CleanedHourlyStats,
    clean_hourly_stats,
    instability_hours_by_neighbors,
    instability_hours_by_volume,
)
from repro.bgp.messages import UpdateArchive
from repro.core.dataset import MeasurementDataset
from repro.net.addressing import Prefix

#: Minimum connection attempts in an hour for a rate to count.
MIN_CONNECTIONS = 10


@dataclass
class EndpointIndex:
    """Maps prefixes to the client rows / replica cells they cover."""

    client_rows: Dict[Prefix, List[int]] = field(default_factory=dict)
    replica_cells: Dict[Prefix, List[Tuple[int, int]]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        dataset: MeasurementDataset,
        prefix_of_client: Dict[str, Prefix],
        prefix_of_replica: Dict[Tuple[str, int], Prefix],
    ) -> "EndpointIndex":
        index = cls()
        for name, prefix in prefix_of_client.items():
            ci = dataset.world.client_idx(name)
            index.client_rows.setdefault(prefix, []).append(ci)
        for (site_name, ri), prefix in prefix_of_replica.items():
            si = dataset.world.site_idx(site_name)
            index.replica_cells.setdefault(prefix, []).append((si, ri))
        return index


def hourly_failure_rate_for_prefix(
    dataset: MeasurementDataset,
    index: EndpointIndex,
    prefix: Prefix,
    hour: int,
    min_connections: int = MIN_CONNECTIONS,
) -> Optional[float]:
    """The end-to-end TCP connection failure rate for a prefix-hour.

    Aggregates over every client and replica the prefix covers; returns
    None when there were too few connection attempts to judge.
    """
    conns = 0
    fails = 0
    for ci in index.client_rows.get(prefix, ()):
        conns += int(dataset.connections[ci, :, hour].sum())
        fails += int(dataset.failed_connections[ci, :, hour].sum())
    for si, ri in index.replica_cells.get(prefix, ()):
        conns += int(dataset.replica_connections[si, ri, hour])
        fails += int(dataset.replica_failed_connections[si, ri, hour])
    if conns < min_connections:
        return None
    return fails / conns


@dataclass
class InstabilityCorrelation:
    """The Section 4.6 headline numbers for one instability definition."""

    definition: str
    instability_hours: int
    measured_hours: int
    failure_rates: List[float]

    def fraction_over(self, rate: float) -> float:
        """Fraction of measured instability hours with failure rate > x."""
        if not self.failure_rates:
            return 0.0
        return sum(1 for r in self.failure_rates if r > rate) / len(
            self.failure_rates
        )

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted rates, cdf) -- the Figure 6 curve."""
        rates = np.sort(np.array(self.failure_rates))
        if rates.size == 0:
            return rates, rates
        return rates, np.arange(1, rates.size + 1) / rates.size


@obs.timed("bgp.correlate_instability")
def correlate_instability(
    dataset: MeasurementDataset,
    archive: UpdateArchive,
    index: EndpointIndex,
    min_withdrawing_neighbors: int = 70,
    volume_min_withdrawals: int = 75,
    volume_min_neighbors: int = 50,
) -> Tuple[InstabilityCorrelation, InstabilityCorrelation]:
    """Run both of the paper's instability definitions.

    Returns (by_neighbors, by_volume) correlations.
    """
    cleaned = clean_hourly_stats(archive)
    tracked = set(index.client_rows) | set(index.replica_cells)

    def build(name: str, keys: Set[Tuple[Prefix, int]]) -> InstabilityCorrelation:
        keys = {k for k in keys if k[0] in tracked and 0 <= k[1] < dataset.world.hours}
        rates = []
        for prefix, hour in sorted(keys, key=lambda k: (str(k[0]), k[1])):
            rate = hourly_failure_rate_for_prefix(dataset, index, prefix, hour)
            if rate is not None:
                rates.append(rate)
        return InstabilityCorrelation(
            definition=name,
            instability_hours=len(keys),
            measured_hours=len(rates),
            failure_rates=rates,
        )

    by_neighbors = build(
        f">={min_withdrawing_neighbors} neighbors withdrawing",
        instability_hours_by_neighbors(cleaned, min_withdrawing_neighbors),
    )
    by_volume = build(
        f">={volume_min_withdrawals} withdrawals from >={volume_min_neighbors} neighbors",
        instability_hours_by_volume(
            cleaned, volume_min_withdrawals, volume_min_neighbors
        ),
    )
    return by_neighbors, by_volume


# --------------------------------------------------------------------------
# Per-client time series (Figures 5 and 7)
# --------------------------------------------------------------------------


@dataclass
class ClientTimeseries:
    """The five stacked series of Figures 5 / 7 for one client."""

    client_name: str
    hours: np.ndarray
    attempts: np.ndarray
    failures: np.ndarray
    longest_streak: np.ndarray
    withdrawals: np.ndarray
    withdrawing_neighbors: np.ndarray


@obs.timed("bgp.client_timeseries")
def client_timeseries(
    dataset: MeasurementDataset,
    archive: UpdateArchive,
    index: EndpointIndex,
    client_name: str,
    streak_rng_seed: int = 3,
) -> ClientTimeseries:
    """Build the Figure 5/7 panel data for one client.

    The longest-consecutive-failure streak is estimated from the hour's
    attempt/failure counts: failures during a routing outage are
    consecutive (the prefix is dark for a contiguous sub-interval), whereas
    intermittent failures scatter.  With only hourly counts we approximate
    the streak as ``failures`` when the failure rate is high (>30%:
    contiguous outage) and as the longest run expected from random
    placement otherwise.
    """
    import random as _random

    ci = dataset.world.client_idx(client_name)
    hours = dataset.world.hours
    attempts = dataset.connections[ci].sum(axis=0, dtype=np.int64)
    failures = dataset.failed_connections[ci].sum(axis=0, dtype=np.int64)

    rng = _random.Random(streak_rng_seed)
    streaks = np.zeros(hours, dtype=np.int64)
    for h in range(hours):
        a, f = int(attempts[h]), int(failures[h])
        if a == 0 or f == 0:
            continue
        rate = f / a
        if rate > 0.3:
            streaks[h] = f  # contiguous outage
        else:
            streaks[h] = _longest_run_sample(a, f, rng)

    # BGP series for the client's prefix.
    prefix = None
    for pfx, rows in index.client_rows.items():
        if ci in rows:
            prefix = pfx
            break
    withdrawals = np.zeros(hours, dtype=np.int64)
    neighbors = np.zeros(hours, dtype=np.int64)
    if prefix is not None:
        stats = archive.hourly_stats()
        for (pfx, h), bucket in stats.items():
            if pfx == prefix and 0 <= h < hours:
                withdrawals[h] = bucket.withdrawals
                neighbors[h] = bucket.withdrawing_neighbors

    return ClientTimeseries(
        client_name=client_name,
        hours=np.arange(hours),
        attempts=attempts,
        failures=failures,
        longest_streak=streaks,
        withdrawals=withdrawals,
        withdrawing_neighbors=neighbors,
    )


def _longest_run_sample(attempts: int, failures: int, rng) -> int:
    """Longest failure run when failures land randomly among attempts."""
    positions = sorted(rng.sample(range(attempts), min(failures, attempts)))
    longest = run = 1
    for prev, cur in zip(positions, positions[1:]):
        run = run + 1 if cur == prev + 1 else 1
        longest = max(longest, run)
    return longest


def instability_rarity(
    dataset: MeasurementDataset,
    correlation: InstabilityCorrelation,
    num_prefixes: int,
) -> float:
    """Instability prefix-hours as a fraction of all prefix-hours (the
    paper: < 0.08% of data points)."""
    total = num_prefixes * dataset.world.hours
    return correlation.instability_hours / total if total else 0.0
