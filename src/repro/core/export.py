"""Dataset export/import -- the paper's public data release, in kind.

The authors published their measurement data [2].  This module serialises
performance records to JSON Lines (one transaction per line, schema below)
and reads them back, so downstream users can work with the raw records
outside this package.

Schema (one JSON object per line)::

    {"client": str, "site": str, "url": str, "ts": float, "hour": int,
     "failure": "none|dns|tcp|http|masked",
     "dns_kind": str|null, "tcp_kind": str|null, "http_status": int|null,
     "server_ip": str|null, "lookup_s": float, "download_s": float,
     "conns": int, "failed_conns": int, "losses": int, "bytes": int}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.records import (
    DNSFailureKind,
    FailureType,
    PerformanceRecord,
    RecordBatch,
    TCPFailureKind,
)
from repro.net.addressing import IPv4Address


class ExportError(ValueError):
    """Raised for malformed export files."""


def record_to_dict(record: PerformanceRecord) -> dict:
    """The JSON-ready representation of one record."""
    return {
        "client": record.client_name,
        "site": record.site_name,
        "url": record.url,
        "ts": record.timestamp,
        "hour": record.hour,
        "failure": record.failure_type.value,
        "dns_kind": record.dns_kind.value if record.dns_kind else None,
        "tcp_kind": record.tcp_kind.value if record.tcp_kind else None,
        "http_status": record.http_status,
        "server_ip": str(record.server_address) if record.server_address else None,
        "lookup_s": record.dns_lookup_time,
        "download_s": record.download_time,
        "conns": record.num_connections,
        "failed_conns": record.num_failed_connections,
        "losses": record.packet_losses,
        "bytes": record.bytes_received,
    }


def record_from_dict(data: dict) -> PerformanceRecord:
    """Rebuild a record from its JSON representation."""
    try:
        return PerformanceRecord(
            client_name=data["client"],
            site_name=data["site"],
            url=data["url"],
            timestamp=float(data["ts"]),
            hour=int(data["hour"]),
            failure_type=FailureType(data["failure"]),
            dns_kind=(
                DNSFailureKind(data["dns_kind"]) if data.get("dns_kind") else None
            ),
            tcp_kind=(
                TCPFailureKind(data["tcp_kind"]) if data.get("tcp_kind") else None
            ),
            http_status=data.get("http_status"),
            server_address=(
                IPv4Address.parse(data["server_ip"])
                if data.get("server_ip")
                else None
            ),
            dns_lookup_time=float(data.get("lookup_s", 0.0)),
            download_time=float(data.get("download_s", 0.0)),
            num_connections=int(data.get("conns", 0)),
            num_failed_connections=int(data.get("failed_conns", 0)),
            packet_losses=int(data.get("losses", 0)),
            bytes_received=int(data.get("bytes", 0)),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ExportError(f"malformed record: {exc}") from exc


def write_jsonl(
    records: Iterable[PerformanceRecord], path: Union[str, Path]
) -> int:
    """Write records to a JSONL file; returns the number written."""
    count = 0
    with Path(path).open("w") as fh:
        for record in records:
            fh.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> Iterator[PerformanceRecord]:
    """Stream records back from a JSONL file."""
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ExportError(f"line {line_no}: invalid JSON") from exc
            yield record_from_dict(data)


def load_batch(path: Union[str, Path]) -> RecordBatch:
    """Read a whole JSONL file into a RecordBatch."""
    return RecordBatch(list(read_jsonl(path)))
