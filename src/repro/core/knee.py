"""The shared CDF-knee ("kneedle") construction.

The paper locates "the distinct knee in each CDF that separates the low
failure rates (the 'normal' range) ... from the wide range of
significantly higher failure rates" (Section 4.4.3, Figure 4).  Three
consumers need the identical construction:

* the batch analysis (:func:`repro.core.episodes.detect_knee`),
* the live aggregator's running threshold estimate
  (:func:`repro.obs.live.aggregate.knee_of_rates`), and
* the online detection pipeline (:mod:`repro.obs.online`), whose
  end-of-run verdicts must match the batch analysis *bit for bit*.

That exact-match requirement is why this module is pure Python over
plain floats with no numpy: one implementation, one rounding behaviour,
shared by every caller.  (IEEE-754 double division of ints below 2**53
is identical in numpy and pure Python, so feeding either side's rates
through here lands on the same knee.)

This module is deliberately dependency-free (stdlib only, no ``repro``
imports): :mod:`repro.core` imports :mod:`repro.obs`, and the live
layer must be able to use the knee without creating a cycle.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

#: Candidate rate window the knee is searched in -- rates below are
#: clearly "normal", rates above are clearly episodes (the paper's
#: Figure 4 x-range of interest).
DEFAULT_CANDIDATE_RANGE = (0.01, 0.30)

#: The paper's fallback threshold f when the CDF is too degenerate for
#: a knee (Section 4.4.3 lands on f = 5%).
FALLBACK_THRESHOLD = 0.05

#: Minimum CDF points inside the candidate window for a knee to be
#: meaningful; below this callers fall back (batch) or report a
#: sentinel (live).
MIN_WINDOW_POINTS = 3


def cdf_points(
    sorted_samples: Sequence[float],
    candidate_range: Tuple[float, float] = DEFAULT_CANDIDATE_RANGE,
) -> List[Tuple[float, float]]:
    """The empirical-CDF points falling inside the candidate window.

    ``sorted_samples`` must be ascending; y values are ``(i + 1) / n``
    over the *full* sample count, exactly as
    :func:`repro.core.episodes.rate_cdf` computes them.  The window is
    located with bisection so the cost is proportional to the window,
    not the sample count (the online detector re-evaluates every hour).
    """
    n = len(sorted_samples)
    if n == 0:
        return []
    lo, hi = candidate_range
    start = bisect_left(sorted_samples, lo)
    stop = bisect_right(sorted_samples, hi)
    return [
        (float(sorted_samples[i]), (i + 1) / n) for i in range(start, stop)
    ]


def knee_of_points(points: Sequence[Tuple[float, float]]) -> float:
    """Max-perpendicular-distance point from the chord of ``points``.

    The "kneedle" construction: chord from the first to the last CDF
    point in the window; the knee is the point farthest from it.  A
    zero-length chord (all-equal x *and* y) degenerates to the first
    point.  Ties keep the first maximum, matching ``numpy.argmax``.
    """
    if not points:
        raise ValueError("no CDF points to locate a knee in")
    x0, y0 = points[0]
    x1, y1 = points[-1]
    dx, dy = x1 - x0, y1 - y0
    norm = (dx * dx + dy * dy) ** 0.5
    if norm == 0:
        return float(x0)
    best_x, best_d = x0, -1.0
    for x, y in points:
        distance = abs(dy * (x - x0) - dx * (y - y0)) / norm
        if distance > best_d:
            best_x, best_d = x, distance
    return float(best_x)


def knee_of_sorted(
    sorted_samples: Sequence[float],
    candidate_range: Tuple[float, float] = DEFAULT_CANDIDATE_RANGE,
) -> Optional[float]:
    """The knee of an ascending sample sequence's CDF, or ``None``.

    ``None`` means "too degenerate to call": fewer than
    :data:`MIN_WINDOW_POINTS` samples fall inside the candidate window.
    Callers choose their own degenerate behaviour -- the batch analysis
    substitutes :data:`FALLBACK_THRESHOLD`, the live dashboard renders
    a sentinel.
    """
    points = cdf_points(sorted_samples, candidate_range)
    if len(points) < MIN_WINDOW_POINTS:
        return None
    return knee_of_points(points)


def knee_of_cdf(
    samples: Sequence[float],
    candidate_range: Tuple[float, float] = DEFAULT_CANDIDATE_RANGE,
) -> Optional[float]:
    """Convenience wrapper over unsorted samples (sorts a copy)."""
    return knee_of_sorted(sorted(samples), candidate_range)


def distinct_in_window(
    sorted_samples: Sequence[float],
    candidate_range: Tuple[float, float] = DEFAULT_CANDIDATE_RANGE,
) -> int:
    """How many *distinct* sample values fall inside the window.

    The live aggregator's degeneracy test: an all-equal window has a
    well-defined chord degenerate knee, but reporting it as a threshold
    estimate would mislead -- the dashboard shows a sentinel instead.
    """
    lo, hi = candidate_range
    start = bisect_left(sorted_samples, lo)
    stop = bisect_right(sorted_samples, hi)
    distinct = 0
    previous: Optional[float] = None
    for i in range(start, stop):
        value = sorted_samples[i]
        if previous is None or value != previous:
            distinct += 1
            previous = value
    return distinct
