"""Permanent-pair diagnosis -- the investigation Section 4.4.2 defers.

The paper identifies 38 near-permanently failing pairs and eyeballs a few
(northwestern<->mp3.com's checksum corruption; several PL sites blocked
from Chinese websites), deferring "a more detailed investigation ... to
future work."  This module automates that triage from the observations:

* **failure signature** -- the dominant TCP failure kind of the pair
  (all-no-connection looks like filtering/blocking; all-partial-response
  looks like on-path corruption or an aborting middlebox);
* **asymmetry check** -- whether the client communicates fine with other
  servers and the server with other clients (isolating the problem to the
  *pair*, the paper's observation for northwestern<->mp3.com);
* **co-blocked grouping** -- clients broken to the same server, and
  servers broken for the same client (the paper's "certain websites are
  being blocked at particular client sites" pattern).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.dataset import MeasurementDataset
from repro.core.permanent import PermanentPair, PermanentPairReport


class PermanentFailureMode(enum.Enum):
    """Triage verdicts for a permanently failing pair."""

    #: SYNs never answered: filtering, blackholing, or blocking.
    BLOCKED = "blocked"
    #: Transfers start but die: corruption or an aborting middlebox.
    CORRUPTED_TRANSFER = "corrupted_transfer"
    #: Connections establish but no response: application-level refusal.
    SILENT_SERVICE = "silent_service"
    #: Name never resolves for this client: DNS-level blocking.
    DNS_DENIED = "dns_denied"
    #: No dominant signature.
    MIXED = "mixed"


@dataclass
class PairDiagnosis:
    """The triage result for one permanent pair."""

    pair: PermanentPair
    mode: PermanentFailureMode
    #: Failure-kind shares (noconn, noresp, partial, dns) among failures.
    signature: Dict[str, float]
    #: This client's failure rate to every *other* server.
    client_elsewhere_rate: float
    #: This server's failure rate from every *other* client.
    server_elsewhere_rate: float

    @property
    def pair_specific(self) -> bool:
        """True when both endpoints are healthy elsewhere -- the problem
        lives strictly between them (the northwestern<->mp3.com shape)."""
        return self.client_elsewhere_rate < 0.1 and self.server_elsewhere_rate < 0.1


def diagnose_pair(
    dataset: MeasurementDataset, pair: PermanentPair
) -> PairDiagnosis:
    """Triage one permanent pair from the dataset's observations."""
    ci = dataset.world.client_idx(pair.client_name)
    si = dataset.world.site_idx(pair.site_name)

    noconn = int(dataset.tcp_noconn[ci, si].sum())
    noresp = int(dataset.tcp_noresp[ci, si].sum())
    partial = int(
        dataset.tcp_partial[ci, si].sum() + dataset.tcp_ambiguous[ci, si].sum()
    )
    dns = int(dataset.dns_failures[ci, si].sum())
    total = max(1, noconn + noresp + partial + dns)
    signature = {
        "no_connection": noconn / total,
        "no_response": noresp / total,
        "partial_response": partial / total,
        "dns": dns / total,
    }

    if signature["no_connection"] > 0.7:
        mode = PermanentFailureMode.BLOCKED
    elif signature["partial_response"] > 0.7:
        mode = PermanentFailureMode.CORRUPTED_TRANSFER
    elif signature["no_response"] > 0.7:
        mode = PermanentFailureMode.SILENT_SERVICE
    elif signature["dns"] > 0.7:
        mode = PermanentFailureMode.DNS_DENIED
    else:
        mode = PermanentFailureMode.MIXED

    # Asymmetry: how each endpoint fares with everyone else.
    client_trans = int(dataset.transactions[ci].sum()) - int(
        dataset.transactions[ci, si].sum()
    )
    client_fails = int(dataset.failures[ci].sum()) - int(
        dataset.failures[ci, si].sum()
    )
    server_trans = int(dataset.transactions[:, si].sum()) - int(
        dataset.transactions[ci, si].sum()
    )
    server_fails = int(dataset.failures[:, si].sum()) - int(
        dataset.failures[ci, si].sum()
    )
    return PairDiagnosis(
        pair=pair,
        mode=mode,
        signature=signature,
        client_elsewhere_rate=client_fails / max(1, client_trans),
        server_elsewhere_rate=server_fails / max(1, server_trans),
    )


@dataclass
class PermanentFailureInvestigation:
    """The full Section 4.4.2 follow-up."""

    diagnoses: List[PairDiagnosis]

    def by_mode(self) -> Dict[PermanentFailureMode, List[PairDiagnosis]]:
        """Group diagnoses by failure mode."""
        groups: Dict[PermanentFailureMode, List[PairDiagnosis]] = {}
        for diagnosis in self.diagnoses:
            groups.setdefault(diagnosis.mode, []).append(diagnosis)
        return groups

    def blocked_site_groups(self, min_clients: int = 3) -> Dict[str, List[str]]:
        """Servers blocked for several clients -- the censorship pattern.

        Returns ``site -> [client, ...]`` for sites with at least
        ``min_clients`` blocked clients.
        """
        groups: Dict[str, List[str]] = {}
        for diagnosis in self.diagnoses:
            if diagnosis.mode is PermanentFailureMode.BLOCKED:
                groups.setdefault(diagnosis.pair.site_name, []).append(
                    diagnosis.pair.client_name
                )
        return {
            site: sorted(clients)
            for site, clients in groups.items()
            if len(clients) >= min_clients
        }

    def pair_specific_cases(self) -> List[PairDiagnosis]:
        """Strictly pairwise problems (healthy endpoints elsewhere)."""
        return [d for d in self.diagnoses if d.pair_specific]

    def summary(self) -> str:
        """A readable investigation report."""
        lines = [f"{len(self.diagnoses)} permanent pairs diagnosed"]
        for mode, group in sorted(
            self.by_mode().items(), key=lambda kv: -len(kv[1])
        ):
            lines.append(f"  {mode.value}: {len(group)}")
        blocked = self.blocked_site_groups()
        if blocked:
            lines.append("widely-blocked sites:")
            for site, clients in sorted(
                blocked.items(), key=lambda kv: -len(kv[1])
            ):
                lines.append(f"  {site}: {len(clients)} clients")
        return "\n".join(lines)


def investigate_permanent_failures(
    dataset: MeasurementDataset, report: PermanentPairReport
) -> PermanentFailureInvestigation:
    """Diagnose every permanent pair in a Section 4.4.2 report."""
    return PermanentFailureInvestigation(
        diagnoses=[diagnose_pair(dataset, pair) for pair in report.pairs]
    )
