"""Failure episode identification (Section 4.4.3).

An *episode* is a 1-hour period; a *failure episode* for an entity (client
or server) is an episode in which the entity's aggregate failure rate is
abnormally high.  "Abnormally high" is determined by locating the knee of
the CDF of per-episode failure rates across the whole system (Figure 4)
rather than by an arbitrary threshold; the paper lands on f = 5% with a
more conservative f = 10% variant.

This module computes the rate matrices, the CDFs, an automatic knee
detector, the boolean episode matrices, and episode coalescing (the
Section 4.4.5 duration statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from repro import obs

from repro.core import knee as knee_mod
from repro.core.dataset import MIN_SAMPLES_PER_HOUR, MeasurementDataset


@dataclass(frozen=True)
class RateMatrix:
    """Per-entity-per-hour failure rates with sample-count validity."""

    rates: np.ndarray  # (N, H), NaN where too few samples
    transactions: np.ndarray  # (N, H)

    @property
    def valid(self) -> np.ndarray:
        """Boolean matrix: enough samples for a meaningful rate."""
        return ~np.isnan(self.rates)

    def flatten_valid(self) -> np.ndarray:
        """All valid rates, flattened (the Figure 4 sample set)."""
        return self.rates[self.valid]


@obs.timed("episodes.client_rate_matrix")
def client_rate_matrix(
    dataset: MeasurementDataset,
    transactions: Optional[np.ndarray] = None,
    failures: Optional[np.ndarray] = None,
    min_samples: int = MIN_SAMPLES_PER_HOUR,
) -> RateMatrix:
    """Per-client-hour failure rates, aggregated over all servers.

    ``transactions``/``failures`` default to the dataset's full counts;
    pass masked views to exclude permanent pairs.
    """
    if transactions is None:
        transactions = dataset.transactions
    if failures is None:
        failures = dataset.failures
    trans = transactions.sum(axis=1, dtype=np.int64)
    fails = failures.sum(axis=1, dtype=np.int64)
    return _rates(trans, fails, min_samples)


@obs.timed("episodes.server_rate_matrix")
def server_rate_matrix(
    dataset: MeasurementDataset,
    transactions: Optional[np.ndarray] = None,
    failures: Optional[np.ndarray] = None,
    min_samples: int = MIN_SAMPLES_PER_HOUR,
) -> RateMatrix:
    """Per-server-hour failure rates, aggregated over all clients."""
    if transactions is None:
        transactions = dataset.transactions
    if failures is None:
        failures = dataset.failures
    trans = transactions.sum(axis=0, dtype=np.int64)
    fails = failures.sum(axis=0, dtype=np.int64)
    return _rates(trans, fails, min_samples)


def _rates(trans: np.ndarray, fails: np.ndarray, min_samples: int) -> RateMatrix:
    rates = np.full(trans.shape, np.nan, dtype=float)
    enough = trans >= min_samples
    rates[enough] = fails[enough] / trans[enough]
    return RateMatrix(rates=rates, transactions=trans)


# --------------------------------------------------------------------------
# CDF and knee detection
# --------------------------------------------------------------------------


def rate_cdf(matrix: RateMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """The empirical CDF of valid per-episode rates (Figure 4's curves).

    Returns (sorted_rates, cdf_values).
    """
    samples = np.sort(matrix.flatten_valid())
    if samples.size == 0:
        return np.array([]), np.array([])
    cdf = np.arange(1, samples.size + 1) / samples.size
    return samples, cdf


@obs.timed("episodes.detect_knee")
def detect_knee(
    matrix: RateMatrix,
    candidate_range: Tuple[float, float] = (0.01, 0.30),
) -> float:
    """Locate the knee of the rate CDF.

    The paper identifies "the distinct knee in each CDF that separates the
    low failure rates (the 'normal' range) ... from the wide range of
    significantly higher failure rates".  The construction itself lives in
    :mod:`repro.core.knee` (maximum perpendicular distance from the chord
    of the CDF restricted to the candidate range -- "kneedle"), shared
    with the live aggregator and the online detection pipeline so all
    three land on the identical threshold for the same rates.
    """
    samples = np.sort(matrix.flatten_valid())
    if samples.size == 0:
        raise ValueError("no valid episode rates to detect a knee in")
    points = knee_mod.cdf_points(samples.tolist(), candidate_range)
    if len(points) < knee_mod.MIN_WINDOW_POINTS:
        # Degenerate (nearly failure-free) data: fall back to the paper's f.
        knee = knee_mod.FALLBACK_THRESHOLD
        obs.current_span().event(
            "episodes.knee", f=knee, samples=int(samples.size),
            in_window=len(points), fallback=True,
        )
        return knee
    knee = knee_mod.knee_of_points(points)
    # The evidence trail: the knee f, how many episode-rate samples the
    # CDF had, and how many sat in the candidate window.
    obs.current_span().event(
        "episodes.knee", f=round(knee, 6), samples=int(samples.size),
        in_window=len(points), fallback=False,
    )
    return knee


# --------------------------------------------------------------------------
# Episode flags and coalescing
# --------------------------------------------------------------------------


def episode_matrix(matrix: RateMatrix, threshold: float) -> np.ndarray:
    """Boolean (N, H): entity-hours whose failure rate >= threshold."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold out of range: {threshold}")
    flags = np.zeros(matrix.rates.shape, dtype=bool)
    valid = matrix.valid
    flags[valid] = matrix.rates[valid] >= threshold
    return flags


@dataclass(frozen=True)
class CoalescedEpisode:
    """A maximal run of consecutive failure-episode hours for one entity."""

    entity_index: int
    start_hour: int
    end_hour: int  # inclusive

    @property
    def duration_hours(self) -> int:
        """Length of the run in hours."""
        return self.end_hour - self.start_hour + 1


@obs.timed("episodes.coalesce")
def coalesce_episodes(flags: np.ndarray) -> List[CoalescedEpisode]:
    """Merge consecutive episode-hours per entity (Section 4.4.5)."""
    episodes: List[CoalescedEpisode] = []
    n, h = flags.shape
    for i in range(n):
        row = flags[i]
        start = None
        for hour in range(h):
            if row[hour] and start is None:
                start = hour
            elif not row[hour] and start is not None:
                episodes.append(CoalescedEpisode(i, start, hour - 1))
                start = None
        if start is not None:
            episodes.append(CoalescedEpisode(i, start, h - 1))
    return episodes


@dataclass(frozen=True)
class EpisodeStats:
    """Summary of episode structure (the Section 4.4.5 numbers)."""

    total_episode_hours: int
    coalesced_count: int
    mean_duration: float
    median_duration: float
    max_duration: int
    entities_with_any: int
    entities_with_multiple: int


@obs.timed("episodes.stats")
def episode_stats(flags: np.ndarray) -> EpisodeStats:
    """Compute the Section 4.4.5 duration/spread statistics."""
    coalesced = coalesce_episodes(flags)
    durations = [e.duration_hours for e in coalesced]
    per_entity = flags.any(axis=1)
    multiple = np.zeros(flags.shape[0], dtype=bool)
    counts: dict = {}
    for episode in coalesced:
        counts[episode.entity_index] = counts.get(episode.entity_index, 0) + 1
    for idx, count in counts.items():
        if count > 1 or flags[idx].sum() > 1:
            multiple[idx] = True
    return EpisodeStats(
        total_episode_hours=int(flags.sum()),
        coalesced_count=len(coalesced),
        mean_duration=float(np.mean(durations)) if durations else 0.0,
        median_duration=float(np.median(durations)) if durations else 0.0,
        max_duration=int(np.max(durations)) if durations else 0,
        entities_with_any=int(per_entity.sum()),
        entities_with_multiple=int(multiple.sum()),
    )
