"""The measurement dataset: month-long counts in array form.

The paper's analyses all operate on aggregates -- per client-hour,
server-hour, and pair-month failure rates.  The dataset therefore stores
counts as dense ``(clients, sites, hours)`` arrays, which both engines
(vectorised and detailed) can fill: the detailed engine folds individual
:class:`~repro.core.records.PerformanceRecord` objects in, the fast engine
writes counts directly.

Replica-level counts (needed by Section 4.5 and the BGP analysis) are kept
as ``(sites, max_replicas, hours)`` arrays aggregated across clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.records import (
    DNSFailureKind,
    FailureType,
    PerformanceRecord,
    TCPFailureKind,
)
from repro.world.entities import ClientCategory, World

#: Minimum samples for a rate to be considered meaningful in an hour bin.
MIN_SAMPLES_PER_HOUR = 10


class MeasurementDataset:
    """Dense count arrays for one simulated (or replayed) experiment."""

    _DNS_FIELDS = {
        DNSFailureKind.LDNS_TIMEOUT: "dns_ldns",
        DNSFailureKind.NON_LDNS_TIMEOUT: "dns_nonldns",
        DNSFailureKind.ERROR_RESPONSE: "dns_error",
    }
    _TCP_FIELDS = {
        TCPFailureKind.NO_CONNECTION: "tcp_noconn",
        TCPFailureKind.NO_RESPONSE: "tcp_noresp",
        TCPFailureKind.PARTIAL_RESPONSE: "tcp_partial",
        TCPFailureKind.NO_OR_PARTIAL: "tcp_ambiguous",
    }

    def __init__(self, world: World) -> None:
        self.world = world
        c, s, h = len(world.clients), len(world.websites), world.hours
        self.shape = (c, s, h)
        count = lambda dtype=np.uint16: np.zeros(self.shape, dtype=dtype)
        # Transaction-level counts.
        self.transactions = count()
        self.dns_ldns = count()
        self.dns_nonldns = count()
        self.dns_error = count()
        self.tcp_noconn = count()
        self.tcp_noresp = count()
        self.tcp_partial = count()
        self.tcp_ambiguous = count()
        self.http_errors = count()
        self.masked_failures = count()  # proxied (CN) failures, nature hidden
        # Connection-level counts (unavailable for proxied clients).
        self.connections = count(np.uint32)
        self.failed_connections = count(np.uint32)
        # Replica-level counts, aggregated over clients.
        r = max(1, world.max_replicas())
        self.max_replicas = r
        self.replica_connections = np.zeros((s, r, h), dtype=np.uint32)
        self.replica_failed_connections = np.zeros((s, r, h), dtype=np.uint32)
        # Optional packet-loss estimate (retransmission-inferred).
        self.packet_losses = count(np.uint32)

    # -- ingestion ----------------------------------------------------------

    def add_record(self, record: PerformanceRecord) -> None:
        """Fold one performance record into the count arrays."""
        ci = self.world.client_idx(record.client_name)
        si = self.world.site_idx(record.site_name)
        h = record.hour
        if not 0 <= h < self.world.hours:
            raise ValueError(f"hour {h} outside experiment")
        self.transactions[ci, si, h] += 1
        self.packet_losses[ci, si, h] += record.packet_losses
        client = self.world.clients[ci]
        if record.failed and client.proxied:
            self.masked_failures[ci, si, h] += 1
        elif record.failure_type is FailureType.DNS:
            getattr(self, self._DNS_FIELDS[record.dns_kind])[ci, si, h] += 1
        elif record.failure_type is FailureType.TCP:
            getattr(self, self._TCP_FIELDS[record.tcp_kind])[ci, si, h] += 1
        elif record.failure_type is FailureType.HTTP:
            self.http_errors[ci, si, h] += 1
        if not client.proxied:
            self.connections[ci, si, h] += record.num_connections
            self.failed_connections[ci, si, h] += record.num_failed_connections

    def add_records(self, records: Iterable[PerformanceRecord]) -> None:
        """Fold many records in."""
        for record in records:
            self.add_record(record)

    # -- derived aggregates ---------------------------------------------------

    @property
    def dns_failures(self) -> np.ndarray:
        """All DNS failures per cell."""
        return (
            self.dns_ldns.astype(np.uint32)
            + self.dns_nonldns
            + self.dns_error
        )

    @property
    def tcp_failures(self) -> np.ndarray:
        """All TCP connection-level transaction failures per cell."""
        return (
            self.tcp_noconn.astype(np.uint32)
            + self.tcp_noresp
            + self.tcp_partial
            + self.tcp_ambiguous
        )

    @property
    def failures(self) -> np.ndarray:
        """All failed transactions per cell."""
        return (
            self.dns_failures
            + self.tcp_failures
            + self.http_errors
            + self.masked_failures
        )

    def client_hour_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(transactions, failures) per client-hour, shape (C, H)."""
        return (
            self.transactions.sum(axis=1, dtype=np.int64),
            self.failures.sum(axis=1, dtype=np.int64),
        )

    def server_hour_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(transactions, failures) per server-hour, shape (S, H)."""
        return (
            self.transactions.sum(axis=0, dtype=np.int64),
            self.failures.sum(axis=0, dtype=np.int64),
        )

    def pair_month_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(transactions, failures) per client-server pair, shape (C, S)."""
        return (
            self.transactions.sum(axis=2, dtype=np.int64),
            self.failures.sum(axis=2, dtype=np.int64),
        )

    def client_failure_rates(self) -> np.ndarray:
        """Month-long transaction failure rate per client, shape (C,)."""
        trans = self.transactions.sum(axis=(1, 2), dtype=np.int64)
        fails = self.failures.sum(axis=(1, 2), dtype=np.int64)
        return _safe_rate(fails, trans)

    def server_failure_rates(self) -> np.ndarray:
        """Month-long transaction failure rate per server, shape (S,)."""
        trans = self.transactions.sum(axis=(0, 2), dtype=np.int64)
        fails = self.failures.sum(axis=(0, 2), dtype=np.int64)
        return _safe_rate(fails, trans)

    def category_mask(self, category: ClientCategory) -> np.ndarray:
        """Boolean client mask for one category, shape (C,)."""
        return np.array(
            [c.category is category for c in self.world.clients], dtype=bool
        )

    def proxied_mask(self) -> np.ndarray:
        """Boolean mask for proxied (CN) clients, shape (C,)."""
        return np.array([c.proxied for c in self.world.clients], dtype=bool)

    def pair_exclusion_view(self, excluded: np.ndarray) -> "MaskedCounts":
        """Counts with the given (C, S) boolean pair mask zeroed out --
        used to exclude permanent-failure pairs (Section 4.4.2)."""
        return MaskedCounts(self, excluded)

    # -- persistence ------------------------------------------------------------

    _ARRAY_FIELDS = (
        "transactions", "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures", "connections", "failed_connections",
        "replica_connections", "replica_failed_connections", "packet_losses",
    )

    def save(self, path: str) -> None:
        """Persist all count arrays to an .npz file."""
        np.savez_compressed(
            path, **{name: getattr(self, name) for name in self._ARRAY_FIELDS}
        )

    @classmethod
    def load(cls, path: str, world: World) -> "MeasurementDataset":
        """Load arrays saved by :meth:`save` against a matching world."""
        dataset = cls(world)
        with np.load(path) as data:
            for name in cls._ARRAY_FIELDS:
                stored = data[name]
                current = getattr(dataset, name)
                if stored.shape != current.shape:
                    raise ValueError(
                        f"array {name}: shape {stored.shape} does not match "
                        f"world shape {current.shape}"
                    )
                setattr(dataset, name, stored)
        return dataset


class MaskedCounts:
    """A view of a dataset with certain client-server pairs excluded."""

    def __init__(self, dataset: MeasurementDataset, excluded_pairs: np.ndarray) -> None:
        c, s, _ = dataset.shape
        if excluded_pairs.shape != (c, s):
            raise ValueError("pair mask must have shape (clients, sites)")
        self.dataset = dataset
        self.keep = ~excluded_pairs[:, :, None]  # broadcast over hours

    def _masked(self, array: np.ndarray) -> np.ndarray:
        return array * self.keep

    @property
    def transactions(self) -> np.ndarray:
        """Transactions with excluded pairs zeroed."""
        return self._masked(self.dataset.transactions)

    @property
    def failures(self) -> np.ndarray:
        """Failures with excluded pairs zeroed."""
        return self._masked(self.dataset.failures)

    @property
    def tcp_failures(self) -> np.ndarray:
        """TCP failures with excluded pairs zeroed."""
        return self._masked(self.dataset.tcp_failures)

    @property
    def connections(self) -> np.ndarray:
        """Connections with excluded pairs zeroed."""
        return self._masked(self.dataset.connections)

    @property
    def failed_connections(self) -> np.ndarray:
        """Failed connections with excluded pairs zeroed."""
        return self._masked(self.dataset.failed_connections)


def _safe_rate(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Element-wise rate with 0/0 -> NaN."""
    out = np.full(numerator.shape, np.nan, dtype=float)
    nonzero = denominator > 0
    out[nonzero] = numerator[nonzero] / denominator[nonzero]
    return out
