"""The measurement dataset: month-long counts in array form.

The paper's analyses all operate on aggregates -- per client-hour,
server-hour, and pair-month failure rates.  The dataset therefore stores
counts as dense ``(clients, sites, hours)`` arrays, which both engines
(vectorised and detailed) can fill: the detailed engine folds individual
:class:`~repro.core.records.PerformanceRecord` objects in, the fast engine
writes counts directly.

Replica-level counts (needed by Section 4.5 and the BGP analysis) are kept
as ``(sites, max_replicas, hours)`` arrays aggregated across clients.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core.records import (
    DNSFailureKind,
    FailureType,
    PerformanceRecord,
    TCPFailureKind,
)
from repro.world.entities import ClientCategory, World

#: Minimum samples for a rate to be considered meaningful in an hour bin.
MIN_SAMPLES_PER_HOUR = 10

#: Promotion ladder for count arrays: when a count no longer fits its
#: dtype the array is widened to the next step instead of wrapping.
_DTYPE_LADDER = (np.uint16, np.uint32, np.int64)

#: Archive format version for :meth:`MeasurementDataset.save`.
_ARCHIVE_FORMAT = 1


def _widened_dtype(needed: int, current: np.dtype) -> np.dtype:
    """The narrowest ladder dtype holding both ``needed`` and ``current``."""
    for candidate in _DTYPE_LADDER:
        info = np.iinfo(candidate)
        if needed <= info.max and np.iinfo(current).max <= info.max:
            return np.dtype(candidate)
    raise OverflowError(
        f"count {needed} exceeds the widest supported count dtype "
        f"({_DTYPE_LADDER[-1].__name__})"
    )


class MeasurementDataset:
    """Dense count arrays for one simulated (or replayed) experiment."""

    _DNS_FIELDS = {
        DNSFailureKind.LDNS_TIMEOUT: "dns_ldns",
        DNSFailureKind.NON_LDNS_TIMEOUT: "dns_nonldns",
        DNSFailureKind.ERROR_RESPONSE: "dns_error",
    }
    _TCP_FIELDS = {
        TCPFailureKind.NO_CONNECTION: "tcp_noconn",
        TCPFailureKind.NO_RESPONSE: "tcp_noresp",
        TCPFailureKind.PARTIAL_RESPONSE: "tcp_partial",
        TCPFailureKind.NO_OR_PARTIAL: "tcp_ambiguous",
    }

    def __init__(self, world: World) -> None:
        self.world = world
        c, s, h = len(world.clients), len(world.websites), world.hours
        self.shape = (c, s, h)
        count = lambda dtype=np.uint16: np.zeros(self.shape, dtype=dtype)
        # Transaction-level counts.
        self.transactions = count()
        self.dns_ldns = count()
        self.dns_nonldns = count()
        self.dns_error = count()
        self.tcp_noconn = count()
        self.tcp_noresp = count()
        self.tcp_partial = count()
        self.tcp_ambiguous = count()
        self.http_errors = count()
        self.masked_failures = count()  # proxied (CN) failures, nature hidden
        # Connection-level counts (unavailable for proxied clients).
        self.connections = count(np.uint32)
        self.failed_connections = count(np.uint32)
        # Replica-level counts, aggregated over clients.
        r = max(1, world.max_replicas())
        self.max_replicas = r
        self.replica_connections = np.zeros((s, r, h), dtype=np.uint32)
        self.replica_failed_connections = np.zeros((s, r, h), dtype=np.uint32)
        # Optional packet-loss estimate (retransmission-inferred).
        self.packet_losses = count(np.uint32)
        #: Free-form provenance (master seed, engine, worker count ...):
        #: embedded in saved archives and restored on load.
        self.provenance: Dict[str, Any] = {}

    # -- ingestion ----------------------------------------------------------

    def add_record(self, record: PerformanceRecord) -> None:
        """Fold one performance record into the count arrays."""
        ci = self.world.client_idx(record.client_name)
        si = self.world.site_idx(record.site_name)
        h = record.hour
        if not 0 <= h < self.world.hours:
            raise ValueError(f"hour {h} outside experiment")
        self.transactions[ci, si, h] += 1
        self.packet_losses[ci, si, h] += record.packet_losses
        client = self.world.clients[ci]
        if record.failed and client.proxied:
            self.masked_failures[ci, si, h] += 1
        elif record.failure_type is FailureType.DNS:
            getattr(self, self._DNS_FIELDS[record.dns_kind])[ci, si, h] += 1
        elif record.failure_type is FailureType.TCP:
            getattr(self, self._TCP_FIELDS[record.tcp_kind])[ci, si, h] += 1
        elif record.failure_type is FailureType.HTTP:
            self.http_errors[ci, si, h] += 1
        if not client.proxied:
            self.connections[ci, si, h] += record.num_connections
            self.failed_connections[ci, si, h] += record.num_failed_connections

    def add_records(self, records: Iterable[PerformanceRecord]) -> None:
        """Fold many records in."""
        for record in records:
            self.add_record(record)

    # -- derived aggregates ---------------------------------------------------

    @property
    def dns_failures(self) -> np.ndarray:
        """All DNS failures per cell."""
        return (
            # repro: lint-ok[DTY002] widening cast: three uint16 terms cannot overflow uint32
            self.dns_ldns.astype(np.uint32)
            + self.dns_nonldns
            + self.dns_error
        )

    @property
    def tcp_failures(self) -> np.ndarray:
        """All TCP connection-level transaction failures per cell."""
        return (
            # repro: lint-ok[DTY002] widening cast: four uint16 terms cannot overflow uint32
            self.tcp_noconn.astype(np.uint32)
            + self.tcp_noresp
            + self.tcp_partial
            + self.tcp_ambiguous
        )

    @property
    def failures(self) -> np.ndarray:
        """All failed transactions per cell."""
        return (
            self.dns_failures
            + self.tcp_failures
            + self.http_errors
            + self.masked_failures
        )

    def client_hour_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(transactions, failures) per client-hour, shape (C, H)."""
        return (
            self.transactions.sum(axis=1, dtype=np.int64),
            self.failures.sum(axis=1, dtype=np.int64),
        )

    def server_hour_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(transactions, failures) per server-hour, shape (S, H)."""
        return (
            self.transactions.sum(axis=0, dtype=np.int64),
            self.failures.sum(axis=0, dtype=np.int64),
        )

    def pair_month_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(transactions, failures) per client-server pair, shape (C, S)."""
        return (
            self.transactions.sum(axis=2, dtype=np.int64),
            self.failures.sum(axis=2, dtype=np.int64),
        )

    def client_failure_rates(self) -> np.ndarray:
        """Month-long transaction failure rate per client, shape (C,)."""
        trans = self.transactions.sum(axis=(1, 2), dtype=np.int64)
        fails = self.failures.sum(axis=(1, 2), dtype=np.int64)
        return _safe_rate(fails, trans)

    def server_failure_rates(self) -> np.ndarray:
        """Month-long transaction failure rate per server, shape (S,)."""
        trans = self.transactions.sum(axis=(0, 2), dtype=np.int64)
        fails = self.failures.sum(axis=(0, 2), dtype=np.int64)
        return _safe_rate(fails, trans)

    def category_mask(self, category: ClientCategory) -> np.ndarray:
        """Boolean client mask for one category, shape (C,)."""
        return np.array(
            [c.category is category for c in self.world.clients], dtype=bool
        )

    def proxied_mask(self) -> np.ndarray:
        """Boolean mask for proxied (CN) clients, shape (C,)."""
        return np.array([c.proxied for c in self.world.clients], dtype=bool)

    def pair_exclusion_view(self, excluded: np.ndarray) -> "MaskedCounts":
        """Counts with the given (C, S) boolean pair mask zeroed out --
        used to exclude permanent-failure pairs (Section 4.4.2)."""
        return MaskedCounts(self, excluded)

    # -- capacity and merging ---------------------------------------------------

    #: The transaction-level count arrays (initially ``uint16``): every
    #: per-cell count in this group is bounded by ``transactions``, so one
    #: capacity check on the transaction draw covers them all.
    _TRANSACTION_FIELDS = (
        "transactions", "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures",
    )

    def ensure_count_capacity(
        self, max_count: int, fields: Optional[Iterable[str]] = None
    ) -> None:
        """Widen count arrays so ``max_count`` fits without wrapping.

        Counts used to be committed into ``uint16`` arrays unchecked: a
        scaled run (large ``per_hour``) or a merge of shards silently
        wrapped mod 65536.  Callers about to commit counts up to
        ``max_count`` call this first; affected arrays are promoted up the
        ``uint16 -> uint32 -> int64`` ladder in place.
        """
        for name in fields if fields is not None else self._TRANSACTION_FIELDS:
            arr = getattr(self, name)
            if max_count > np.iinfo(arr.dtype).max:
                setattr(self, name, arr.astype(_widened_dtype(max_count, arr.dtype)))

    @classmethod
    def block_template(cls, world: World, n_hours: int) -> Dict[str, np.ndarray]:
        """Fresh zeroed arrays for an ``n_hours``-wide block of this world.

        The per-field shapes and starting dtypes mirror ``__init__``;
        shard workers fill a template and ship (or share) it back.
        """
        c, s = len(world.clients), len(world.websites)
        r = max(1, world.max_replicas())
        out: Dict[str, np.ndarray] = {}
        for name in cls._ARRAY_FIELDS:
            if name in ("replica_connections", "replica_failed_connections"):
                out[name] = np.zeros((s, r, n_hours), dtype=np.uint32)
            elif name in ("connections", "failed_connections", "packet_losses"):
                out[name] = np.zeros((c, s, n_hours), dtype=np.uint32)
            else:
                out[name] = np.zeros((c, s, n_hours), dtype=np.uint16)
        return out

    @classmethod
    def planned_dtypes(cls, world: World, per_hour: int) -> Dict[str, np.dtype]:
        """Per-field dtypes sized for this world's worst-case hourly counts.

        Used to size fixed-dtype (shared-memory) shard buffers up front,
        where mid-run promotion is impossible: the bound per cell is the
        Poisson transaction tail times each field's worst-case
        connections-per-transaction multiplier, with generous slack --
        a planned dtype that is one rung too wide costs bytes, one rung
        too narrow aborts the shard.
        """
        lam = float(max(1, per_hour))
        # P(Poisson(lam) > lam + 12*sqrt(lam) + 32) is negligible at any
        # scale; the +32 keeps small lam safe where sqrt slack is tiny.
        n_bound = lam + 12.0 * lam ** 0.5 + 32.0
        c = len(world.clients)
        r = max(1, world.max_replicas())
        # Connections per transaction: delivered + redirect + retries over
        # the address list (permanent pairs: 3 tries x 3 addresses) plus
        # dead-replica walk-downs bounded by the replica count.
        conns_factor = 2.0 + 9.0 + r
        # Packet losses per transaction: 16 segments at ambient loss
        # (x1.4) plus 6 per partial failure, rounded up hard.
        loss_factor = 48.0
        bounds: Dict[str, float] = {}
        for name in cls._ARRAY_FIELDS:
            if name in ("replica_connections", "replica_failed_connections"):
                bounds[name] = n_bound * conns_factor * c
            elif name in ("connections", "failed_connections"):
                bounds[name] = n_bound * conns_factor
            elif name == "packet_losses":
                bounds[name] = n_bound * loss_factor
            else:
                bounds[name] = n_bound
        return {
            name: _widened_dtype(int(bound), np.dtype(np.uint16))
            for name, bound in bounds.items()
        }

    def merge_shards(
        self,
        shards: Iterable[
            Tuple[Mapping[str, np.ndarray], Tuple[int, int]]
        ],
    ) -> None:
        """Merge many hour-block shards, pre-sizing dtypes exactly once.

        One pass over all shards finds each field's final peak count, the
        arrays are promoted to their final dtype up front, and only then
        are the shards accumulated -- a month merged from N shards used
        to re-walk the uint16 -> uint32 -> int64 ladder (with a full
        array copy per rung) once per shard; now it promotes at most once
        per field for the whole merge.
        """
        shard_list = list(shards)
        peaks: Dict[str, int] = {}
        for arrays, _ in shard_list:
            for name in self._ARRAY_FIELDS:
                src = arrays.get(name)
                if src is not None and src.size:
                    peaks[name] = max(peaks.get(name, 0), int(src.max()))
        for name, peak in peaks.items():
            dst = getattr(self, name)
            # Shards cover disjoint hour blocks, so the merged peak is
            # bounded by existing peak + shard peak (equal when merging
            # into a fresh dataset).
            base = int(dst.max()) if dst.size else 0
            self.ensure_count_capacity(base + peak, fields=(name,))
        for arrays, (h0, h1) in shard_list:
            self.merge(arrays, (h0, h1))

    def extract_block(self, hour_start: int, hour_stop: int) -> Dict[str, np.ndarray]:
        """Copies of every count array restricted to ``[hour_start, hour_stop)``.

        The inverse of :meth:`merge` with an hour block: the returned
        mapping can be persisted as a chunk checkpoint and later merged
        back into a fresh dataset to reproduce this one hour-slice for
        hour-slice (the service daemon's incremental-commit unit, see
        :mod:`repro.obs.runstore.chunks`).
        """
        if not 0 <= hour_start <= hour_stop <= self.world.hours:
            raise ValueError(
                f"hour block [{hour_start}, {hour_stop}) outside experiment "
                f"(0..{self.world.hours})"
            )
        return {
            name: np.ascontiguousarray(
                getattr(self, name)[..., hour_start:hour_stop]
            )
            for name in self._ARRAY_FIELDS
        }

    @classmethod
    def block_digest(cls, arrays: Mapping[str, np.ndarray]) -> str:
        """SHA-256 over one hour-block's arrays, dtype-normalised.

        The same normalisation as :meth:`digest` (field name, shape,
        ``int64`` bytes) applied to a block mapping, so a chunk's digest
        is invariant under capacity promotion and array dtype -- the
        quantity the chunk store chains across commits.  Missing fields
        are an error: a chunk that silently dropped an array would chain
        clean and corrupt the resumed dataset.
        """
        h = hashlib.sha256()
        for name in cls._ARRAY_FIELDS:
            arr = arrays.get(name)
            if arr is None:
                raise ValueError(f"block is missing array {name!r}")
            h.update(name.encode("utf-8"))
            h.update(str(arr.shape).encode("utf-8"))
            h.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
        return h.hexdigest()

    def merge(
        self,
        shard: Union["MeasurementDataset", Mapping[str, np.ndarray]],
        hours: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Accumulate another dataset's (or shard's) counts into this one.

        ``shard`` is either a whole :class:`MeasurementDataset` or a
        mapping of array-field name to counts.  With ``hours=(h0, h1)``
        the shard arrays cover only that contiguous hour block (the
        parallel engine's unit) and are added into the matching slice;
        otherwise they must be full-width.  Accumulation is
        overflow-checked: sums are formed in ``int64`` and the target
        array is promoted to a wider dtype whenever the result would no
        longer fit, so counts can never silently wrap.
        """
        if isinstance(shard, MeasurementDataset):
            arrays: Mapping[str, np.ndarray] = {
                name: getattr(shard, name) for name in self._ARRAY_FIELDS
            }
        else:
            arrays = shard
        h0, h1 = (0, self.world.hours) if hours is None else hours
        if not 0 <= h0 <= h1 <= self.world.hours:
            raise ValueError(
                f"hour block [{h0}, {h1}) outside experiment "
                f"(0..{self.world.hours})"
            )
        for name in self._ARRAY_FIELDS:
            src = arrays.get(name)
            if src is None:
                raise ValueError(f"shard is missing array {name!r}")
            dst = getattr(self, name)
            view = dst[..., h0:h1]
            if src.shape != view.shape:
                raise ValueError(
                    f"array {name}: shard shape {src.shape} does not match "
                    f"hour block shape {view.shape}"
                )
            if src.size == 0:
                continue
            total = view.astype(np.int64) + src.astype(np.int64)
            if total.size and int(total.min()) < 0:
                raise ValueError(f"array {name}: negative counts in shard")
            needed = int(total.max()) if total.size else 0
            if needed > np.iinfo(dst.dtype).max:
                self.ensure_count_capacity(needed, fields=(name,))
                dst = getattr(self, name)
                view = dst[..., h0:h1]
            view[...] = total.astype(dst.dtype)

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> Dict[str, Any]:
        """The world identity this dataset's axes are bound to.

        Client/site *names and order* matter: two worlds with identically
        shaped arrays but different rosters (or orderings) would misattribute
        every per-client analysis if confused for each other.
        """
        return self.world_fingerprint(self.world)

    @classmethod
    def world_fingerprint(cls, world: World) -> Dict[str, Any]:
        """:meth:`fingerprint` computed from the world alone.

        The serve daemon's retention mode never materializes a dataset
        (memory must stay bounded over an indefinite horizon) but still
        needs the identical fingerprint to seed the chunk chain and the
        rolling digest -- this is the single definition both paths use.
        """
        return {
            "clients": [c.name for c in world.clients],
            "sites": [w.name for w in world.websites],
            "hours": world.hours,
            "max_replicas": max(1, world.max_replicas()),
        }

    def digest(self) -> str:
        """SHA-256 over every count array, dtype-normalised.

        Arrays are hashed as ``int64`` so the digest is invariant under
        capacity promotion: two datasets with equal counts digest equal
        even if one was widened.  This is the determinism contract's
        observable -- same seed, any worker count, same digest.
        """
        h = hashlib.sha256()
        for name in self._ARRAY_FIELDS:
            arr = getattr(self, name)
            h.update(name.encode("utf-8"))
            h.update(str(arr.shape).encode("utf-8"))
            h.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
        return h.hexdigest()

    # -- persistence ------------------------------------------------------------

    _ARRAY_FIELDS = (
        "transactions", "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures", "connections", "failed_connections",
        "replica_connections", "replica_failed_connections", "packet_losses",
    )

    def save(self, path: str) -> None:
        """Persist all count arrays plus the world fingerprint to .npz."""
        meta = {
            "format": _ARCHIVE_FORMAT,
            "fingerprint": self.fingerprint(),
            "provenance": self.provenance,
        }
        np.savez_compressed(
            path,
            __meta__=np.array(json.dumps(meta)),
            **{name: getattr(self, name) for name in self._ARRAY_FIELDS},
        )

    @classmethod
    def load(
        cls,
        path: str,
        world: World,
        expected_seed: Optional[int] = None,
    ) -> "MeasurementDataset":
        """Load arrays saved by :meth:`save` against a matching world.

        The archive's embedded fingerprint (client/site names and order,
        hours, replica width) must match ``world`` exactly -- a same-shaped
        archive from a different world loads into the wrong axes and
        silently misattributes every per-client analysis, so it is
        rejected with a description of what differs.  Pass
        ``expected_seed`` to additionally pin the archive to one master
        seed.  Archives written before the fingerprint existed fall back
        to the shape check with a warning.
        """
        dataset = cls(world)
        with np.load(path) as data:
            if "__meta__" in data.files:
                meta = json.loads(str(data["__meta__"][()]))
                _verify_fingerprint(meta.get("fingerprint", {}), dataset, path)
                dataset.provenance = dict(meta.get("provenance", {}))
                if expected_seed is not None:
                    stored = dataset.provenance.get("master_seed")
                    if stored is not None and stored != expected_seed:
                        raise ValueError(
                            f"{path}: archive was generated with master seed "
                            f"{stored}, expected {expected_seed}"
                        )
            else:
                obs.logger.warning(
                    "%s: no embedded world fingerprint (legacy archive); "
                    "falling back to shape checks only", path,
                )
            for name in cls._ARRAY_FIELDS:
                stored = data[name]
                current = getattr(dataset, name)
                if stored.shape != current.shape:
                    raise ValueError(
                        f"array {name}: shape {stored.shape} does not match "
                        f"world shape {current.shape}"
                    )
                setattr(dataset, name, stored)
        return dataset


class MaskedCounts:
    """A view of a dataset with certain client-server pairs excluded."""

    def __init__(self, dataset: MeasurementDataset, excluded_pairs: np.ndarray) -> None:
        c, s, _ = dataset.shape
        if excluded_pairs.shape != (c, s):
            raise ValueError("pair mask must have shape (clients, sites)")
        self.dataset = dataset
        self.keep = ~excluded_pairs[:, :, None]  # broadcast over hours

    def _masked(self, array: np.ndarray) -> np.ndarray:
        return array * self.keep

    @property
    def transactions(self) -> np.ndarray:
        """Transactions with excluded pairs zeroed."""
        return self._masked(self.dataset.transactions)

    @property
    def failures(self) -> np.ndarray:
        """Failures with excluded pairs zeroed."""
        return self._masked(self.dataset.failures)

    @property
    def tcp_failures(self) -> np.ndarray:
        """TCP failures with excluded pairs zeroed."""
        return self._masked(self.dataset.tcp_failures)

    @property
    def connections(self) -> np.ndarray:
        """Connections with excluded pairs zeroed."""
        return self._masked(self.dataset.connections)

    @property
    def failed_connections(self) -> np.ndarray:
        """Failed connections with excluded pairs zeroed."""
        return self._masked(self.dataset.failed_connections)


def _verify_fingerprint(
    stored: Dict[str, Any], dataset: MeasurementDataset, path: str
) -> None:
    """Raise with a precise mismatch description when an archive's world
    fingerprint does not match the world it is being loaded against."""
    current = dataset.fingerprint()
    problems: List[str] = []
    for key in ("hours", "max_replicas"):
        if stored.get(key) != current[key]:
            problems.append(
                f"{key}: archive has {stored.get(key)}, world has {current[key]}"
            )
    for key in ("clients", "sites"):
        theirs, ours = stored.get(key), current[key]
        if theirs != ours:
            if theirs is None:
                problems.append(f"{key}: archive carries no {key} roster")
            elif len(theirs) != len(ours):
                problems.append(
                    f"{key}: archive has {len(theirs)}, world has {len(ours)}"
                )
            else:
                first = next(
                    i for i, (a, b) in enumerate(zip(theirs, ours)) if a != b
                )
                problems.append(
                    f"{key}: first mismatch at index {first} "
                    f"(archive {theirs[first]!r}, world {ours[first]!r})"
                )
    if problems:
        raise ValueError(
            f"{path}: archive does not belong to this world -- "
            + "; ".join(problems)
        )


def _safe_rate(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Element-wise rate with 0/0 -> NaN."""
    out = np.full(numerator.shape, np.nan, dtype=float)
    nonzero = denominator > 0
    out[nonzero] = numerator[nonzero] / denominator[nonzero]
    return out
