"""Shared proxy-related failures (Section 4.7).

With one CN client per proxy, proxy-specific problems cannot be separated
from client-side ones per proxy -- but problems *shared across all five
proxies* can be surfaced: filter out failures attributable to server-side
episodes (for the site) and client-side episodes (for each client), then
compare the residual per-site failure rate of proxied clients against
direct clients.  A residual rate that is high for every proxied client but
low for SEAEXT (same WAN, no proxy) and for non-CN clients indicts the
proxies' shared behaviour -- in the paper, the lack of A-record failover
(www.iitb.ac.in) and an unexplained case (www.royal.gov.uk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.blame import BlameAnalysis
from repro.core.dataset import MeasurementDataset
from repro.world.entities import ClientCategory


@dataclass(frozen=True)
class ResidualRate:
    """Residual failure rate of one client group for one site."""

    label: str
    transactions: int
    failures: int

    @property
    def rate(self) -> float:
        """Residual failure rate."""
        return self.failures / self.transactions if self.transactions else 0.0


@dataclass
class ProxyFailureRow:
    """One Table 9 row: residual rates per CN client plus controls."""

    site_name: str
    per_client: Dict[str, ResidualRate]
    external: ResidualRate
    non_cn: ResidualRate

    def proxied_rates(self) -> List[float]:
        """Residual rates of the proxied clients."""
        return [r.rate for r in self.per_client.values()]

    @property
    def is_shared_proxy_problem(self) -> bool:
        """Heuristic: every proxied client's residual rate is well above
        both the external client's and the non-CN control's."""
        rates = self.proxied_rates()
        if not rates:
            return False
        floor = max(self.external.rate, self.non_cn.rate)
        return min(rates) > max(0.02, 2.0 * floor)


def residual_failure_table(
    dataset: MeasurementDataset,
    analysis: BlameAnalysis,
    site_names: List[str],
) -> List[ProxyFailureRow]:
    """Build Table 9 for the given sites.

    For each site: drop the hours flagged as server-side episodes for it;
    for each client additionally drop that client's client-side episode
    hours; report the residual failure rate.
    """
    world = dataset.world
    rows = []
    cn_clients = [
        c for c in world.clients if c.category is ClientCategory.CORPNET and c.proxied
    ]
    external = [
        c for c in world.clients
        if c.category is ClientCategory.CORPNET and not c.proxied
    ]
    non_cn = [
        c for c in world.clients if c.category is not ClientCategory.CORPNET
    ]
    # Materialize the failure counts once: dataset.failures is a derived
    # array and must not be recomputed per client inside the loops.
    all_failures = dataset.failures
    all_transactions = dataset.transactions

    for site_name in site_names:
        si = world.site_idx(site_name)
        server_ok = ~analysis.server_episodes[si]  # (H,)

        def residual(clients, label) -> ResidualRate:
            trans = 0
            fails = 0
            for client in clients:
                ci = world.client_idx(client.name)
                client_ok = ~analysis.client_episodes[ci]
                keep = server_ok & client_ok
                trans += int(all_transactions[ci, si, keep].sum())
                fails += int(all_failures[ci, si, keep].sum())
            return ResidualRate(label=label, transactions=trans, failures=fails)

        rows.append(
            ProxyFailureRow(
                site_name=site_name,
                per_client={
                    c.name: residual([c], c.name) for c in cn_clients
                },
                external=residual(external, "SEAEXT"),
                non_cn=residual(non_cn, "non-CN"),
            )
        )
    return rows


def find_shared_proxy_problems(
    dataset: MeasurementDataset,
    analysis: BlameAnalysis,
    min_transactions: int = 100,
) -> List[ProxyFailureRow]:
    """Scan every site for the shared-proxy-failure signature.

    This is the discovery step the paper performs before zooming in on
    iitb and royal; returns the flagged rows sorted by the minimum proxied
    residual rate.
    """
    candidates = residual_failure_table(
        dataset, analysis, [w.name for w in dataset.world.websites]
    )
    flagged = [
        row
        for row in candidates
        if row.is_shared_proxy_problem
        and all(r.transactions >= min_transactions for r in row.per_client.values())
    ]
    flagged.sort(key=lambda row: min(row.proxied_rates()), reverse=True)
    return flagged
