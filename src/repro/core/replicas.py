"""Replica-level analysis (Section 4.5).

Replica identification: for a website S, every distinct server IP observed
in connections to S is a candidate; only addresses carrying at least 10% of
S's connections qualify as replicas.  CDN-served sites spread connections
over hundreds of addresses, so none qualify (6 sites in the paper); the
rest have one (42) or several (32) replicas.

Server-side failure episodes are then re-derived at replica granularity
and sub-classified as **total** (all replicas above the failure threshold
in that hour) or **partial** (only a subset).  The paper finds 85% of
multi-replica episodes are total, almost all on sites whose replicas share
a /24.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dataset import MIN_SAMPLES_PER_HOUR, MeasurementDataset

#: The paper's replica qualification rule.
REPLICA_QUALIFICATION_SHARE = 0.10


@dataclass(frozen=True)
class ReplicaCensus:
    """Replica counts per site after qualification."""

    zero_replica_sites: List[str]
    single_replica_sites: List[str]
    multi_replica_sites: List[str]

    def counts(self) -> Tuple[int, int, int]:
        """(zero, single, multi) site counts -- the paper's 6/42/32."""
        return (
            len(self.zero_replica_sites),
            len(self.single_replica_sites),
            len(self.multi_replica_sites),
        )


def qualify_replicas(dataset: MeasurementDataset) -> Dict[str, List[int]]:
    """Replica indices carrying >= 10% of each site's connections.

    For CDN sites the observed address pool is large (the dataset's world
    records the pool size), so per-address shares fall below the cut and
    the qualifying set is empty -- matching how the rule plays out on raw
    observations.
    """
    result: Dict[str, List[int]] = {}
    totals = dataset.replica_connections.sum(axis=(1, 2), dtype=np.int64)
    for si, site in enumerate(dataset.world.websites):
        if site.cdn:
            # Connections spread over the CDN pool: max share = a few
            # percent, below the threshold.
            result[site.name] = []
            continue
        site_total = int(totals[si])
        if site_total == 0:
            result[site.name] = []
            continue
        per_replica = dataset.replica_connections[si].sum(axis=1, dtype=np.int64)
        qualifying = [
            ri
            for ri in range(site.num_replicas)
            if per_replica[ri] / site_total >= REPLICA_QUALIFICATION_SHARE
        ]
        result[site.name] = qualifying
    return result


def replica_census(dataset: MeasurementDataset) -> ReplicaCensus:
    """The Section 4.5 census: how many sites have 0 / 1 / 2+ replicas."""
    qualified = qualify_replicas(dataset)
    zero, single, multi = [], [], []
    for name, replicas in qualified.items():
        if len(replicas) == 0:
            zero.append(name)
        elif len(replicas) == 1:
            single.append(name)
        else:
            multi.append(name)
    return ReplicaCensus(
        zero_replica_sites=sorted(zero),
        single_replica_sites=sorted(single),
        multi_replica_sites=sorted(multi),
    )


def replica_rate_matrix(
    dataset: MeasurementDataset,
    min_samples: int = MIN_SAMPLES_PER_HOUR,
    excluded_pairs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-(site, replica, hour) connection failure rates (NaN = too few).

    ``excluded_pairs`` is the (C, S) permanent-pair mask.  Replica counts
    are aggregated over clients, so per-pair exclusion is applied by
    rescaling each site-hour's replica counts by the share of connections
    and failures that the excluded pairs contributed (connections are
    spread uniformly across a site's replicas, so proportional rescaling
    is exact in expectation).  Without this, a site with a few permanently
    broken pairs (sina.com.cn) registers as failing every hour.
    """
    conns = dataset.replica_connections.astype(np.float64)
    fails = dataset.replica_failed_connections.astype(np.float64)
    if excluded_pairs is not None:
        keep = ~excluded_pairs[:, :, None]
        site_conns = dataset.connections.sum(axis=0, dtype=np.int64)
        site_fails = dataset.failed_connections.sum(axis=0, dtype=np.int64)
        kept_conns = (dataset.connections * keep).sum(axis=0, dtype=np.int64)
        kept_fails = (dataset.failed_connections * keep).sum(axis=0, dtype=np.int64)
        with np.errstate(invalid="ignore", divide="ignore"):
            conn_scale = np.where(site_conns > 0, kept_conns / np.maximum(1, site_conns), 1.0)
            fail_scale = np.where(site_fails > 0, kept_fails / np.maximum(1, site_fails), 1.0)
        conns = conns * conn_scale[:, None, :]
        fails = fails * fail_scale[:, None, :]
    rates = np.full(conns.shape, np.nan, dtype=float)
    enough = conns >= min_samples
    rates[enough] = fails[enough] / conns[enough]
    return rates


@dataclass(frozen=True)
class ReplicaEpisodeStats:
    """Total vs partial replica failure episodes (Section 4.5)."""

    multi_replica_episode_hours: int
    total_replica_hours: int
    partial_replica_hours: int
    single_replica_episode_hours: int
    same_subnet_total_hours: int

    @property
    def total_fraction(self) -> float:
        """Fraction of multi-replica episodes that are total (paper: 85%)."""
        if self.multi_replica_episode_hours == 0:
            return 0.0
        return self.total_replica_hours / self.multi_replica_episode_hours

    @property
    def multi_replica_share(self) -> float:
        """Share of all server-side episode-hours on multi-replica sites
        (paper: 62%)."""
        all_hours = self.multi_replica_episode_hours + self.single_replica_episode_hours
        if all_hours == 0:
            return 0.0
        return self.multi_replica_episode_hours / all_hours


def classify_replica_episodes(
    dataset: MeasurementDataset,
    server_episodes: np.ndarray,
    threshold: float = 0.05,
    excluded_pairs: Optional[np.ndarray] = None,
) -> ReplicaEpisodeStats:
    """Sub-classify server-side episode hours as total / partial.

    ``server_episodes`` is the (S, H) boolean matrix from the blame
    analysis.  For each flagged hour of a multi-replica site, the hour is
    *total* if every qualifying replica's connection failure rate meets the
    threshold, *partial* otherwise.
    """
    qualified = qualify_replicas(dataset)
    rates = replica_rate_matrix(dataset, excluded_pairs=excluded_pairs)
    multi_hours = 0
    total_hours = 0
    partial_hours = 0
    single_hours = 0
    same_subnet_total = 0
    for si, site in enumerate(dataset.world.websites):
        replicas = qualified[site.name]
        flagged = np.nonzero(server_episodes[si])[0]
        if len(replicas) <= 1:
            single_hours += len(flagged)
            continue
        for h in flagged:
            multi_hours += 1
            replica_rates = rates[si, replicas, h]
            # Unmeasured replicas (too few samples) count as affected: a
            # dead replica attracts no successful connections.
            above = np.isnan(replica_rates) | (replica_rates >= threshold)
            if above.all():
                total_hours += 1
                if site.replicas_same_subnet:
                    same_subnet_total += 1
            else:
                partial_hours += 1
    return ReplicaEpisodeStats(
        multi_replica_episode_hours=multi_hours,
        total_replica_hours=total_hours,
        partial_replica_hours=partial_hours,
        single_replica_episode_hours=single_hours,
        same_subnet_total_hours=same_subnet_total,
    )


def replica_episode_hours_by_site(
    dataset: MeasurementDataset,
    threshold: float = 0.05,
    min_samples: int = MIN_SAMPLES_PER_HOUR,
    excluded_pairs: Optional[np.ndarray] = None,
) -> Dict[str, int]:
    """Episode-hour counts at replica granularity per site.

    This is the Table 6 counting unit: an hour in which a qualifying
    replica's aggregate connection failure rate is >= f counts once per
    replica (sina.com.cn's 764 > 744 is only possible this way).
    Permanent pairs should be excluded (pass the Section 4.4.2 mask), as
    the paper does for all of Section 4.4+.
    """
    qualified = qualify_replicas(dataset)
    rates = replica_rate_matrix(dataset, min_samples, excluded_pairs)
    result: Dict[str, int] = {}
    for si, site in enumerate(dataset.world.websites):
        replicas = qualified[site.name]
        if not replicas:
            result[site.name] = 0
            continue
        site_rates = rates[si, replicas, :]
        with np.errstate(invalid="ignore"):
            flagged = np.nan_to_num(site_rates, nan=-1.0) >= threshold
        result[site.name] = int(flagged.sum())
    return result
