"""Spread of server-side failures (Section 4.4.6, validation #1).

For each server S, consider all failures ascribed to server-side episodes
at S over the month; the *spread* is the fraction of all clients needed to
account for those failures.  A genuine server-side problem should affect
most clients (the paper finds spreads of 70-95% for the failure-prone
servers), which indirectly validates the blame attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.blame import BlameAnalysis
from repro.core.dataset import MeasurementDataset


@dataclass(frozen=True)
class ServerSpread:
    """Spread and episode volume for one server."""

    site_name: str
    episode_hours: int
    attributed_failures: int
    affected_clients: int
    total_clients: int

    @property
    def spread(self) -> float:
        """Fraction of clients affected by the server's episodes."""
        return (
            self.affected_clients / self.total_clients if self.total_clients else 0.0
        )


def server_spreads(
    dataset: MeasurementDataset, analysis: BlameAnalysis
) -> List[ServerSpread]:
    """Compute the spread for every server with at least one episode.

    The affected-client set is taken over the whole month, as in the paper
    (footnote 3 documents the sampling limitation of per-episode spreads).
    Clients are counted against the set that was actually active (made any
    accesses) during the experiment.
    """
    # Failures attributed to server-side episodes, per (C, S).
    attributed = analysis.server_attributed.sum(axis=2)
    active_clients = (dataset.transactions.sum(axis=(1, 2), dtype=np.int64) > 0)
    total_active = int(active_clients.sum())

    spreads = []
    for si, site in enumerate(dataset.world.websites):
        episode_hours = int(analysis.server_episodes[si].sum())
        if episode_hours == 0:
            continue
        per_client = attributed[:, si]
        affected = int(((per_client > 0) & active_clients).sum())
        spreads.append(
            ServerSpread(
                site_name=site.name,
                episode_hours=episode_hours,
                attributed_failures=int(per_client.sum()),
                affected_clients=affected,
                total_clients=total_active,
            )
        )
    spreads.sort(key=lambda s: s.episode_hours, reverse=True)
    return spreads


def most_failure_prone(
    spreads: List[ServerSpread], top: int = 11
) -> List[ServerSpread]:
    """The Table 6 rows: servers with the most episode hours."""
    return spreads[:top]


def split_us_non_us(
    dataset: MeasurementDataset, spreads: List[ServerSpread]
) -> Tuple[List[ServerSpread], List[ServerSpread]]:
    """Partition spread rows into US-based and non-US-based servers,
    mirroring Table 6's two halves."""
    from repro.world.entities import SiteRegion

    us, non_us = [], []
    for row in spreads:
        site = dataset.world.website_named(row.site_name)
        (us if site.region is SiteRegion.US else non_us).append(row)
    return us, non_us
