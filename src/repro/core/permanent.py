"""Permanent-failure client-server pairs (Section 4.4.2).

Certain pairs fail (nearly) all month -- blocked sites, broken middleboxes,
checksum corruption.  They are identified by their month-long pair failure
rate and *excluded* from the client/server blame analysis, because a pair
that can never communicate says nothing about transient client- or
server-side problems; they would otherwise dominate the connection failure
counts (50.7% of all TCP connection failures in the paper) via wget
retries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.dataset import MeasurementDataset

#: The paper's cut: pairs failing >90% of the month.
PERMANENT_THRESHOLD = 0.90
#: Minimum transactions for a pair rate to be trusted.
MIN_PAIR_TRANSACTIONS = 50


@dataclass(frozen=True)
class PermanentPair:
    """One near-permanently-failing pair."""

    client_name: str
    site_name: str
    transactions: int
    failures: int

    @property
    def failure_rate(self) -> float:
        """Month-long pair failure rate."""
        return self.failures / self.transactions if self.transactions else 0.0


@dataclass
class PermanentPairReport:
    """The Section 4.4.2 findings."""

    pairs: List[PermanentPair]
    mask: np.ndarray  # (C, S) boolean, True = excluded
    pair_median_rate: float
    share_of_connection_failures: float
    share_of_transaction_failures: float

    @property
    def count(self) -> int:
        """Number of permanent pairs."""
        return len(self.pairs)

    def over(self, rate: float) -> List[PermanentPair]:
        """Pairs whose failure rate exceeds ``rate``."""
        return [p for p in self.pairs if p.failure_rate > rate]


def find_permanent_pairs(
    dataset: MeasurementDataset,
    threshold: float = PERMANENT_THRESHOLD,
    min_transactions: int = MIN_PAIR_TRANSACTIONS,
) -> PermanentPairReport:
    """Identify permanent pairs and quantify their failure share."""
    transactions, failures = dataset.pair_month_counts()
    with np.errstate(invalid="ignore", divide="ignore"):
        rates = np.where(transactions > 0, failures / np.maximum(1, transactions), np.nan)

    eligible = transactions >= min_transactions
    mask = eligible & (rates > threshold)

    pairs = [
        PermanentPair(
            client_name=dataset.world.clients[ci].name,
            site_name=dataset.world.websites[si].name,
            transactions=int(transactions[ci, si]),
            failures=int(failures[ci, si]),
        )
        for ci, si in zip(*np.nonzero(mask))
    ]
    pairs.sort(key=lambda p: p.failure_rate, reverse=True)

    total_failed_conns = dataset.failed_connections.sum(dtype=np.int64)
    masked_failed_conns = (
        dataset.failed_connections.sum(axis=2, dtype=np.int64)[mask].sum()
    )
    total_failures = dataset.failures.sum(dtype=np.int64)
    masked_failures = dataset.failures.sum(axis=2, dtype=np.int64)[mask].sum()

    valid_rates = rates[eligible]
    return PermanentPairReport(
        pairs=pairs,
        mask=mask,
        pair_median_rate=float(np.nanmedian(valid_rates)) if valid_rates.size else 0.0,
        share_of_connection_failures=(
            float(masked_failed_conns / total_failed_conns)
            if total_failed_conns
            else 0.0
        ),
        share_of_transaction_failures=(
            float(masked_failures / total_failures) if total_failures else 0.0
        ),
    )


def pairs_by_site(report: PermanentPairReport) -> List[Tuple[str, int]]:
    """Permanent-pair counts per website, descending (the paper's
    msn.com.tw: 10, sina.com.cn: 9, sohu.com: 8 pattern)."""
    counts: dict = {}
    for pair in report.pairs:
        counts[pair.site_name] = counts.get(pair.site_name, 0) + 1
    return sorted(counts.items(), key=lambda item: item[1], reverse=True)
