"""Report builders: one function per paper table / figure.

Each builder returns a plain-text table juxtaposing the paper's reported
values with the reproduction's measured values, so the benchmark harness
can print exactly the rows the paper reports (the brief's deliverable (d)).
The paper's numbers are encoded here as the comparison baseline; matching
the *shape* (ordering, dominance, crossovers), not the absolute values, is
the goal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from repro import obs

from repro.core import blame, classify, episodes, permanent, replicas, similarity, spread
from repro.core.dataset import MeasurementDataset
from repro.world.entities import ClientCategory

# --------------------------------------------------------------------------
# Paper reference values
# --------------------------------------------------------------------------

PAPER_TABLE3 = {
    # category: (transactions, failed %, connections, failed conn %)
    "PL": (16_605_281, 2.8, 21_163_180, 2.6),
    "BB": (2_307_855, 1.3, 2_849_889, 0.7),
    "DU": (381_556, 0.7, 471_931, 0.5),
    "CN": (1_236_544, 0.8, None, None),
}

PAPER_FIGURE1 = {
    # category: (overall %, dns share %, tcp share %, http share %)
    "PL": (2.76, 38.0, 60.0, 2.0),
    "DU": (0.69, 34.0, 64.0, 2.0),
    "BB": (1.30, 42.0, 57.0, 1.0),
}

PAPER_TABLE4 = {
    # category: (ldns %, non-ldns %, error %)  (DU/BB lump timeouts)
    "PL": (83.3, 9.7, 7.0),
    "BB": (76.0, None, 24.0),
    "DU": (77.7, None, 22.3),
}

PAPER_FIGURE3 = {
    # category: no-connection share of TCP failures (%)
    "PL": 79.0,
    "DU": 63.0,
    "BB": 41.0,
}

PAPER_TABLE5 = {
    0.05: (48.0, 9.9, 4.4, 37.7),
    0.10: (41.5, 6.7, 0.7, 51.1),
}

PAPER_TABLE6 = [
    ("sina.com.cn", 764, 78.4),
    ("iitb.ac.in", 759, 85.1),
    ("sohu.com", 243, 72.4),
    ("brazzil.com", 97, 85.1),
    ("cs.technion.ac.il", 95, 94.0),
    ("technion.ac.il", 90, 92.5),
    ("chinabroadcast.cn", 89, 73.9),
    ("ucl.ac.uk", 55, 95.5),
    ("craigslist.org", 166, 70.9),
    ("nih.gov", 35, 60.4),
    ("mit.edu", 23, 91.8),
]

PAPER_TABLE7 = {
    # bucket: (co-located count, random count) out of 35 each
    "> 75%": (2, 0),
    "50-75%": (6, 0),
    "25-50%": (10, 1),
    "< 25% & > 0%": (10, 7),
    "= 0%": (7, 27),
}

PAPER_TABLE9 = {
    # site: ({client: %}, ext %, non-CN %)
    "iitb.ac.in": (
        {"SEA1": 5.31, "SEA2": 5.35, "SF": 5.33, "UK": 5.49, "CHN": 5.68},
        0.23, 0.32,
    ),
    "royal.gov.uk": (
        {"SEA1": 6.30, "SEA2": 6.21, "SF": 4.34, "UK": 7.74, "CHN": 6.94},
        0.04, 1.38,
    ),
}

PAPER_HEADLINES = {
    "client_median_rate": 1.47,
    "server_median_rate": 1.63,
    "client_p95_rate": 10.0,
    "permanent_pairs": 38,
    "permanent_conn_failure_share": 50.7,
    "permanent_txn_failure_share": 13.0,
    "server_episode_hours": 2732,
    "coalesced_episodes": 473,
    "mean_coalesced_duration": 5.78,
    "servers_with_episode": 56,
    "servers_with_multiple": 39,
    "replica_census": (6, 42, 32),
    "multi_replica_episode_share": 62.0,
    "total_replica_fraction": 85.0,
    "instability_hours_def1": 111,
    "instability_hours_def2": 32,
    "dig_agreement": 94.0,
    "loss_failure_correlation": 0.19,
}


# --------------------------------------------------------------------------
# Formatting helpers
# --------------------------------------------------------------------------


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100 * value:.2f}%"


# --------------------------------------------------------------------------
# Table / figure builders
# --------------------------------------------------------------------------


@obs.timed("report.table3")
def table3(dataset: MeasurementDataset) -> str:
    """Table 3: overall counts and failure rates per client category."""
    rows = []
    for summary in classify.category_summary(dataset):
        key = summary.category.value
        paper = PAPER_TABLE3.get(key)
        conn_rate = summary.connection_failure_rate
        rows.append(
            [
                key,
                summary.transactions,
                pct(summary.transaction_failure_rate),
                f"{paper[1]}%" if paper else "?",
                summary.connections,
                pct(conn_rate) if conn_rate is not None else None,
                f"{paper[3]}%" if paper and paper[3] is not None else None,
            ]
        )
    return format_table(
        ["cat", "trans", "fail%", "paper fail%", "conn", "connfail%", "paper"],
        rows,
        title="Table 3: transaction/connection counts and failure rates",
    )


@obs.timed("report.figure1")
def figure1(dataset: MeasurementDataset) -> str:
    """Figure 1: failure-type breakdown per category."""
    rows = []
    for row in classify.failure_type_breakdown(dataset):
        key = row.category.value
        paper = PAPER_FIGURE1.get(key)
        rows.append(
            [
                key,
                pct(row.overall_rate),
                f"{paper[0]}%" if paper else "?",
                pct(row.fraction("dns")),
                pct(row.fraction("tcp")),
                pct(row.fraction("http")),
            ]
        )
    return format_table(
        ["cat", "overall", "paper", "dns-share", "tcp-share", "http-share"],
        rows,
        title="Figure 1: transaction failure rate by type "
        "(paper: DNS 34-42%, TCP 57-64%, HTTP <2%)",
    )


@obs.timed("report.table4")
def table4(dataset: MeasurementDataset) -> str:
    """Table 4: DNS failure breakdown."""
    rows = []
    for row in classify.dns_breakdown(dataset):
        ldns, non_ldns, error = row.fractions()
        paper = PAPER_TABLE4.get(row.category.value, (None, None, None))
        if paper[1] is None:
            # The paper cannot split DU/BB timeouts into LDNS vs non-LDNS
            # (data collection limits): its "LDNS timeout" column lumps
            # both; we report the same way for comparability.
            ldns = ldns + non_ldns
            non_ldns = None
        rows.append(
            [
                row.category.value,
                row.failure_count,
                pct(ldns),
                f"{paper[0]}%" if paper[0] is not None else None,
                pct(non_ldns) if non_ldns is not None else None,
                f"{paper[1]}%" if paper[1] is not None else None,
                pct(error),
                f"{paper[2]}%" if paper[2] is not None else None,
            ]
        )
    return format_table(
        ["cat", "count", "ldns", "paper", "non-ldns", "paper", "error", "paper"],
        rows,
        title="Table 4: breakdown of DNS failures "
        "(DU/BB timeouts lumped, as in the paper)",
    )


@obs.timed("report.figure2")
def figure2(dataset: MeasurementDataset, top_k: int = 2) -> str:
    """Figure 2: skew of DNS failures across website domains."""
    contributions = classify.dns_domain_contributions(dataset)
    rows = []
    for name in ("all", "ldns_timeout", "non_ldns_timeout", "error"):
        series = contributions[name]
        rows.append(
            [
                name,
                sum(c for _, c in series),
                pct(classify.skewness_top_k(series, 1)),
                pct(classify.skewness_top_k(series, top_k)),
                series[0][0] if series and series[0][1] else "-",
            ]
        )
    return format_table(
        ["series", "failures", "top-1 share", f"top-{top_k} share", "top domain"],
        rows,
        title="Figure 2: DNS failure contribution skew across domains\n"
        "(paper: LDNS-timeout flat ~1/80 per domain; errors skewed: "
        "brazzil 57%, espn 30%)",
    )


@obs.timed("report.figure3")
def figure3(dataset: MeasurementDataset) -> str:
    """Figure 3: TCP connection failure breakdown."""
    rows = []
    for row in classify.tcp_breakdown(dataset):
        paper = PAPER_FIGURE3.get(row.category.value)
        rows.append(
            [
                row.category.value,
                row.total,
                pct(row.fraction("no_connection")),
                f"{paper}%" if paper else "?",
                pct(row.fraction("no_response")),
                pct(row.fraction("partial_response")),
                pct(row.fraction("no_or_partial")),
            ]
        )
    return format_table(
        ["cat", "tcp-fails", "no-conn", "paper", "no-resp", "partial", "no/partial"],
        rows,
        title="Figure 3: breakdown of TCP connection failures",
    )


@obs.timed("report.figure4")
def figure4(dataset: MeasurementDataset, excluded=None) -> str:
    """Figure 4: CDF of per-episode failure rates + detected knee."""
    view = dataset.pair_exclusion_view(excluded) if excluded is not None else None
    transactions = view.transactions if view else None
    failures = view.failures if view else None
    client_m = episodes.client_rate_matrix(dataset, transactions, failures)
    server_m = episodes.server_rate_matrix(dataset, transactions, failures)
    rows = []
    for label, matrix in (("clients", client_m), ("servers", server_m)):
        rates, _ = episodes.rate_cdf(matrix)
        knee = episodes.detect_knee(matrix)
        rows.append(
            [
                label,
                rates.size,
                pct(float(np.median(rates))) if rates.size else None,
                pct(float(np.percentile(rates, 90))) if rates.size else None,
                pct(float(np.percentile(rates, 99))) if rates.size else None,
                pct(knee),
            ]
        )
    return format_table(
        ["entities", "episode samples", "median", "p90", "p99", "knee"],
        rows,
        title="Figure 4: CDF of 1-hour episode failure rates "
        "(paper picks f=5% at the knee, f=10% conservative)",
    )


@obs.timed("report.table5")
def table5(dataset: MeasurementDataset, excluded) -> str:
    """Table 5: blame classification at f = 5% and 10%."""
    rows = []
    for breakdown in blame.blame_table(dataset, excluded_pairs=excluded):
        s, c, b, o = breakdown.fractions()
        paper = PAPER_TABLE5[breakdown.threshold]
        rows.append(
            [
                f"f={pct(breakdown.threshold)}",
                pct(s), f"{paper[0]}%",
                pct(c), f"{paper[1]}%",
                pct(b), f"{paper[2]}%",
                pct(o), f"{paper[3]}%",
            ]
        )
    return format_table(
        ["setting", "server", "paper", "client", "paper", "both", "paper",
         "other", "paper"],
        rows,
        title="Table 5: classification of TCP failures",
    )


@obs.timed("report.table6")
def table6(dataset: MeasurementDataset, analysis: blame.BlameAnalysis) -> str:
    """Table 6: most failure-prone servers, episode counts, spread."""
    spreads = spread.server_spreads(dataset, analysis)
    replica_hours = replicas.replica_episode_hours_by_site(
        dataset, analysis.threshold, excluded_pairs=analysis.excluded_pairs
    )
    paper_by_site = {name: (count, sp) for name, count, sp in PAPER_TABLE6}
    rows = []
    for row in spread.most_failure_prone(spreads, top=11):
        paper = paper_by_site.get(row.site_name)
        rows.append(
            [
                row.site_name,
                replica_hours.get(row.site_name, row.episode_hours),
                paper[0] if paper else "-",
                pct(row.spread),
                f"{paper[1]}%" if paper else "-",
            ]
        )
    return format_table(
        ["server", "episode-hours", "paper", "spread", "paper"],
        rows,
        title="Table 6: most failure-prone servers (episode hours at "
        "replica granularity) and spread",
    )


@obs.timed("report.table7")
def table7(dataset: MeasurementDataset, analysis: blame.BlameAnalysis) -> str:
    """Table 7: co-located vs random pair similarity buckets."""
    colocated = similarity.colocated_similarities(
        dataset, analysis.client_episodes
    )
    randoms = similarity.random_pair_similarities(
        dataset, analysis.client_episodes, count=len(colocated)
    )
    co_buckets = similarity.bucket_similarities(colocated)
    rnd_buckets = similarity.bucket_similarities(randoms)
    rows = []
    for label in ("> 75%", "50-75%", "25-50%", "< 25% & > 0%", "= 0%"):
        paper = PAPER_TABLE7[label]
        rows.append(
            [label, co_buckets[label], paper[0], rnd_buckets[label], paper[1]]
        )
    return format_table(
        ["similarity", "co-located", "paper", "random", "paper"],
        rows,
        title=f"Table 7: client-side episode similarity "
        f"({len(colocated)} pairs each)",
    )


@obs.timed("report.table8")
def table8(dataset: MeasurementDataset, analysis: blame.BlameAnalysis) -> str:
    """Table 8: the named co-located client pairs."""
    rows = []
    for pair in similarity.showcase_pairs(dataset, analysis.client_episodes):
        rows.append(
            [
                f"{pair.client_a} / {pair.client_b}",
                pair.union,
                pct(pair.similarity),
            ]
        )
    return format_table(
        ["pair", "episodes in union", "similarity"],
        rows,
        title="Table 8: co-located client examples "
        "(paper: Intel 387@98.2%, KAIST 5-7@50-60%, Columbia split)",
    )


@obs.timed("report.table9")
def table9(dataset: MeasurementDataset, analysis: blame.BlameAnalysis) -> str:
    """Table 9: residual (proxy-related) failure rates."""
    from repro.core import proxy_analysis

    rows = []
    table = proxy_analysis.residual_failure_table(
        dataset, analysis, list(PAPER_TABLE9)
    )
    for row in table:
        paper_clients, paper_ext, paper_noncn = PAPER_TABLE9[row.site_name]
        for client_name, residual in sorted(row.per_client.items()):
            rows.append(
                [
                    row.site_name,
                    client_name,
                    pct(residual.rate),
                    f"{paper_clients.get(client_name, 0)}%",
                ]
            )
        rows.append([row.site_name, "SEAEXT", pct(row.external.rate), f"{paper_ext}%"])
        rows.append([row.site_name, "non-CN", pct(row.non_cn.rate), f"{paper_noncn}%"])
    return format_table(
        ["site", "client", "residual rate", "paper"],
        rows,
        title="Table 9: residual failure rates after excluding "
        "client-/server-side failures",
    )


@obs.timed("report.headline")
def headline_summary(dataset: MeasurementDataset) -> str:
    """The abstract's headline numbers vs measured."""
    client_rates = dataset.client_failure_rates()
    server_rates = dataset.server_failure_rates()
    report = permanent.find_permanent_pairs(dataset)
    rows = [
        ["median client failure rate", pct(float(np.nanmedian(client_rates))),
         f"{PAPER_HEADLINES['client_median_rate']}%"],
        ["median server failure rate", pct(float(np.nanmedian(server_rates))),
         f"{PAPER_HEADLINES['server_median_rate']}%"],
        ["95th-pctile client rate", pct(float(np.nanpercentile(client_rates, 95))),
         f"{PAPER_HEADLINES['client_p95_rate']}%"],
        ["permanent pairs", report.count, PAPER_HEADLINES["permanent_pairs"]],
        ["perm. share of conn failures",
         pct(report.share_of_connection_failures),
         f"{PAPER_HEADLINES['permanent_conn_failure_share']}%"],
        ["perm. share of txn failures",
         pct(report.share_of_transaction_failures),
         f"{PAPER_HEADLINES['permanent_txn_failure_share']}%"],
    ]
    return format_table(
        ["metric", "measured", "paper"], rows, title="Headline statistics"
    )
