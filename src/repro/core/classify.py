"""Transaction failure classification and breakdowns (Sections 4.1-4.3).

Everything here is a pure function over a
:class:`~repro.core.dataset.MeasurementDataset`; the outputs back Table 3,
Table 4, and Figures 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from repro import obs

from repro.core.dataset import MeasurementDataset
from repro.world.entities import ClientCategory


@dataclass(frozen=True)
class CategorySummary:
    """One row of Table 3."""

    category: ClientCategory
    transactions: int
    failed_transactions: int
    connections: Optional[int]
    failed_connections: Optional[int]

    @property
    def transaction_failure_rate(self) -> float:
        """Failed transactions / transactions."""
        return (
            self.failed_transactions / self.transactions if self.transactions else 0.0
        )

    @property
    def connection_failure_rate(self) -> Optional[float]:
        """Failed connections / connections, when observable."""
        if self.connections in (None, 0) or self.failed_connections is None:
            return None
        return self.failed_connections / self.connections


@obs.timed("classify.category_summary")
def category_summary(dataset: MeasurementDataset) -> List[CategorySummary]:
    """Table 3: overall transaction and connection counts per category.

    Connection counts for CN are withheld (the proxy masks them), exactly
    as in the paper.
    """
    rows = []
    for category in ClientCategory:
        mask = dataset.category_mask(category)
        if not mask.any():
            continue
        transactions = int(dataset.transactions[mask].sum())
        failures = int(dataset.failures[mask].sum())
        if category is ClientCategory.CORPNET:
            connections = failed = None
        else:
            connections = int(dataset.connections[mask].sum())
            failed = int(dataset.failed_connections[mask].sum())
        rows.append(
            CategorySummary(
                category=category,
                transactions=transactions,
                failed_transactions=failures,
                connections=connections,
                failed_connections=failed,
            )
        )
    return rows


@dataclass(frozen=True)
class TypeBreakdown:
    """Figure 1's bars for one client category."""

    category: ClientCategory
    transactions: int
    dns: int
    tcp: int
    http: int

    @property
    def total_failures(self) -> int:
        """All classified failures."""
        return self.dns + self.tcp + self.http

    @property
    def overall_rate(self) -> float:
        """The underlined number in Figure 1."""
        return self.total_failures / self.transactions if self.transactions else 0.0

    def fraction(self, which: str) -> float:
        """Fraction of failures of a given type ('dns'|'tcp'|'http')."""
        total = self.total_failures
        return getattr(self, which) / total if total else 0.0


@obs.timed("classify.failure_type_breakdown")
def failure_type_breakdown(
    dataset: MeasurementDataset,
) -> List[TypeBreakdown]:
    """Figure 1: failure rate by type per category (CN excluded: its
    failures are proxy-masked and cannot be broken down)."""
    rows = []
    for category in ClientCategory:
        if category is ClientCategory.CORPNET:
            continue
        mask = dataset.category_mask(category)
        if not mask.any():
            continue
        rows.append(
            TypeBreakdown(
                category=category,
                transactions=int(dataset.transactions[mask].sum()),
                dns=int(dataset.dns_failures[mask].sum()),
                tcp=int(dataset.tcp_failures[mask].sum()),
                http=int(dataset.http_errors[mask].sum()),
            )
        )
    # Evidence trail: the classified totals a run manifest's diff can
    # explain DNS/TCP/HTTP composition shifts with.
    obs.current_span().event(
        "classify.type_totals",
        dns=sum(r.dns for r in rows),
        tcp=sum(r.tcp for r in rows),
        http=sum(r.http for r in rows),
        transactions=sum(r.transactions for r in rows),
    )
    return rows


@dataclass(frozen=True)
class DNSBreakdown:
    """One row of Table 4."""

    category: ClientCategory
    failure_count: int
    ldns_timeout: int
    non_ldns_timeout: int
    error: int

    def fractions(self) -> Tuple[float, float, float]:
        """(ldns, non_ldns, error) fractions of DNS failures."""
        total = max(1, self.failure_count)
        return (
            self.ldns_timeout / total,
            self.non_ldns_timeout / total,
            self.error / total,
        )


@obs.timed("classify.dns_breakdown")
def dns_breakdown(dataset: MeasurementDataset) -> List[DNSBreakdown]:
    """Table 4: DNS failure breakdown per category (PL, BB, DU)."""
    rows = []
    for category in (
        ClientCategory.PLANETLAB,
        ClientCategory.BROADBAND,
        ClientCategory.DIALUP,
    ):
        mask = dataset.category_mask(category)
        if not mask.any():
            continue
        ldns = int(dataset.dns_ldns[mask].sum())
        non_ldns = int(dataset.dns_nonldns[mask].sum())
        error = int(dataset.dns_error[mask].sum())
        rows.append(
            DNSBreakdown(
                category=category,
                failure_count=ldns + non_ldns + error,
                ldns_timeout=ldns,
                non_ldns_timeout=non_ldns,
                error=error,
            )
        )
    return rows


@obs.timed("classify.dns_domain_contributions")
def dns_domain_contributions(
    dataset: MeasurementDataset,
) -> Dict[str, List[Tuple[str, int]]]:
    """Figure 2: per-website-domain DNS failure counts, per category.

    Returns, for each curve ("all", "ldns_timeout", "non_ldns_timeout",
    "error"), the site contributions sorted descending -- the cumulative
    sum of which is the figure's y-axis.
    """
    curves = {
        "all": dataset.dns_failures,
        "ldns_timeout": dataset.dns_ldns,
        "non_ldns_timeout": dataset.dns_nonldns,
        "error": dataset.dns_error,
    }
    result: Dict[str, List[Tuple[str, int]]] = {}
    for name, array in curves.items():
        per_site = array.sum(axis=(0, 2), dtype=np.int64)
        pairs = [
            (dataset.world.websites[si].name, int(per_site[si]))
            for si in range(len(per_site))
        ]
        pairs.sort(key=lambda p: p[1], reverse=True)
        result[name] = pairs
    return result


def cumulative_fractions(contributions: List[Tuple[str, int]]) -> List[float]:
    """The cumulative contribution curve for one Figure 2 series."""
    total = sum(count for _, count in contributions)
    if total == 0:
        return []
    out = []
    running = 0
    for _, count in contributions:
        running += count
        out.append(running / total)
    return out


def skewness_top_k(contributions: List[Tuple[str, int]], k: int = 1) -> float:
    """Fraction of failures contributed by the top-k domains.

    LDNS-timeout curves are flat (top-1 ~ 1/80); error curves are skewed
    (brazzil alone ~57%, Section 4.2).
    """
    total = sum(count for _, count in contributions)
    if total == 0:
        return 0.0
    return sum(count for _, count in contributions[:k]) / total


@dataclass(frozen=True)
class TCPBreakdown:
    """Figure 3's bars for one client category."""

    category: ClientCategory
    no_connection: int
    no_response: int
    partial_response: int
    no_or_partial: int

    @property
    def total(self) -> int:
        """All TCP failures."""
        return (
            self.no_connection
            + self.no_response
            + self.partial_response
            + self.no_or_partial
        )

    def fraction(self, which: str) -> float:
        """Fraction of TCP failures in one sub-category."""
        total = self.total
        return getattr(self, which) / total if total else 0.0


@obs.timed("classify.tcp_breakdown")
def tcp_breakdown(dataset: MeasurementDataset) -> List[TCPBreakdown]:
    """Figure 3: TCP connection failure breakdown (CN excluded)."""
    rows = []
    for category in (
        ClientCategory.PLANETLAB,
        ClientCategory.DIALUP,
        ClientCategory.BROADBAND,
    ):
        mask = dataset.category_mask(category)
        if not mask.any():
            continue
        rows.append(
            TCPBreakdown(
                category=category,
                no_connection=int(dataset.tcp_noconn[mask].sum()),
                no_response=int(dataset.tcp_noresp[mask].sum()),
                partial_response=int(dataset.tcp_partial[mask].sum()),
                no_or_partial=int(dataset.tcp_ambiguous[mask].sum()),
            )
        )
    return rows


@obs.timed("classify.loss_correlation")
def packet_loss_failure_correlation(dataset: MeasurementDataset) -> float:
    """Section 4.1.3: correlation between per-pair packet loss rate and
    transaction failure rate (the paper finds a weak r ~ 0.19)."""
    transactions, failures = dataset.pair_month_counts()
    connections = dataset.connections.sum(axis=2, dtype=np.int64)
    losses = dataset.packet_losses.sum(axis=2, dtype=np.int64)
    valid = (transactions > 0) & (connections > 0)
    if valid.sum() < 3:
        return float("nan")
    failure_rate = failures[valid] / transactions[valid]
    # Loss per connection as a crude loss-rate proxy, as tcpdump-based
    # post-processing would produce.
    loss_rate = losses[valid] / connections[valid]
    if np.std(failure_rate) == 0 or np.std(loss_rate) == 0:
        return float("nan")
    return float(np.corrcoef(failure_rate, loss_rate)[0, 1])
