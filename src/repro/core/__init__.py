"""The paper's analysis framework -- the primary contribution.

Modules map one-to-one onto the paper's sections:

* :mod:`repro.core.records` / :mod:`repro.core.dataset` -- Section 3.5
  performance records and the month-long dataset container.
* :mod:`repro.core.classify` -- Section 2.1 / 4.1-4.3 failure taxonomy.
* :mod:`repro.core.episodes` -- Section 4.4.3 episode identification
  (1-hour bins, CDF knee -> threshold f).
* :mod:`repro.core.blame` -- Section 4.4.1/4.4.4 blame attribution.
* :mod:`repro.core.permanent` -- Section 4.4.2 permanent-failure pairs.
* :mod:`repro.core.replicas` -- Section 4.5 replica-level analysis.
* :mod:`repro.core.similarity` -- Section 4.4.6#2 co-located similarity.
* :mod:`repro.core.spread` -- Section 4.4.6#1 spread of server failures.
* :mod:`repro.core.bgp_correlation` -- Section 4.6.
* :mod:`repro.core.proxy_analysis` -- Section 4.7.
* :mod:`repro.core.report` -- builders for every table and figure.
"""

from repro.core.records import (
    DNSFailureKind,
    FailureType,
    PerformanceRecord,
    TCPFailureKind,
)
from repro.core.dataset import MeasurementDataset

__all__ = [
    "FailureType",
    "DNSFailureKind",
    "TCPFailureKind",
    "PerformanceRecord",
    "MeasurementDataset",
]
