"""Performance records -- the unit of measurement data (Section 3.5).

For each download the paper stores: success/failure of the DNS lookup and
the download, the lookup and download times, the wget failure code, the
client name, URL, server IP, and time; post-processing adds the connection
failure cause and a packet-loss count.  :class:`PerformanceRecord` holds
exactly that.  The enums define the failure taxonomy of Section 2.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.addressing import IPv4Address


class FailureType(enum.Enum):
    """Top-level transaction failure categories (Section 2.1)."""

    NONE = "none"
    DNS = "dns"
    TCP = "tcp"
    HTTP = "http"
    #: Failures of proxied (CN) clients whose true nature the proxy masks
    #: (Table 3 note: no connection counts / breakdown for CN).
    MASKED = "masked"


class DNSFailureKind(enum.Enum):
    """DNS failure sub-classes (Section 2.1, category 1)."""

    LDNS_TIMEOUT = "ldns_timeout"
    NON_LDNS_TIMEOUT = "non_ldns_timeout"
    ERROR_RESPONSE = "error_response"


class TCPFailureKind(enum.Enum):
    """TCP connection failure sub-classes (Section 2.1, category 2)."""

    NO_CONNECTION = "no_connection"
    NO_RESPONSE = "no_response"
    PARTIAL_RESPONSE = "partial_response"
    #: Used when the packet trace needed to split no-response from
    #: partial-response is unavailable (BB clients, Figure 3).
    NO_OR_PARTIAL = "no_or_partial_response"


@dataclass
class PerformanceRecord:
    """One transaction's record, as stored by the measurement harness."""

    client_name: str
    site_name: str
    url: str
    timestamp: float
    hour: int
    failure_type: FailureType = FailureType.NONE
    dns_kind: Optional[DNSFailureKind] = None
    tcp_kind: Optional[TCPFailureKind] = None
    http_status: Optional[int] = None
    server_address: Optional[IPv4Address] = None
    dns_lookup_time: float = 0.0
    download_time: float = 0.0
    num_connections: int = 0
    num_failed_connections: int = 0
    packet_losses: int = 0
    bytes_received: int = 0

    def __post_init__(self) -> None:
        if self.failure_type is FailureType.DNS and self.dns_kind is None:
            raise ValueError("DNS failure needs a dns_kind")
        if self.failure_type is FailureType.TCP and self.tcp_kind is None:
            raise ValueError("TCP failure needs a tcp_kind")
        if self.num_connections < 0 or self.num_failed_connections < 0:
            raise ValueError("negative connection counts")
        if self.num_failed_connections > self.num_connections:
            raise ValueError("more failed connections than connections")

    @property
    def failed(self) -> bool:
        """True for any failed transaction."""
        return self.failure_type is not FailureType.NONE

    @property
    def succeeded(self) -> bool:
        """True for a successful transaction."""
        return self.failure_type is FailureType.NONE


@dataclass
class RecordBatch:
    """A list of records plus convenience accessors, used by the detailed
    engine and the record-level tests/examples."""

    records: List[PerformanceRecord] = field(default_factory=list)

    def append(self, record: PerformanceRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def failures(self) -> List[PerformanceRecord]:
        """All failed transactions."""
        return [r for r in self.records if r.failed]

    def failure_rate(self) -> float:
        """Overall transaction failure rate of the batch."""
        if not self.records:
            return 0.0
        return len(self.failures()) / len(self.records)

    def by_type(self, failure_type: FailureType) -> List[PerformanceRecord]:
        """Records with the given failure type."""
        return [r for r in self.records if r.failure_type is failure_type]

    def for_client(self, client_name: str) -> "RecordBatch":
        """The sub-batch for one client."""
        return RecordBatch(
            [r for r in self.records if r.client_name == client_name]
        )

    def for_site(self, site_name: str) -> "RecordBatch":
        """The sub-batch for one website."""
        return RecordBatch([r for r in self.records if r.site_name == site_name])

    def total_connections(self) -> int:
        """Total TCP connections attempted across the batch."""
        return sum(r.num_connections for r in self.records)
