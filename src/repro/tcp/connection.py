"""The TCP connection state machine.

Simulates one client-side TCP connection carrying one HTTP request:
handshake with SYN retries, request transmission, response transfer with
loss-driven retransmission, and wget's 60-second idle timeout (Section 3.1:
"the download attempt is terminated ... if the underlying TCP connection
idles (i.e., makes no progress) for 60 seconds").

Every packet the client would see at its own interface is fed to the
:class:`~repro.tcp.trace.PacketTrace`, so the post-hoc trace analysis can
reconstruct the failure cause without access to simulator ground truth.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.net.latency import LatencyModel
from repro.net.loss import LossModel
from repro.net.packet import PacketBuilder, TCPFlag
from repro.tcp.segment import (
    DATA_RTO_INITIAL,
    SYN_TIMEOUTS,
    plan_segments,
    syn_attempt_times,
)
from repro.tcp.trace import PacketTrace


class ConnectionOutcome(enum.Enum):
    """Terminal states matching the paper's TCP taxonomy (Section 2.1)."""

    COMPLETE = "complete"
    NO_CONNECTION = "no_connection"
    NO_RESPONSE = "no_response"
    PARTIAL_RESPONSE = "partial_response"

    @property
    def is_failure(self) -> bool:
        """True for any outcome other than a complete transfer."""
        return self is not ConnectionOutcome.COMPLETE


@dataclass
class ServerBehavior:
    """What the remote endpoint does, as configured by the fault state.

    * ``reachable`` -- the network path to/from the server works at all.
    * ``accepting`` -- the server's stack answers SYNs (False: host down or
      SYN backlog overflow -> silence).
    * ``refusing`` -- the server answers SYNs with RST (service not
      listening).
    * ``responds`` -- the application produces a response to the request.
    * ``response_bytes`` -- full response size when it responds.
    * ``stall_after_bytes`` -- if set, the server stops sending after this
      many bytes (connection eventually idles out at the client).
    * ``reset_after_bytes`` -- if set, the server RSTs the connection after
      this many bytes.
    * ``think_time`` -- server processing delay before the first byte.
    """

    reachable: bool = True
    accepting: bool = True
    refusing: bool = False
    responds: bool = True
    response_bytes: int = 20000
    stall_after_bytes: Optional[int] = None
    reset_after_bytes: Optional[int] = None
    think_time: float = 0.05


@dataclass
class ConnectionResult:
    """Everything the transaction layer needs about one connection."""

    outcome: ConnectionOutcome
    established: bool
    request_sent: bool
    bytes_received: int
    start_time: float
    end_time: float
    syn_attempts: int = 0
    retransmissions: int = 0
    reset_seen: bool = False

    @property
    def elapsed(self) -> float:
        """Wall-clock duration of the connection attempt."""
        return self.end_time - self.start_time

    @property
    def failed(self) -> bool:
        """True when the connection did not complete the transfer."""
        return self.outcome.is_failure


class TCPConnection:
    """One simulated TCP connection between a client and a server replica."""

    def __init__(
        self,
        builder: PacketBuilder,
        loss: LossModel,
        latency: LatencyModel,
        trace: PacketTrace,
        rng: random.Random,
        idle_timeout: float = 60.0,
        bandwidth_bps: float = 1_500_000.0,
    ) -> None:
        if idle_timeout <= 0:
            raise ValueError("idle timeout must be positive")
        self.builder = builder
        self.loss = loss
        self.latency = latency
        self.trace = trace
        self.idle_timeout = idle_timeout
        self.bandwidth_bps = bandwidth_bps
        self._rng = rng
        self._seq = 0  # server sequence cursor for response bytes

    # -- public API ----------------------------------------------------------

    def run(
        self,
        start_time: float,
        behavior: ServerBehavior,
        request_bytes: int = 300,
    ) -> ConnectionResult:
        """Drive the connection to a terminal state."""
        established_at, attempts, reset = self._handshake(start_time, behavior)
        if established_at is None:
            end = start_time + (
                0.0 if reset else sum(SYN_TIMEOUTS)
            )
            if reset:
                end = start_time + self.latency.sample_rtt()
            result = ConnectionResult(
                outcome=ConnectionOutcome.NO_CONNECTION,
                established=False,
                request_sent=False,
                bytes_received=0,
                start_time=start_time,
                end_time=end,
                syn_attempts=attempts,
                reset_seen=reset,
            )
        else:
            result = self._transfer(
                start_time, established_at, attempts, behavior, request_bytes
            )
        self._observe(result)
        return result

    def _observe(self, result: ConnectionResult) -> None:
        """Record the connection's outcome on the metrics registry."""
        registry = obs.registry()
        registry.counter("tcp_connections_total").inc()
        registry.counter(
            "tcp_outcome_total", outcome=result.outcome.value
        ).inc()
        if result.retransmissions:
            registry.counter("tcp_retransmissions_total").inc(
                result.retransmissions
            )
        registry.histogram(
            "tcp_syn_attempts", buckets=(1.0, 2.0, 3.0, 4.0, 5.0)
        ).observe(result.syn_attempts)
        if result.failed:
            obs.current_span().event(
                "tcp.failure",
                outcome=result.outcome.value,
                syn_attempts=result.syn_attempts,
                reset_seen=result.reset_seen,
            )

    # -- handshake -----------------------------------------------------------

    def _handshake(self, start_time: float, behavior: ServerBehavior):
        """Returns (established_time | None, syn_attempts, reset_seen)."""
        attempts = 0
        for attempt_time in syn_attempt_times(start_time):
            attempts += 1
            syn = self.builder.outbound(
                attempt_time, flags=TCPFlag.SYN, annotation="syn"
            )
            self.trace.observe_outbound(syn)
            syn_arrives = behavior.reachable and not self.loss.should_drop()
            if not syn_arrives:
                continue  # SYN lost in the network
            if not behavior.accepting and not behavior.refusing:
                continue  # server silent: wait out this attempt's timer
            rtt = self.latency.sample_rtt()
            if behavior.refusing:
                rst = self.builder.inbound(
                    attempt_time + rtt, flags=TCPFlag.RST | TCPFlag.ACK,
                    annotation="rst-to-syn",
                )
                delivered = behavior.reachable and not self.loss.should_drop()
                self.trace.observe_inbound(rst, delivered)
                if delivered:
                    return None, attempts, True
                continue
            synack = self.builder.inbound(
                attempt_time + rtt,
                flags=TCPFlag.SYN | TCPFlag.ACK,
                annotation="synack",
            )
            delivered = behavior.reachable and not self.loss.should_drop()
            self.trace.observe_inbound(synack, delivered)
            if delivered:
                ack = self.builder.outbound(
                    attempt_time + rtt, flags=TCPFlag.ACK, annotation="ack"
                )
                self.trace.observe_outbound(ack)
                return attempt_time + rtt, attempts, False
        return None, attempts, False

    # -- request + response --------------------------------------------------

    def _transfer(
        self,
        start_time: float,
        established_at: float,
        syn_attempts: int,
        behavior: ServerBehavior,
        request_bytes: int,
    ) -> ConnectionResult:
        now = established_at
        retransmissions = 0

        # Send the HTTP request; the client retransmits on loss until it is
        # delivered or the idle timeout fires (no ACK progress).
        request_delivered = False
        rto = DATA_RTO_INITIAL
        deadline = now + self.idle_timeout
        while now < deadline:
            packet = self.builder.outbound(
                now, flags=TCPFlag.PSH | TCPFlag.ACK,
                seq=0, payload_length=request_bytes, annotation="http-request",
            )
            self.trace.observe_outbound(packet)
            if behavior.reachable and not self.loss.should_drop():
                request_delivered = True
                now += self.latency.sample_rtt() / 2.0
                break
            retransmissions += 1
            now += rto
            rto = min(rto * 2.0, 60.0)

        if not request_delivered or not behavior.responds:
            end = deadline if not request_delivered else established_at + self.idle_timeout
            return ConnectionResult(
                outcome=ConnectionOutcome.NO_RESPONSE,
                established=True,
                request_sent=True,
                bytes_received=0,
                start_time=start_time,
                end_time=end,
                syn_attempts=syn_attempts,
                retransmissions=retransmissions,
            )

        now += behavior.think_time
        return self._receive_response(
            start_time, now, syn_attempts, retransmissions, behavior
        )

    def _receive_response(
        self,
        start_time: float,
        now: float,
        syn_attempts: int,
        retransmissions: int,
        behavior: ServerBehavior,
    ) -> ConnectionResult:
        plan = plan_segments(behavior.response_bytes)
        bytes_received = 0
        reset_seen = False

        def result(outcome: ConnectionOutcome, end: float) -> ConnectionResult:
            return ConnectionResult(
                outcome=outcome,
                established=True,
                request_sent=True,
                bytes_received=bytes_received,
                start_time=start_time,
                end_time=end,
                syn_attempts=syn_attempts,
                retransmissions=retransmissions,
                reset_seen=reset_seen,
            )

        per_segment_serialization = (
            lambda size: (size * 8.0) / self.bandwidth_bps
        )

        for size, offset in zip(plan.sizes, plan.offsets):
            if (
                behavior.reset_after_bytes is not None
                and offset >= behavior.reset_after_bytes
            ):
                rst = self.builder.inbound(
                    now, flags=TCPFlag.RST, annotation="rst-mid-transfer"
                )
                self.trace.observe_inbound(rst, delivered=True)
                reset_seen = True
                outcome = (
                    ConnectionOutcome.PARTIAL_RESPONSE
                    if bytes_received
                    else ConnectionOutcome.NO_RESPONSE
                )
                return result(outcome, now)
            if (
                behavior.stall_after_bytes is not None
                and offset >= behavior.stall_after_bytes
            ):
                # Server goes silent mid-transfer; the client idles out.
                now += self.idle_timeout
                outcome = (
                    ConnectionOutcome.PARTIAL_RESPONSE
                    if bytes_received
                    else ConnectionOutcome.NO_RESPONSE
                )
                return result(outcome, now)

            # Deliver this segment, retransmitting on loss until the idle
            # timer would fire.
            rto = DATA_RTO_INITIAL
            stall = 0.0
            while True:
                packet = self.builder.inbound(
                    now,
                    flags=TCPFlag.ACK | (TCPFlag.PSH if offset + size >= plan.total_bytes else TCPFlag.NONE),
                    seq=offset,
                    payload_length=size,
                    annotation="http-data",
                )
                delivered = behavior.reachable and not self.loss.should_drop()
                self.trace.observe_inbound(packet, delivered)
                if delivered:
                    now += per_segment_serialization(size)
                    bytes_received += size
                    break
                retransmissions += 1
                stall += rto
                now += rto
                rto = min(rto * 2.0, 60.0)
                if stall >= self.idle_timeout:
                    outcome = (
                        ConnectionOutcome.PARTIAL_RESPONSE
                        if bytes_received
                        else ConnectionOutcome.NO_RESPONSE
                    )
                    return result(outcome, now)

        fin = self.builder.inbound(
            now, flags=TCPFlag.FIN | TCPFlag.ACK, annotation="fin"
        )
        self.trace.observe_inbound(fin, delivered=True)
        fin_ack = self.builder.outbound(
            now, flags=TCPFlag.FIN | TCPFlag.ACK, annotation="fin-ack"
        )
        self.trace.observe_outbound(fin_ack)
        return result(ConnectionOutcome.COMPLETE, now)
