"""TCP substrate: connection state machine, traces, and trace analysis.

The paper's TCP failure taxonomy (Section 2.1) distinguishes:

* **No connection** -- the SYN handshake fails (lost SYN/SYN-ACKs beyond the
  retry budget, or an RST from a refusing server).
* **No response** -- the handshake succeeds and the request is sent, but no
  response bytes ever arrive before the 60-second idle timeout.
* **Partial response** -- some response bytes arrive but the connection
  terminates prematurely (server reset, or a stall that trips the idle
  timeout).

:mod:`repro.tcp.connection` produces these outcomes mechanistically;
:mod:`repro.tcp.trace` captures the packets (our tcpdump); and
:mod:`repro.tcp.trace_analysis` re-derives the failure cause and the
retransmission-based loss count from the trace alone, exactly as the
paper's post-processing does (Section 3.5).
"""

from repro.tcp.connection import ConnectionOutcome, ConnectionResult, TCPConnection
from repro.tcp.trace import PacketTrace
from repro.tcp.trace_analysis import TraceVerdict, analyze_trace

__all__ = [
    "TCPConnection",
    "ConnectionOutcome",
    "ConnectionResult",
    "PacketTrace",
    "TraceVerdict",
    "analyze_trace",
]
