"""Packet trace capture -- the tcpdump/windump stand-in.

Section 3.4, step 4: the measurement clients record a packet-level trace of
every transaction.  Note the capture point is the *client's* interface, so a
packet dropped in the network on its way to the client never appears, and a
packet the client sent appears even if the network later drops it.  The
capture therefore takes packets plus a "was this delivered / was this ever
put on the wire here" flag from the simulator.

Traces for BB clients are deliberately not collected (privacy concerns,
Section 3.4) -- the simulator models that with a disabled capture, which in
turn produces the "no/partial response" ambiguous category in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.net.packet import Packet, PacketDirection


@dataclass
class PacketTrace:
    """An ordered list of packets as seen at the client interface.

    ``enabled`` mirrors whether tcpdump was running on that client category.
    """

    client_name: str = ""
    enabled: bool = True
    _packets: List[Packet] = field(default_factory=list)

    def observe_outbound(self, packet: Packet) -> None:
        """Record a packet the client transmitted (always visible locally)."""
        if packet.direction is not PacketDirection.OUTBOUND:
            raise ValueError("observe_outbound requires an outbound packet")
        if self.enabled:
            self._packets.append(packet)

    def observe_inbound(self, packet: Packet, delivered: bool) -> None:
        """Record an inbound packet -- only if the network delivered it."""
        if packet.direction is not PacketDirection.INBOUND:
            raise ValueError("observe_inbound requires an inbound packet")
        if self.enabled and delivered:
            self._packets.append(packet)

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    @property
    def packets(self) -> List[Packet]:
        """The captured packets in capture order."""
        return list(self._packets)

    def outbound(self) -> List[Packet]:
        """Captured client->server packets."""
        return [p for p in self._packets if p.direction is PacketDirection.OUTBOUND]

    def inbound(self) -> List[Packet]:
        """Captured server->client packets."""
        return [p for p in self._packets if p.direction is PacketDirection.INBOUND]

    def syns_sent(self) -> List[Packet]:
        """All bare SYNs the client transmitted."""
        return [p for p in self.outbound() if p.is_syn]

    def synacks_received(self) -> List[Packet]:
        """All SYN-ACKs the client saw."""
        return [p for p in self.inbound() if p.is_synack]

    def data_bytes_received(self) -> int:
        """Distinct response payload bytes seen (dedup by sequence offset)."""
        seen = set()
        for packet in self.inbound():
            if packet.carries_data:
                seen.add((packet.seq, packet.payload_length))
        # Deduplicate overlapping retransmissions by counting unique offsets.
        covered = set()
        for seq, length in seen:
            covered.update(range(seq, seq + length))
        return len(covered)

    def duration(self) -> float:
        """Time from first to last captured packet; 0 for empty traces."""
        if not self._packets:
            return 0.0
        return self._packets[-1].timestamp - self._packets[0].timestamp

    def merged(self, other: "PacketTrace") -> "PacketTrace":
        """A new trace containing both captures, time-sorted."""
        merged = PacketTrace(client_name=self.client_name, enabled=True)
        merged._packets = sorted(
            self._packets + other._packets, key=lambda p: p.timestamp
        )
        return merged
