"""TCP segmentation helpers and retry schedules.

TCP-level constants follow the stacks the paper's clients ran (Linux 2.6.8
on PlanetLab, Windows XP/2000/2003 elsewhere): an MSS of 1460 bytes and an
exponential SYN retry schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: Maximum segment size in bytes.
MSS = 1460

#: SYN retransmission timeouts in seconds (initial try uses the first entry
#: as its timeout before the first retry fires).  Linux 2.6 used 3s with
#: doubling and 5 retries by default; Windows XP used 3s doubling with 2
#: retries.  We use a middle-ground 4-attempt schedule; the exact count only
#: scales the time a "no connection" failure takes to declare, not its rate.
SYN_TIMEOUTS = (3.0, 6.0, 12.0, 24.0)

#: Data retransmission timeout baseline, seconds.
DATA_RTO_INITIAL = 1.0

#: Maximum retransmissions of a single data segment before giving up.
DATA_MAX_RETRIES = 8


@dataclass(frozen=True)
class SegmentPlan:
    """A response split into MSS-sized segments.

    ``sizes[i]`` is the payload length of segment *i*; ``offsets[i]`` its
    starting byte offset in the response stream.
    """

    total_bytes: int
    sizes: Tuple[int, ...]
    offsets: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.sizes)


def plan_segments(total_bytes: int, mss: int = MSS) -> SegmentPlan:
    """Split ``total_bytes`` into MSS-sized segments.

    >>> plan = plan_segments(3000)
    >>> plan.sizes
    (1460, 1460, 80)
    >>> plan.offsets
    (0, 1460, 2920)
    """
    if total_bytes < 0:
        raise ValueError("negative byte count")
    if mss <= 0:
        raise ValueError("MSS must be positive")
    sizes: List[int] = []
    offsets: List[int] = []
    offset = 0
    while offset < total_bytes:
        size = min(mss, total_bytes - offset)
        sizes.append(size)
        offsets.append(offset)
        offset += size
    return SegmentPlan(total_bytes=total_bytes, sizes=tuple(sizes), offsets=tuple(offsets))


def syn_attempt_times(start: float, timeouts: Tuple[float, ...] = SYN_TIMEOUTS) -> Iterator[float]:
    """Absolute times at which each SYN (re)transmission fires.

    >>> list(syn_attempt_times(10.0, (3.0, 6.0)))
    [10.0, 13.0, 19.0]
    """
    t = start
    yield t
    for timeout in timeouts[:-1]:
        t += timeout
        yield t


def handshake_failure_time(start: float, timeouts: Tuple[float, ...] = SYN_TIMEOUTS) -> float:
    """The time at which a fully-unanswered handshake is declared failed."""
    return start + sum(timeouts)


def data_rto_schedule(
    initial: float = DATA_RTO_INITIAL, retries: int = DATA_MAX_RETRIES
) -> Tuple[float, ...]:
    """Exponentially backed-off data RTOs, capped at 60 s per interval."""
    if retries < 0:
        raise ValueError("negative retry count")
    schedule = []
    rto = initial
    for _ in range(retries):
        schedule.append(min(rto, 60.0))
        rto *= 2.0
    return tuple(schedule)
