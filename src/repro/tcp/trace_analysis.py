"""Post-hoc trace analysis -- the paper's Section 3.5 post-processing.

Given only the packet trace captured at the client, determine:

(a) the cause of a connection failure -- *no connection* (SYNs sent, no
    SYN-ACK, or RST in reply to a SYN), *no response* (handshake completed,
    request sent, zero response payload bytes), or *partial response*
    (some but not all response bytes before premature termination); and

(b) the packet loss count, inferred from retransmissions: repeated SYNs,
    repeated request transmissions, and duplicate response sequence ranges.

When the trace is unavailable (the BB clients, Section 3.4), the verdict is
``AMBIGUOUS_NO_OR_PARTIAL`` for post-handshake failures -- the category
Figure 3 labels "no/partial response".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet, PacketDirection
from repro.tcp.trace import PacketTrace


class TraceVerdict(enum.Enum):
    """Trace-derived classification of a connection."""

    COMPLETE = "complete"
    NO_CONNECTION = "no_connection"
    NO_RESPONSE = "no_response"
    PARTIAL_RESPONSE = "partial_response"
    AMBIGUOUS_NO_OR_PARTIAL = "no_or_partial_response"
    EMPTY_TRACE = "empty_trace"


@dataclass(frozen=True)
class TraceAnalysis:
    """The full result of analysing one trace."""

    verdict: TraceVerdict
    syns_sent: int
    synack_seen: bool
    rst_to_syn: bool
    request_transmissions: int
    response_bytes: int
    inferred_losses: int
    clean_close: bool

    @property
    def handshake_completed(self) -> bool:
        """True if the client saw a SYN-ACK."""
        return self.synack_seen


def analyze_trace(
    trace: PacketTrace,
    expected_response_bytes: Optional[int] = None,
) -> TraceAnalysis:
    """Classify a connection from its client-side packet trace.

    ``expected_response_bytes``, when known (e.g. from the Content-Length
    of a successful sibling download), lets the analysis distinguish a
    complete transfer from a partial one; without it, a trace ending in a
    clean FIN exchange is treated as complete and one ending in RST or
    nothing as partial.
    """
    packets = trace.packets
    if not packets:
        return TraceAnalysis(
            verdict=TraceVerdict.EMPTY_TRACE,
            syns_sent=0,
            synack_seen=False,
            rst_to_syn=False,
            request_transmissions=0,
            response_bytes=0,
            inferred_losses=0,
            clean_close=False,
        )

    syns = trace.syns_sent()
    synacks = trace.synacks_received()
    synack_seen = bool(synacks)

    # An RST arriving before any SYN-ACK is a refusal of the handshake.
    rst_to_syn = False
    for packet in packets:
        if packet.direction is PacketDirection.INBOUND and packet.is_rst:
            rst_to_syn = not synack_seen or packet.timestamp < synacks[0].timestamp
            break

    request_transmissions = sum(
        1
        for p in trace.outbound()
        if p.carries_data
    )
    response_bytes = trace.data_bytes_received()
    clean_close = any(
        p.is_fin for p in trace.inbound()
    ) and not any(p.is_rst for p in trace.inbound())

    inferred_losses = _infer_losses(trace, synack_seen)

    if not synack_seen:
        verdict = TraceVerdict.NO_CONNECTION
    elif response_bytes == 0:
        verdict = (
            TraceVerdict.NO_RESPONSE
            if request_transmissions
            else TraceVerdict.NO_CONNECTION
        )
    else:
        if expected_response_bytes is not None:
            complete = response_bytes >= expected_response_bytes
        else:
            complete = clean_close
        verdict = (
            TraceVerdict.COMPLETE if complete else TraceVerdict.PARTIAL_RESPONSE
        )

    return TraceAnalysis(
        verdict=verdict,
        syns_sent=len(syns),
        synack_seen=synack_seen,
        rst_to_syn=rst_to_syn,
        request_transmissions=request_transmissions,
        response_bytes=response_bytes,
        inferred_losses=inferred_losses,
        clean_close=clean_close,
    )


def _infer_losses(trace: PacketTrace, synack_seen: bool) -> int:
    """Count losses visible in the trace via retransmission evidence.

    * each SYN beyond the first implies a lost SYN or SYN-ACK;
    * each outbound data packet repeating a (seq, length) implies a lost
      request or a lost ACK;
    * each inbound data packet repeating a (seq, length) implies a lost
      data segment (we see the retransmission but not the drop itself).

    The paper notes (Section 4.1.3) that this estimator is biased for failed
    connections that transfer no data -- which is exactly what we find too.
    """
    losses = max(0, len(trace.syns_sent()) - 1)

    seen_out = set()
    for packet in trace.outbound():
        if packet.carries_data:
            key = (packet.seq, packet.payload_length)
            if key in seen_out:
                losses += 1
            seen_out.add(key)

    seen_in = set()
    for packet in trace.inbound():
        if packet.carries_data:
            key = (packet.seq, packet.payload_length)
            if key in seen_in:
                losses += 1
            seen_in.add(key)
    return losses


def classify_without_trace(
    established: bool, bytes_received: int
) -> TraceVerdict:
    """Best-effort classification when no trace was captured (BB clients).

    wget's exit status still reveals whether the connection was established
    and whether any bytes arrived, but cannot split no-response from
    partial-response reliably when wget's own buffering hides byte counts;
    the paper resolves this by introducing the combined category.
    """
    if not established:
        return TraceVerdict.NO_CONNECTION
    if bytes_received > 0:
        return TraceVerdict.PARTIAL_RESPONSE
    return TraceVerdict.AMBIGUOUS_NO_OR_PARTIAL
