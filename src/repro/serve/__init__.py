"""Service mode: the continuous simulation daemon behind ``repro serve``.

The batch pipeline diagnoses a *recorded* month; this package runs the
same engine as an always-on service -- sim-time chunks through the
columnar/parallel engine, every chunk committed durably
(:mod:`repro.obs.runstore.chunks`) and folded into the streaming
detector (:mod:`repro.obs.online`), with the unified HTTP read API
(:mod:`repro.obs.live.server`) mounted on top.  Kill it at any point;
``repro serve --resume RUN`` continues from the last committed sim-hour
with a bit-identical final digest.
"""

from repro.serve.daemon import ServeConfig, ServeDaemon, serve_run_id

__all__ = ["ServeConfig", "ServeDaemon", "serve_run_id"]
