"""The ``repro serve`` daemon: simulate, commit, detect, serve -- repeat.

:class:`ServeDaemon` drives the existing columnar/parallel engine in
sim-time chunks of ``chunk_hours`` toward a fixed horizon.  After each
chunk it:

1. **commits** the chunk's count arrays durably through
   :class:`~repro.obs.runstore.chunks.ChunkStore` (npz + digest-chained
   manifest under ``runs/<id>/chunks/``), *then*
2. **merges** them into the in-memory dataset, and
3. **feeds** the streaming :class:`~repro.obs.online.OnlineDetector`
   one synthetic ``hour_stats`` event per simulated hour -- the same
   per-entity vectors the columnar engine emits on the telemetry bus,
   recomputed from the committed arrays (pure reads; the digest cannot
   be perturbed).

Because every hour draws from its own derived RNG stream, any committed
prefix is bit-identical to the same hours of a batch run -- so a daemon
killed at an arbitrary point and resumed (``--resume RUN``) replays the
committed chunks into a fresh dataset + detector and continues from the
cursor, finishing with the same final digest *and* the same alert
stream as an uninterrupted run.

**Identity.** The run id is content-addressed over the *plan* (hours,
per_hour, seed, fault) rather than the result -- the daemon must be
discoverable and resumable before the result exists.  The manifest is
written at start and refreshed per chunk (progress under
``dataset.provenance.serve``), then finalized with the dataset digest
and the alert stream at shutdown.

The HTTP surface (:class:`~repro.obs.live.server.MetricsServer`) serves
``/healthz``, ``/status`` (sim-clock, chunk cursor, ETA, worker lanes),
``/metrics``, ``/alerts``, ``/episodes``, ``/blame`` and ``/runs``
throughout.  SIGTERM/SIGINT set the
:class:`~repro.obs.live.server.ShutdownCoordinator` flag; the loop
notices at the next chunk boundary, commits what is in flight, and
shuts down gracefully.
"""

from __future__ import annotations

import hashlib
import shutil
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.dataset import MeasurementDataset
from repro.obs.horizon import HistoryStore, SLOEngine, fold_block, rolling_seed
from repro.obs.live.server import DEFAULT_HOST, MetricsServer, ShutdownCoordinator
from repro.obs.metrics import MetricsRegistry
from repro.obs.online.detector import OnlineDetector
from repro.obs.online.rules import DEFAULT_RULES, SLO_BURN_RULES
from repro.obs.runstore.chunks import ChunkStore
from repro.obs.runstore.manifest import RunManifest, canonical_json, compute_run_id
from repro.obs.runstore.store import (
    RunStore,
    _git_revision,
    resolve_runs_dir,
    runs_index,
)
from repro.world.defaults import DEFAULT_HOURS
from repro.world.faults import FaultGenerator
from repro.world.outcome_model import AccessConfig
from repro.world.parallel import plan_shards, run_block
from repro.world.rng import RNGRegistry
from repro.world.simulator import MonthSimulator

#: Identity schema for serve run ids (the *plan*, not the result).
SERVE_SCHEMA = "repro.serve/1"

#: Default sim-hours simulated (and committed) per chunk.
DEFAULT_CHUNK_HOURS = 6

#: The daemon's default rule set: the batch defaults plus the
#: multi-window SLO burn rules (a long-running service pages on budget
#: burn, not only on per-entity episodes).
SERVE_RULES = DEFAULT_RULES + SLO_BURN_RULES


@dataclass(frozen=True)
class ServeConfig:
    """Everything that defines one serve run (and its identity).

    ``hours=0`` means an *indefinite* horizon: the daemon simulates a
    periodic world (epoch = the paper's 744-hour month; sim-hour ``h``
    draws epoch hour ``h % 744``'s RNG streams) until stopped, and is
    only legal with ``retain_hours`` set -- unbounded history with no
    retention would grow without limit, which is exactly the failure
    mode retention exists to prevent.

    ``retain_hours`` is an execution knob, not identity: it bounds
    which chunk *payloads* stay on disk and which detector/history
    window is kept, never which counts are simulated -- the committed
    chain and rolling dataset digest are unaffected by it.
    """

    hours: int = 744
    per_hour: int = 4
    seed: int = 20050101
    fault: Optional[str] = None
    chunk_hours: int = DEFAULT_CHUNK_HOURS
    workers: int = 1
    port: int = 0
    host: str = DEFAULT_HOST
    throttle_seconds: float = 0.0
    runs_dir: Optional[str] = None
    retain_hours: Optional[int] = None

    def identity_config(self) -> Dict[str, Any]:
        """The fields that affect *results* (digest-relevant only).

        ``chunk_hours``, worker count, retention, and the serving knobs
        are pure execution detail -- any split of the same plan
        produces the same dataset, so they must not change the run id.
        """
        return {
            "hours": self.hours,
            "per_hour": self.per_hour,
            "seed": self.seed,
            "fault": self.fault,
        }

    def stored_config(self) -> Dict[str, Any]:
        """What the chunk manifest pins for resume compatibility."""
        return {**self.identity_config(), "chunk_hours": self.chunk_hours}


def serve_run_id(config: ServeConfig) -> str:
    """Content-address a serve plan into its run id."""
    return compute_run_id({
        "schema": SERVE_SCHEMA,
        "command": "serve",
        "config": config.identity_config(),
    })


def hour_entity_stats_from_block(
    arrays: Dict[str, np.ndarray], t: int
) -> Dict[str, list]:
    """One hour's per-entity stats from committed block arrays.

    Mirrors :func:`repro.world.columnar._hour_entity_stats` exactly --
    same failure-field sum, same sparse TCP triples in the same
    row-major order -- but reads hour ``t`` of ``(client, site, hour)``
    block arrays instead of staged hour planes, so the daemon can feed
    the detector from what it just committed (and a resume can feed it
    from what it replays, producing the identical alert stream).
    """
    trans = arrays["transactions"][:, :, t]
    failures = np.zeros(trans.shape, dtype=np.int64)
    for name in (
        "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures",
    ):
        failures += arrays[name][:, :, t]
    tcp = np.zeros(trans.shape, dtype=np.int64)
    for name in ("tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous"):
        tcp += arrays[name][:, :, t]
    ci, si = np.nonzero(tcp)
    return {
        "ct": [int(v) for v in trans.sum(axis=1, dtype=np.int64)],
        "cf": [int(v) for v in failures.sum(axis=1)],
        "st": [int(v) for v in trans.sum(axis=0, dtype=np.int64)],
        "sf": [int(v) for v in failures.sum(axis=0)],
        "tcp": [[int(c), int(s), int(tcp[c, s])] for c, s in zip(ci, si)],
    }


def plan_entities(config: Dict[str, Any]) -> Dict[str, Any]:
    """Entity names/regions for a stored serve plan (topology only).

    Builds the world a chunk manifest's config describes without
    simulating anything -- what ``repro slo`` needs to seed an SLO
    ledger for a run that has no retention checkpoint.  Lives here (not
    in ``obs.horizon``) because only the serve layer may import
    ``repro.world``.
    """
    from repro.world.defaults import build_default_world

    hours = int(config["hours"])
    world = build_default_world(hours=hours if hours else DEFAULT_HOURS)
    return {
        "clients": [c.name for c in world.clients],
        "servers": [w.name for w in world.websites],
        "client_regions": [c.region.value for c in world.clients],
    }


class ServeError(RuntimeError):
    """The daemon cannot start (conflicting state, bad resume target)."""


class ServeDaemon:
    """One serve run: build world, loop chunks, serve the read API."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.perf_counter,
        chunk_callback: Optional[Callable[..., None]] = None,
        argv: Optional[List[str]] = None,
    ) -> None:
        if config.hours < 0:
            raise ServeError(f"--hours must be >= 0, got {config.hours}")
        if config.retain_hours is not None and config.retain_hours < 1:
            raise ServeError(
                f"--retain-hours must be >= 1, got {config.retain_hours}"
            )
        if config.hours == 0 and config.retain_hours is None:
            raise ServeError(
                "an indefinite horizon (--hours 0) requires a retention "
                "policy; set --retain-hours N"
            )
        self.config = config
        #: Indefinite mode: no horizon, world cycles per 744h epoch.
        self.indefinite = config.hours == 0
        #: The world horizon actually built (and the RNG epoch length).
        self.epoch_hours = config.hours if config.hours else DEFAULT_HOURS
        self.retention = config.retain_hours
        self.run_id = serve_run_id(config)
        self.store = RunStore(resolve_runs_dir(config.runs_dir))
        self.chunks = ChunkStore(self.store.run_dir(self.run_id))
        self.history = HistoryStore()
        self.slo = SLOEngine()
        self.detector = OnlineDetector(
            rules=SERVE_RULES,
            observers=[self.history, self.slo],
            retention_hours=self.retention,
        )
        self.coordinator = ShutdownCoordinator()
        #: Called after every committed chunk with (daemon, entry) --
        #: the test hook that requests a stop at a chosen boundary.
        self.chunk_callback = chunk_callback
        self.argv = list(argv or [])
        self._clock = clock
        self._monotonic = monotonic
        self._state_lock = threading.Lock()
        self._state = "initialized"
        self._lanes: List[List[int]] = []
        self._sim_seconds = 0.0
        self._sim_hours_done = 0
        self.cursor = 0
        self.resumed_hours = 0
        self.chunks_committed = 0
        self._created_unix = clock()
        self._started_monotonic = monotonic()
        self._last_chunk_seconds = 0.0
        self._pruned_chunks = 0
        #: The hour-chained rolling dataset digest (seeded in prepare).
        self.rolling: Optional[str] = None

        self.world = None
        self.truth = None
        self.simulator: Optional[MonthSimulator] = None
        self.dataset: Optional[MeasurementDataset] = None
        self.server = MetricsServer(
            config.port,
            host=config.host,
            detector=self.detector,
            status_provider=self.status_document,
            runs_provider=lambda: runs_index(self.store),
            history_provider=self.history.document,
            slo_provider=self.slo.document,
            gauges_provider=self._gauge_registries,
        )

    # -- construction -----------------------------------------------------------

    def _build_world(self) -> None:
        """Mirror ``simulate_default_month`` exactly (digest equality).

        The world is built over :attr:`epoch_hours` -- the configured
        horizon, or one 744-hour month when indefinite.  In indefinite
        mode the fault process and RNG streams repeat each epoch
        (a planted ``--fault`` recurs every 744 sim-hours), keeping
        world/truth memory constant over an unbounded run.

        Retention mode never allocates the full dataset: the rolling
        digest (:mod:`repro.obs.horizon.rolling`) replaces
        ``dataset.digest()`` and everything else folds incrementally.
        """
        from repro.world.defaults import build_default_world

        config = self.config
        self.world = build_default_world(hours=self.epoch_hours)
        access = AccessConfig(per_hour=config.per_hour)
        rngs = RNGRegistry(config.seed)
        truth = FaultGenerator(self.world, None, rngs.fork("faults")).generate()
        if config.fault:
            from repro.world.scenarios import parse_fault_spec

            truth = parse_fault_spec(config.fault)(self.world, truth)
        self.truth = truth
        self.simulator = MonthSimulator(
            self.world, access=access, rngs=rngs, truth=truth
        )
        self.dataset = (
            None if self.retention is not None
            else MeasurementDataset(self.world)
        )

    def _fingerprint_sha256(self) -> str:
        return hashlib.sha256(
            canonical_json(
                MeasurementDataset.world_fingerprint(self.world)
            ).encode("utf-8")
        ).hexdigest()

    def prepare(self, resume: bool = False, fresh: bool = False) -> None:
        """Build the world and reconcile with any committed chunks.

        ``fresh`` discards previously committed chunks; ``resume``
        replays them into the dataset *and* the detector (identical
        ``hour_stats`` sequence => identical alert stream) and moves the
        cursor.  Committed chunks present with neither flag is an error:
        silently overwriting durable work would be worse than asking.
        """
        self._build_world()
        if fresh and self.chunks.exists():
            shutil.rmtree(self.chunks.chunks_dir, ignore_errors=True)
            self.chunks = ChunkStore(self.store.run_dir(self.run_id))
        self.detector.update({
            "type": "run_start",
            "hours": self.config.hours,
            "clients": [c.name for c in self.world.clients],
            "servers": [w.name for w in self.world.websites],
            "client_regions": [
                c.region.value for c in self.world.clients
            ],
        })
        fingerprint = self._fingerprint_sha256()
        self.rolling = rolling_seed(fingerprint)
        if self.chunks.exists():
            stored = self.chunks.config()
            if stored != self.config.stored_config():
                raise ServeError(
                    f"run {self.run_id} has committed chunks under a "
                    f"different configuration ({stored}); use --fresh to "
                    "discard them"
                )
            manifest = self.chunks.load()
            if manifest.get("fingerprint_sha256") != fingerprint:
                raise ServeError(
                    f"run {self.run_id}: world fingerprint changed since "
                    "chunks were committed (code drift?); use --fresh"
                )
            committed = self.chunks.committed_hours()
            if committed and not resume:
                raise ServeError(
                    f"run {self.run_id} already has {committed} committed "
                    f"hour(s); continue with --resume {self.run_id} or "
                    "discard with --fresh"
                )
            self._pruned_chunks = sum(
                1 for e in self.chunks.entries() if e.get("pruned")
            )
            if resume and self.retention is not None:
                checkpoint = self.chunks.load_checkpoint()
                if checkpoint is not None:
                    self._restore_checkpoint(checkpoint)
            for entry, arrays in self.chunks.replay(start_hour=self.cursor):
                h0, h1 = int(entry["hour_start"]), int(entry["hour_stop"])
                if self.dataset is not None:
                    self.dataset.merge(arrays, (h0, h1))
                self.rolling = fold_block(self.rolling, arrays)
                self._feed_detector(arrays, h0, h1)
                self.cursor = h1
            self.resumed_hours = self.cursor
            if self.resumed_hours:
                obs.logger.info(
                    "resumed %d committed hour(s) of run %s",
                    self.resumed_hours, self.run_id,
                )
        else:
            self.chunks.initialize(
                self.config.stored_config(), fingerprint, run_id=self.run_id
            )
        if self.retention is not None:
            self.chunks.record_retention(self.retention)
        self._state = "prepared"

    def _restore_checkpoint(self, checkpoint: Dict[str, Any]) -> None:
        """Restore fold state from a chain-verified retention checkpoint.

        Sets the replay cursor to the checkpoint's chunk boundary:
        pruned chunks behind it are chain-verified from stored digests
        only, retained chunks past it (committed after the checkpoint
        was last written) are replayed on top of the restored state --
        together bit-identical to an uninterrupted run's fold.
        """
        self.detector.restore_state(checkpoint["detector"])
        self.history.restore_state(checkpoint["history"])
        self.slo.restore_state(checkpoint["slo"])
        self.rolling = str(checkpoint["rolling_digest"])
        self.cursor = int(checkpoint["hour"])
        obs.logger.info(
            "restored retention checkpoint at sim-hour %d (chain %s)",
            self.cursor, str(checkpoint["chain"])[:16],
        )

    # -- the chunk loop ---------------------------------------------------------

    def _feed_detector(
        self, arrays: Dict[str, np.ndarray], hour_start: int, hour_stop: int
    ) -> None:
        for t in range(hour_stop - hour_start):
            self.detector.update({
                "type": "hour_stats",
                "hour": hour_start + t,
                **hour_entity_stats_from_block(arrays, t),
            })

    def request_stop(self) -> None:
        """Programmatic graceful stop (same path as SIGTERM)."""
        self.coordinator.request_stop()

    def run(
        self, announce: Optional[Callable[[int], None]] = None
    ) -> Dict[str, Any]:
        """Serve until the horizon or a stop request; returns a summary.

        ``announce(port)`` is called once the HTTP server is bound (the
        CLI prints the endpoints).  Returns ``{"run_id", "completed",
        "committed_hours", "hours", "digest", "chain"}`` -- ``digest``
        only when the horizon was reached (computing it mid-run would
        describe a dataset no batch run produces).
        """
        if self._state != "prepared":
            raise ServeError("run() before prepare()")
        config = self.config
        signals_installed = self.coordinator.install()
        if not signals_installed:
            obs.logger.info(
                "not on the main thread; graceful shutdown via "
                "request_stop() only"
            )
        self.server.start()
        if announce is not None:
            announce(self.server.port)
        self._state = "running"
        self._write_manifest(final=False)
        try:
            while (
                (self.indefinite or self.cursor < config.hours)
                and not self.coordinator.stop_requested()
            ):
                h0 = self.cursor
                h1 = h0 + config.chunk_hours
                if not self.indefinite:
                    h1 = min(h1, config.hours)
                # Chunks never straddle an epoch boundary: sim-hour h
                # draws epoch hour h % epoch_hours's RNG stream, and
                # run_block shards within one world horizon.
                e0 = h0 % self.epoch_hours
                h1 = min(h1, h0 + (self.epoch_hours - e0))
                with self._state_lock:
                    self._lanes = [
                        [a, b] for a, b in (
                            (h0 + s0, h0 + s1)
                            for s0, s1 in plan_shards(
                                h1 - h0, max(1, config.workers)
                            )
                        )
                    ]
                chunk_started = self._monotonic()
                with obs.span("serve.chunk", hour_start=h0, hour_stop=h1):
                    arrays = run_block(
                        self.simulator, e0, e0 + (h1 - h0),
                        workers=config.workers,
                    )
                    entry = self.chunks.commit(h0, h1, arrays)
                    if self.dataset is not None:
                        self.dataset.merge(arrays, (h0, h1))
                    self.rolling = fold_block(self.rolling, arrays)
                    self._feed_detector(arrays, h0, h1)
                    if self.retention is not None:
                        self._checkpoint_and_prune()
                with self._state_lock:
                    self.cursor = h1
                    self.chunks_committed += 1
                    chunk_seconds = self._monotonic() - chunk_started
                    self._last_chunk_seconds = chunk_seconds
                    self._sim_seconds += chunk_seconds
                    self._sim_hours_done += h1 - h0
                    self._lanes = []
                obs.logger.info(
                    "chunk [%d, %d) committed (chain %s)",
                    h0, h1, entry["chain"][:16],
                )
                self._write_manifest(final=False)
                if self.chunk_callback is not None:
                    self.chunk_callback(self, entry)
                if (
                    config.throttle_seconds > 0
                    and (self.indefinite or self.cursor < config.hours)
                ):
                    # An interruptible sleep: a stop request (signal or
                    # programmatic) wakes it immediately.
                    self.coordinator.wait(config.throttle_seconds)
        finally:
            completed = (
                not self.indefinite and self.cursor >= config.hours
            )
            with self._state_lock:
                self._state = "finished" if completed else "stopped"
            digest = None
            if completed:
                digest = (
                    self.dataset.digest() if self.dataset is not None
                    else self.rolling
                )
            self._write_manifest(final=True, digest=digest)
            self.server.stop()
            if signals_installed:
                self.coordinator.restore()
        return {
            "run_id": self.run_id,
            "completed": completed,
            "committed_hours": self.cursor,
            "hours": config.hours,
            "digest": digest,
            "rolling": self.rolling,
            "chain": self.chunks.chain_digest(),
        }

    def _checkpoint_and_prune(self) -> None:
        """Checkpoint fold state at the new boundary, then prune payloads.

        Runs inside the commit span, *before* the public cursor moves:
        a kill at any point leaves either the previous checkpoint (the
        new chunk is replayable -- its payload cannot have been pruned,
        the floor trails the cursor by ``retain_hours``) or the new one.
        Checkpoint first, prune second, so no reachable state ever
        depends on a payload the prune is about to delete.
        """
        boundary = self.chunks.committed_hours()
        self.chunks.write_checkpoint({
            "hour": boundary,
            "run_id": self.run_id,
            "retain_hours": self.retention,
            "rolling_digest": self.rolling,
            "detector": self.detector.export_state(),
            "history": self.history.export_state(),
            "slo": self.slo.export_state(),
        })
        floor = max(0, boundary - self.retention)
        pruned = self.chunks.prune_payloads(floor)
        if pruned:
            self._pruned_chunks += pruned
            obs.logger.info(
                "pruned %d chunk payload(s) below sim-hour %d "
                "(manifest chain intact)", pruned, floor,
            )

    # -- gauges for /metrics ----------------------------------------------------

    def _gauge_registries(self) -> List[MetricsRegistry]:
        """Fresh per-scrape registries for the serve and SLO gauges.

        Built on demand so every ``/metrics`` scrape reflects the
        current cursor without the daemon mutating long-lived
        instruments from the chunk loop.
        """
        with self._state_lock:
            cursor = self.cursor
            last_chunk = self._last_chunk_seconds
            pruned = self._pruned_chunks
        serve = MetricsRegistry()
        serve.gauge("serve_committed_hours").set(float(cursor))
        serve.gauge("serve_chain_length").set(
            float(len(self.chunks.entries()))
        )
        serve.gauge("serve_last_chunk_seconds").set(last_chunk)
        serve.gauge("serve_resumed").set(
            1.0 if self.resumed_hours else 0.0
        )
        serve.gauge("serve_retain_hours").set(
            float(self.retention) if self.retention is not None else 0.0
        )
        serve.gauge("serve_pruned_chunks").set(float(pruned))
        for res, count in self.history.cell_counts().items():
            serve.gauge("history_cells", res=res).set(float(count))
        return [serve, self.slo.to_registry()]

    # -- the run record ---------------------------------------------------------

    def _write_manifest(
        self, final: bool, digest: Optional[str] = None
    ) -> None:
        """Write/refresh the run manifest (alert stream only on final).

        The run id is the *plan* address computed up front, so
        ``seal()`` is deliberately not called -- interrupted and
        completed invocations of the same plan share one run directory,
        which is exactly what makes ``--resume RUN`` resolvable.
        """
        config = self.config
        provenance = {
            "engine": "fast",
            "master_seed": config.seed,
            "per_hour": config.per_hour,
            "workers": config.workers,
            "serve": {
                "chunk_hours": config.chunk_hours,
                "committed_hours": self.cursor,
                "resumed_hours": self.resumed_hours,
                "completed": (
                    final and not self.indefinite
                    and self.cursor >= config.hours
                ),
                "chain": self.chunks.chain_digest(),
                "indefinite": self.indefinite,
                "retain_hours": self.retention,
                "pruned_hours": self.chunks.pruned_hours(),
                "rolling_digest": self.rolling,
            },
        }
        dataset_info: Dict[str, Any] = {
            "fingerprint_sha256": self._fingerprint_sha256(),
            "provenance": provenance,
        }
        if digest is not None:
            dataset_info["digest"] = digest
        manifest = RunManifest(
            run_id=self.run_id,
            command="serve",
            argv=self.argv,
            config={
                **config.identity_config(),
                "workers": config.workers,
                "chunk_hours": config.chunk_hours,
            },
            engine="fast",
            git_rev=_git_revision(),
            created_unix=self._created_unix,
            timings={
                "wall_seconds": self._monotonic() - self._started_monotonic,
            },
            metrics=obs.registry().dump_state(),
            dataset=dataset_info,
        )
        try:
            self.store.write(
                manifest,
                alerts=self.detector.export() if final else None,
            )
        except OSError as exc:
            obs.logger.warning("run record not written: %s", exc)

    # -- the /status document ---------------------------------------------------

    def status_document(self) -> Dict[str, Any]:
        """The daemon's ``/status`` body: sim-clock, cursor, ETA, lanes."""
        with self._state_lock:
            state = self._state
            cursor = self.cursor
            chunks_committed = self.chunks_committed
            lanes = [list(lane) for lane in self._lanes]
            sim_seconds = self._sim_seconds
            sim_hours = self._sim_hours_done
        config = self.config
        rate = (sim_hours / sim_seconds) if sim_seconds > 0 else None
        if self.indefinite:
            eta = None
        else:
            remaining = max(0, config.hours - cursor)
            eta = (remaining / rate) if rate else None
        return {
            "run_id": self.run_id,
            "state": state,
            "engine": "fast",
            "hours_total": None if self.indefinite else config.hours,
            "epoch_hours": self.epoch_hours,
            "committed_hours": cursor,
            "sim_clock_hour": cursor,
            "resumed_hours": self.resumed_hours,
            "chunk_hours": config.chunk_hours,
            "chunks_committed": chunks_committed,
            "chain": self.chunks.chain_digest(),
            "rolling_digest": self.rolling,
            "workers": config.workers,
            "lanes": lanes,
            "sim_hours_per_second": rate,
            "eta_seconds": eta,
            "throttle_seconds": config.throttle_seconds,
            "stop_requested": self.coordinator.stop_requested(),
            "retention": {
                "retain_hours": self.retention,
                "pruned_chunks": self._pruned_chunks,
                "pruned_hours": self.chunks.pruned_hours(),
            } if self.retention is not None else None,
        }
