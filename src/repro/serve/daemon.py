"""The ``repro serve`` daemon: simulate, commit, detect, serve -- repeat.

:class:`ServeDaemon` drives the existing columnar/parallel engine in
sim-time chunks of ``chunk_hours`` toward a fixed horizon.  After each
chunk it:

1. **commits** the chunk's count arrays durably through
   :class:`~repro.obs.runstore.chunks.ChunkStore` (npz + digest-chained
   manifest under ``runs/<id>/chunks/``), *then*
2. **merges** them into the in-memory dataset, and
3. **feeds** the streaming :class:`~repro.obs.online.OnlineDetector`
   one synthetic ``hour_stats`` event per simulated hour -- the same
   per-entity vectors the columnar engine emits on the telemetry bus,
   recomputed from the committed arrays (pure reads; the digest cannot
   be perturbed).

Because every hour draws from its own derived RNG stream, any committed
prefix is bit-identical to the same hours of a batch run -- so a daemon
killed at an arbitrary point and resumed (``--resume RUN``) replays the
committed chunks into a fresh dataset + detector and continues from the
cursor, finishing with the same final digest *and* the same alert
stream as an uninterrupted run.

**Identity.** The run id is content-addressed over the *plan* (hours,
per_hour, seed, fault) rather than the result -- the daemon must be
discoverable and resumable before the result exists.  The manifest is
written at start and refreshed per chunk (progress under
``dataset.provenance.serve``), then finalized with the dataset digest
and the alert stream at shutdown.

The HTTP surface (:class:`~repro.obs.live.server.MetricsServer`) serves
``/healthz``, ``/status`` (sim-clock, chunk cursor, ETA, worker lanes),
``/metrics``, ``/alerts``, ``/episodes``, ``/blame`` and ``/runs``
throughout.  SIGTERM/SIGINT set the
:class:`~repro.obs.live.server.ShutdownCoordinator` flag; the loop
notices at the next chunk boundary, commits what is in flight, and
shuts down gracefully.
"""

from __future__ import annotations

import hashlib
import shutil
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.dataset import MeasurementDataset
from repro.obs.live.server import DEFAULT_HOST, MetricsServer, ShutdownCoordinator
from repro.obs.online.detector import OnlineDetector
from repro.obs.runstore.chunks import ChunkStore
from repro.obs.runstore.manifest import RunManifest, canonical_json, compute_run_id
from repro.obs.runstore.store import (
    RunStore,
    _git_revision,
    resolve_runs_dir,
    runs_index,
)
from repro.world.faults import FaultGenerator
from repro.world.outcome_model import AccessConfig
from repro.world.parallel import plan_shards, run_block
from repro.world.rng import RNGRegistry
from repro.world.simulator import MonthSimulator

#: Identity schema for serve run ids (the *plan*, not the result).
SERVE_SCHEMA = "repro.serve/1"

#: Default sim-hours simulated (and committed) per chunk.
DEFAULT_CHUNK_HOURS = 6


@dataclass(frozen=True)
class ServeConfig:
    """Everything that defines one serve run (and its identity)."""

    hours: int = 744
    per_hour: int = 4
    seed: int = 20050101
    fault: Optional[str] = None
    chunk_hours: int = DEFAULT_CHUNK_HOURS
    workers: int = 1
    port: int = 0
    host: str = DEFAULT_HOST
    throttle_seconds: float = 0.0
    runs_dir: Optional[str] = None

    def identity_config(self) -> Dict[str, Any]:
        """The fields that affect *results* (digest-relevant only).

        ``chunk_hours``, worker count, and the serving knobs are pure
        execution detail -- any split of the same plan produces the
        same dataset, so they must not change the run id.
        """
        return {
            "hours": self.hours,
            "per_hour": self.per_hour,
            "seed": self.seed,
            "fault": self.fault,
        }

    def stored_config(self) -> Dict[str, Any]:
        """What the chunk manifest pins for resume compatibility."""
        return {**self.identity_config(), "chunk_hours": self.chunk_hours}


def serve_run_id(config: ServeConfig) -> str:
    """Content-address a serve plan into its run id."""
    return compute_run_id({
        "schema": SERVE_SCHEMA,
        "command": "serve",
        "config": config.identity_config(),
    })


def hour_entity_stats_from_block(
    arrays: Dict[str, np.ndarray], t: int
) -> Dict[str, list]:
    """One hour's per-entity stats from committed block arrays.

    Mirrors :func:`repro.world.columnar._hour_entity_stats` exactly --
    same failure-field sum, same sparse TCP triples in the same
    row-major order -- but reads hour ``t`` of ``(client, site, hour)``
    block arrays instead of staged hour planes, so the daemon can feed
    the detector from what it just committed (and a resume can feed it
    from what it replays, producing the identical alert stream).
    """
    trans = arrays["transactions"][:, :, t]
    failures = np.zeros(trans.shape, dtype=np.int64)
    for name in (
        "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures",
    ):
        failures += arrays[name][:, :, t]
    tcp = np.zeros(trans.shape, dtype=np.int64)
    for name in ("tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous"):
        tcp += arrays[name][:, :, t]
    ci, si = np.nonzero(tcp)
    return {
        "ct": [int(v) for v in trans.sum(axis=1, dtype=np.int64)],
        "cf": [int(v) for v in failures.sum(axis=1)],
        "st": [int(v) for v in trans.sum(axis=0, dtype=np.int64)],
        "sf": [int(v) for v in failures.sum(axis=0)],
        "tcp": [[int(c), int(s), int(tcp[c, s])] for c, s in zip(ci, si)],
    }


class ServeError(RuntimeError):
    """The daemon cannot start (conflicting state, bad resume target)."""


class ServeDaemon:
    """One serve run: build world, loop chunks, serve the read API."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.perf_counter,
        chunk_callback: Optional[Callable[..., None]] = None,
        argv: Optional[List[str]] = None,
    ) -> None:
        self.config = config
        self.run_id = serve_run_id(config)
        self.store = RunStore(resolve_runs_dir(config.runs_dir))
        self.chunks = ChunkStore(self.store.run_dir(self.run_id))
        self.detector = OnlineDetector()
        self.coordinator = ShutdownCoordinator()
        #: Called after every committed chunk with (daemon, entry) --
        #: the test hook that requests a stop at a chosen boundary.
        self.chunk_callback = chunk_callback
        self.argv = list(argv or [])
        self._clock = clock
        self._monotonic = monotonic
        self._state_lock = threading.Lock()
        self._state = "initialized"
        self._lanes: List[List[int]] = []
        self._sim_seconds = 0.0
        self._sim_hours_done = 0
        self.cursor = 0
        self.resumed_hours = 0
        self.chunks_committed = 0
        self._created_unix = clock()
        self._started_monotonic = monotonic()

        self.world = None
        self.truth = None
        self.simulator: Optional[MonthSimulator] = None
        self.dataset: Optional[MeasurementDataset] = None
        self.server = MetricsServer(
            config.port,
            host=config.host,
            detector=self.detector,
            status_provider=self.status_document,
            runs_provider=lambda: runs_index(self.store),
        )

    # -- construction -----------------------------------------------------------

    def _build_world(self) -> None:
        """Mirror ``simulate_default_month`` exactly (digest equality)."""
        from repro.world.defaults import build_default_world

        config = self.config
        self.world = build_default_world(hours=config.hours)
        access = AccessConfig(per_hour=config.per_hour)
        rngs = RNGRegistry(config.seed)
        truth = FaultGenerator(self.world, None, rngs.fork("faults")).generate()
        if config.fault:
            from repro.world.scenarios import parse_fault_spec

            truth = parse_fault_spec(config.fault)(self.world, truth)
        self.truth = truth
        self.simulator = MonthSimulator(
            self.world, access=access, rngs=rngs, truth=truth
        )
        self.dataset = MeasurementDataset(self.world)

    def _fingerprint_sha256(self) -> str:
        return hashlib.sha256(
            canonical_json(self.dataset.fingerprint()).encode("utf-8")
        ).hexdigest()

    def prepare(self, resume: bool = False, fresh: bool = False) -> None:
        """Build the world and reconcile with any committed chunks.

        ``fresh`` discards previously committed chunks; ``resume``
        replays them into the dataset *and* the detector (identical
        ``hour_stats`` sequence => identical alert stream) and moves the
        cursor.  Committed chunks present with neither flag is an error:
        silently overwriting durable work would be worse than asking.
        """
        self._build_world()
        if fresh and self.chunks.exists():
            shutil.rmtree(self.chunks.chunks_dir, ignore_errors=True)
            self.chunks = ChunkStore(self.store.run_dir(self.run_id))
        self.detector.update({
            "type": "run_start",
            "hours": self.config.hours,
            "clients": [c.name for c in self.world.clients],
            "servers": [w.name for w in self.world.websites],
        })
        fingerprint = self._fingerprint_sha256()
        if self.chunks.exists():
            stored = self.chunks.config()
            if stored != self.config.stored_config():
                raise ServeError(
                    f"run {self.run_id} has committed chunks under a "
                    f"different configuration ({stored}); use --fresh to "
                    "discard them"
                )
            manifest = self.chunks.load()
            if manifest.get("fingerprint_sha256") != fingerprint:
                raise ServeError(
                    f"run {self.run_id}: world fingerprint changed since "
                    "chunks were committed (code drift?); use --fresh"
                )
            committed = self.chunks.committed_hours()
            if committed and not resume:
                raise ServeError(
                    f"run {self.run_id} already has {committed} committed "
                    f"hour(s); continue with --resume {self.run_id} or "
                    "discard with --fresh"
                )
            for entry, arrays in self.chunks.replay():
                h0, h1 = int(entry["hour_start"]), int(entry["hour_stop"])
                self.dataset.merge(arrays, (h0, h1))
                self._feed_detector(arrays, h0, h1)
                self.cursor = h1
            self.resumed_hours = self.cursor
            if self.resumed_hours:
                obs.logger.info(
                    "resumed %d committed hour(s) of run %s",
                    self.resumed_hours, self.run_id,
                )
        else:
            self.chunks.initialize(
                self.config.stored_config(), fingerprint, run_id=self.run_id
            )
        self._state = "prepared"

    # -- the chunk loop ---------------------------------------------------------

    def _feed_detector(
        self, arrays: Dict[str, np.ndarray], hour_start: int, hour_stop: int
    ) -> None:
        for t in range(hour_stop - hour_start):
            self.detector.update({
                "type": "hour_stats",
                "hour": hour_start + t,
                **hour_entity_stats_from_block(arrays, t),
            })

    def request_stop(self) -> None:
        """Programmatic graceful stop (same path as SIGTERM)."""
        self.coordinator.request_stop()

    def run(
        self, announce: Optional[Callable[[int], None]] = None
    ) -> Dict[str, Any]:
        """Serve until the horizon or a stop request; returns a summary.

        ``announce(port)`` is called once the HTTP server is bound (the
        CLI prints the endpoints).  Returns ``{"run_id", "completed",
        "committed_hours", "hours", "digest", "chain"}`` -- ``digest``
        only when the horizon was reached (computing it mid-run would
        describe a dataset no batch run produces).
        """
        if self._state != "prepared":
            raise ServeError("run() before prepare()")
        config = self.config
        signals_installed = self.coordinator.install()
        if not signals_installed:
            obs.logger.info(
                "not on the main thread; graceful shutdown via "
                "request_stop() only"
            )
        self.server.start()
        if announce is not None:
            announce(self.server.port)
        self._state = "running"
        self._write_manifest(final=False)
        try:
            while (
                self.cursor < config.hours
                and not self.coordinator.stop_requested()
            ):
                h0 = self.cursor
                h1 = min(h0 + config.chunk_hours, config.hours)
                with self._state_lock:
                    self._lanes = [
                        [a, b] for a, b in (
                            (h0 + s0, h0 + s1)
                            for s0, s1 in plan_shards(
                                h1 - h0, max(1, config.workers)
                            )
                        )
                    ]
                chunk_started = self._monotonic()
                with obs.span("serve.chunk", hour_start=h0, hour_stop=h1):
                    arrays = run_block(
                        self.simulator, h0, h1, workers=config.workers
                    )
                    entry = self.chunks.commit(h0, h1, arrays)
                    self.dataset.merge(arrays, (h0, h1))
                    self._feed_detector(arrays, h0, h1)
                with self._state_lock:
                    self.cursor = h1
                    self.chunks_committed += 1
                    self._sim_seconds += self._monotonic() - chunk_started
                    self._sim_hours_done += h1 - h0
                    self._lanes = []
                obs.logger.info(
                    "chunk [%d, %d) committed (chain %s)",
                    h0, h1, entry["chain"][:16],
                )
                self._write_manifest(final=False)
                if self.chunk_callback is not None:
                    self.chunk_callback(self, entry)
                if (
                    config.throttle_seconds > 0
                    and self.cursor < config.hours
                ):
                    # An interruptible sleep: a stop request (signal or
                    # programmatic) wakes it immediately.
                    self.coordinator.wait(config.throttle_seconds)
        finally:
            completed = self.cursor >= config.hours
            with self._state_lock:
                self._state = "finished" if completed else "stopped"
            digest = self.dataset.digest() if completed else None
            self._write_manifest(final=True, digest=digest)
            self.server.stop()
            if signals_installed:
                self.coordinator.restore()
        return {
            "run_id": self.run_id,
            "completed": completed,
            "committed_hours": self.cursor,
            "hours": config.hours,
            "digest": digest,
            "chain": self.chunks.chain_digest(),
        }

    # -- the run record ---------------------------------------------------------

    def _write_manifest(
        self, final: bool, digest: Optional[str] = None
    ) -> None:
        """Write/refresh the run manifest (alert stream only on final).

        The run id is the *plan* address computed up front, so
        ``seal()`` is deliberately not called -- interrupted and
        completed invocations of the same plan share one run directory,
        which is exactly what makes ``--resume RUN`` resolvable.
        """
        config = self.config
        provenance = {
            "engine": "fast",
            "master_seed": config.seed,
            "per_hour": config.per_hour,
            "workers": config.workers,
            "serve": {
                "chunk_hours": config.chunk_hours,
                "committed_hours": self.cursor,
                "resumed_hours": self.resumed_hours,
                "completed": final and self.cursor >= config.hours,
                "chain": self.chunks.chain_digest(),
            },
        }
        dataset_info: Dict[str, Any] = {
            "fingerprint_sha256": self._fingerprint_sha256(),
            "provenance": provenance,
        }
        if digest is not None:
            dataset_info["digest"] = digest
        manifest = RunManifest(
            run_id=self.run_id,
            command="serve",
            argv=self.argv,
            config={
                **config.identity_config(),
                "workers": config.workers,
                "chunk_hours": config.chunk_hours,
            },
            engine="fast",
            git_rev=_git_revision(),
            created_unix=self._created_unix,
            timings={
                "wall_seconds": self._monotonic() - self._started_monotonic,
            },
            metrics=obs.registry().dump_state(),
            dataset=dataset_info,
        )
        try:
            self.store.write(
                manifest,
                alerts=self.detector.export() if final else None,
            )
        except OSError as exc:
            obs.logger.warning("run record not written: %s", exc)

    # -- the /status document ---------------------------------------------------

    def status_document(self) -> Dict[str, Any]:
        """The daemon's ``/status`` body: sim-clock, cursor, ETA, lanes."""
        with self._state_lock:
            state = self._state
            cursor = self.cursor
            chunks_committed = self.chunks_committed
            lanes = [list(lane) for lane in self._lanes]
            sim_seconds = self._sim_seconds
            sim_hours = self._sim_hours_done
        config = self.config
        rate = (sim_hours / sim_seconds) if sim_seconds > 0 else None
        remaining = max(0, config.hours - cursor)
        return {
            "run_id": self.run_id,
            "state": state,
            "engine": "fast",
            "hours_total": config.hours,
            "committed_hours": cursor,
            "sim_clock_hour": cursor,
            "resumed_hours": self.resumed_hours,
            "chunk_hours": config.chunk_hours,
            "chunks_committed": chunks_committed,
            "chain": self.chunks.chain_digest(),
            "workers": config.workers,
            "lanes": lanes,
            "sim_hours_per_second": rate,
            "eta_seconds": (remaining / rate) if rate else None,
            "throttle_seconds": config.throttle_seconds,
            "stop_requested": self.coordinator.stop_requested(),
        }
