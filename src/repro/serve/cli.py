"""``repro serve``: the CLI front of the continuous simulation daemon.

Start a fresh run::

    repro serve --hours 744 --chunk-hours 6 --port 9470 \
        --fault server:berkeley.edu:24-48:0.8

The daemon prints ``serve run: <id>`` up front, announces the HTTP
endpoints on stderr, and simulates chunk by chunk until the horizon.
SIGTERM/SIGINT stop it gracefully at the next chunk boundary (the
in-flight chunk is committed first).  Continue an interrupted run::

    repro serve --resume <id-or-prefix>

Resume rebuilds the configuration from the run's own chunk manifest --
the simulation flags do not need to be repeated and cannot drift.  On
reaching the horizon the daemon prints ``dataset digest: ...`` in the
same format as ``repro simulate``, so the kill-and-resume determinism
check is a plain line comparison.

Long-horizon runs add ``--retain-hours N`` (rolling retention: old
chunk payloads are pruned, the manifest chain and a rolling dataset
digest are kept forever) and ``--hours 0`` (indefinite horizon over a
periodic 744-hour epoch; requires retention)::

    repro serve --hours 0 --retain-hours 168 --port 9470
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.obs.runstore.store import RunStore, RunStoreError, resolve_runs_dir


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the serve-specific options (sim flags come from the
    shared option group the main parser mounts)."""
    parser.add_argument(
        "--chunk-hours", type=int, default=argparse.SUPPRESS, metavar="N",
        help="sim-hours simulated and committed per chunk (default 6); "
        "execution detail only -- any value yields the same digest",
    )
    parser.add_argument(
        "--port", type=int, default=argparse.SUPPRESS, metavar="PORT",
        help="HTTP API port on 127.0.0.1 (default 0: ephemeral, "
        "announced on stderr)",
    )
    parser.add_argument(
        "--resume", metavar="RUN", default=argparse.SUPPRESS,
        help="continue an interrupted serve run (id, unique prefix, or "
        "'latest'); configuration is restored from the run itself",
    )
    parser.add_argument(
        "--fresh", action="store_true", default=argparse.SUPPRESS,
        help="discard any previously committed chunks for this "
        "configuration and start over",
    )
    parser.add_argument(
        "--throttle", type=float, default=argparse.SUPPRESS,
        metavar="SECONDS",
        help="sleep between chunks (default 0) -- paces the daemon so "
        "mid-run scrapes and kill tests have a window; interruptible",
    )
    parser.add_argument(
        "--retain-hours", type=int, default=argparse.SUPPRESS,
        metavar="N",
        help="rolling retention: keep only the last N sim-hours of "
        "chunk payloads on disk (the digest-chained manifest and the "
        "rolling dataset digest are kept forever); required for "
        "--hours 0 (indefinite); execution detail only -- does not "
        "change the run id or any digest",
    )


def _resume_config(args, ref: str):
    """Rebuild a ServeConfig from an interrupted run's chunk manifest."""
    from repro.obs.runstore.chunks import ChunkStore
    from repro.serve.daemon import ServeConfig

    store = RunStore(resolve_runs_dir(getattr(args, "runs_dir", None)))
    run_id = store.resolve(ref)
    chunks = ChunkStore(store.run_dir(run_id))
    if not chunks.exists():
        raise RunStoreError(
            f"run {run_id} has no committed chunks (not a serve run?)"
        )
    stored = chunks.config()
    retain = getattr(args, "retain_hours", None)
    if retain is None:
        # No flag on the resume line: the run's own recorded retention
        # policy carries over (an indefinite run must stay prunable).
        record = chunks.retention()
        if record is not None:
            retain = record.get("retain_hours")
    return run_id, ServeConfig(
        hours=int(stored["hours"]),
        per_hour=int(stored["per_hour"]),
        seed=int(stored["seed"]),
        fault=stored.get("fault"),
        chunk_hours=int(stored.get("chunk_hours") or 6),
        workers=_requested_workers(args),
        port=int(getattr(args, "port", 0) or 0),
        throttle_seconds=float(getattr(args, "throttle", 0.0) or 0.0),
        runs_dir=getattr(args, "runs_dir", None),
        retain_hours=int(retain) if retain is not None else None,
    )


def _requested_workers(args) -> int:
    workers = getattr(args, "workers", None)
    if workers is None:
        return 1
    if workers < 1:
        raise SystemExit(
            f"repro: error: --workers must be >= 1, got {workers}"
        )
    return int(workers)


def _fresh_config(args):
    from repro.serve.daemon import ServeConfig

    return ServeConfig(
        hours=args.hours,
        per_hour=args.per_hour,
        seed=args.seed,
        fault=getattr(args, "fault", None),
        chunk_hours=int(getattr(args, "chunk_hours", 6) or 6),
        workers=_requested_workers(args),
        port=int(getattr(args, "port", 0) or 0),
        throttle_seconds=float(getattr(args, "throttle", 0.0) or 0.0),
        runs_dir=getattr(args, "runs_dir", None),
        retain_hours=getattr(args, "retain_hours", None),
    )


def _announce(port: Optional[int]) -> None:
    # stderr, not the logger: the scrape address must be visible (and
    # parseable) even without -v, like --serve-metrics does.
    print(
        f"serving the live API on http://127.0.0.1:{port} "
        "(/healthz /status /metrics /alerts /episodes /blame /runs "
        "/history /slo)",
        file=sys.stderr,
    )


def run(args, argv=None) -> int:
    """Dispatch a parsed ``repro serve`` invocation."""
    from repro.cli import _configure_observability
    from repro.obs.runstore.chunks import ChunkStoreError
    from repro.serve.daemon import ServeDaemon, ServeError

    _configure_observability(args)
    resume_ref = getattr(args, "resume", None)
    try:
        if resume_ref:
            expected_id, config = _resume_config(args, resume_ref)
        else:
            expected_id, config = None, _fresh_config(args)
        daemon = ServeDaemon(config, argv=list(argv or sys.argv[1:]))
        if expected_id is not None and daemon.run_id != expected_id:
            # The chunk manifest's config must reproduce the same plan
            # address; anything else means the record was tampered with
            # or written by an incompatible version.
            raise ServeError(
                f"resume target {expected_id} does not match its own "
                f"stored configuration (recomputed {daemon.run_id})"
            )
        daemon.prepare(
            resume=bool(resume_ref), fresh=bool(getattr(args, "fresh", False))
        )
    except (ServeError, ChunkStoreError, RunStoreError, ValueError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    print(f"serve run: {daemon.run_id}")
    if daemon.resumed_hours:
        print(
            f"resuming at sim-hour {daemon.resumed_hours} "
            f"({daemon.chunks.committed_hours()} committed)"
        )
    result = daemon.run(announce=_announce)
    if result["completed"]:
        # Same format as `repro simulate` -- the kill-and-resume
        # determinism check in tests/CI compares these lines.
        print(f"\ndataset digest: {result['digest']}")
        print(f"chunk chain: {result['chain']}")
        return 0
    horizon = "∞" if daemon.indefinite else str(result["hours"])
    print(
        f"\nstopped at sim-hour {result['committed_hours']} of "
        f"{horizon} (all committed chunks durable); continue "
        f"with: repro serve --resume {result['run_id']}"
    )
    if result.get("rolling"):
        # The mid-run determinism anchor: a resumed (or oracle) run
        # reaching the same hour must print the same rolling digest.
        print(f"rolling digest: {result['rolling']}")
    return 0
