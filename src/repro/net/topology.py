"""A coarse AS-level topology and path model.

The paper's BGP analysis (Section 4.6) correlates per-prefix route
withdrawals seen at Routeviews with end-to-end TCP failures.  To make that
correlation *emerge* in the simulator rather than being hard-wired, we model
the world as a set of edge ASes (one per client site / server hosting
location) attached to a small transit core.  A prefix is reachable from a
source AS when at least one of its transit attachments is announcing the
prefix; BGP instability events tear down attachments, which (a) produces
withdrawal streams at the collector and (b) fails end-to-end paths that
relied on the withdrawn attachment.

The Figure 7 scenario -- only 2 of 73 collector neighbors withdraw, yet most
web accesses fail -- corresponds to a prefix whose edge AS has exactly two
(well-used) transit attachments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.net.addressing import Prefix


class TopologyError(ValueError):
    """Raised for malformed topology operations."""


@dataclass(frozen=True)
class AutonomousSystem:
    """An AS, identified by number, optionally with a display name."""

    asn: int
    name: str = ""
    is_transit: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.asn <= 0xFFFFFFFF:
            raise TopologyError(f"ASN out of range: {self.asn}")


@dataclass
class EdgeAttachment:
    """One provider link from an edge AS to a transit AS.

    ``weight`` is the fraction of remote sources whose best path to the edge
    AS traverses this attachment (the "how many endpoints used these two
    neighbors" effect from Figure 7).
    """

    transit_asn: int
    weight: float
    up: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise TopologyError(f"attachment weight out of range: {self.weight}")


class Topology:
    """The AS graph: transit core plus edge ASes with weighted attachments."""

    def __init__(self) -> None:
        self._ases: Dict[int, AutonomousSystem] = {}
        self._attachments: Dict[int, List[EdgeAttachment]] = {}
        self._prefix_origin: Dict[Prefix, int] = {}

    # -- construction ------------------------------------------------------

    def add_transit(self, asn: int, name: str = "") -> AutonomousSystem:
        """Register a transit (core) AS."""
        as_obj = AutonomousSystem(asn=asn, name=name, is_transit=True)
        self._ases[asn] = as_obj
        return as_obj

    def add_edge(
        self,
        asn: int,
        attachments: Sequence[EdgeAttachment],
        name: str = "",
    ) -> AutonomousSystem:
        """Register an edge AS with its transit attachments.

        Attachment weights must sum to ~1 so that they can be interpreted as
        the fraction of remote paths using each attachment.
        """
        if not attachments:
            raise TopologyError("edge AS needs at least one attachment")
        total = sum(a.weight for a in attachments)
        if abs(total - 1.0) > 1e-6:
            raise TopologyError(f"attachment weights sum to {total}, expected 1.0")
        for attachment in attachments:
            if attachment.transit_asn not in self._ases:
                raise TopologyError(
                    f"unknown transit AS {attachment.transit_asn} in attachment"
                )
            if not self._ases[attachment.transit_asn].is_transit:
                raise TopologyError(
                    f"AS {attachment.transit_asn} is not a transit AS"
                )
        as_obj = AutonomousSystem(asn=asn, name=name, is_transit=False)
        self._ases[asn] = as_obj
        self._attachments[asn] = list(attachments)
        return as_obj

    def originate(self, prefix: Prefix, asn: int) -> None:
        """Record that ``asn`` originates ``prefix``."""
        if asn not in self._ases:
            raise TopologyError(f"unknown AS {asn}")
        self._prefix_origin[prefix] = asn

    # -- queries -----------------------------------------------------------

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        """The AS object for ``asn``."""
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS {asn}") from None

    def origin_of(self, prefix: Prefix) -> int:
        """The origin ASN of ``prefix``."""
        try:
            return self._prefix_origin[prefix]
        except KeyError:
            raise TopologyError(f"no origin recorded for {prefix}") from None

    def prefixes_of(self, asn: int) -> List[Prefix]:
        """All prefixes originated by ``asn``."""
        return [p for p, origin in self._prefix_origin.items() if origin == asn]

    def attachments_of(self, asn: int) -> List[EdgeAttachment]:
        """The transit attachments of an edge AS."""
        try:
            return self._attachments[asn]
        except KeyError:
            raise TopologyError(f"AS {asn} is not an edge AS") from None

    # -- reachability ------------------------------------------------------

    def up_attachments(self, asn: int) -> List[EdgeAttachment]:
        """Attachments of ``asn`` currently up."""
        return [a for a in self.attachments_of(asn) if a.up]

    def reachable_fraction(self, asn: int) -> float:
        """Fraction of remote sources that can currently reach edge AS ``asn``.

        With every attachment up this is 1.0.  When a subset is down, remote
        sources whose best path used a downed attachment are assumed to fail
        over only if *some* attachment remains up -- but convergence is not
        instant, so we return the still-valid path weight; the caller decides
        how much of the failed weight recovers within its time bin.
        """
        attachments = self.attachments_of(asn)
        return sum(a.weight for a in attachments if a.up)

    def fail_attachment(self, asn: int, transit_asn: int) -> None:
        """Tear down the edge->transit link (BGP withdrawal ensues)."""
        for attachment in self.attachments_of(asn):
            if attachment.transit_asn == transit_asn:
                attachment.up = False
                return
        raise TopologyError(f"AS {asn} has no attachment to {transit_asn}")

    def restore_attachment(self, asn: int, transit_asn: int) -> None:
        """Bring the edge->transit link back up."""
        for attachment in self.attachments_of(asn):
            if attachment.transit_asn == transit_asn:
                attachment.up = True
                return
        raise TopologyError(f"AS {asn} has no attachment to {transit_asn}")

    def restore_all(self, asn: int) -> None:
        """Bring every attachment of ``asn`` back up."""
        for attachment in self.attachments_of(asn):
            attachment.up = True

    def edge_asns(self) -> List[int]:
        """All registered edge ASNs."""
        return sorted(self._attachments)

    def transit_asns(self) -> List[int]:
        """All registered transit ASNs."""
        return sorted(a.asn for a in self._ases.values() if a.is_transit)


def build_default_core(topology: Topology, num_transit: int = 8) -> List[int]:
    """Create a default transit core of ``num_transit`` ASes.

    ASNs are drawn from the familiar 2005-era tier-1 range for readability in
    traces; returns the list of ASNs created.
    """
    if num_transit < 1:
        raise TopologyError("need at least one transit AS")
    names = [
        "ATT", "Sprint", "UUNet", "Level3", "Qwest", "ICG", "Cogent", "GBLX",
        "NTT", "Telia", "Tata", "PCCW",
    ]
    asns = []
    for i in range(num_transit):
        asn = 7000 + i
        name = names[i] if i < len(names) else f"Transit{i}"
        topology.add_transit(asn, name=name)
        asns.append(asn)
    return asns


def random_attachments(
    transit_asns: Sequence[int],
    rng: random.Random,
    count: Optional[int] = None,
) -> List[EdgeAttachment]:
    """Build a plausible multihoming profile for an edge AS.

    Most edges are dual-homed with a dominant primary provider; some are
    single-homed (these are the prefixes for which a single withdrawal kills
    reachability).
    """
    if not transit_asns:
        raise TopologyError("no transit ASes to attach to")
    if count is None:
        count = rng.choices([1, 2, 3], weights=[0.25, 0.55, 0.20])[0]
    count = min(count, len(transit_asns))
    chosen = rng.sample(list(transit_asns), count)
    raw = [rng.uniform(0.5, 1.0)] + [rng.uniform(0.05, 0.5) for _ in chosen[1:]]
    total = sum(raw)
    return [
        EdgeAttachment(transit_asn=asn, weight=w / total)
        for asn, w in zip(chosen, raw)
    ]
