"""Per-path latency models.

Latency matters to the reproduction in two places: download times recorded in
performance records (Section 3.5) and the "partial response" failure mode,
where a connection becomes so slow that the client's 60-second idle timeout
fires (Section 2.1).  We model round-trip time as a shifted log-normal, which
matches the heavy right tail of wide-area RTT distributions, with per-client-
category base parameters (dialup adds modem latency; corporate clients talk
to a nearby proxy; PlanetLab sits on fast academic networks).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LatencyParams:
    """Parameters of a shifted log-normal RTT distribution (seconds).

    ``floor`` is the propagation minimum; ``mu``/``sigma`` shape the
    log-normal queueing component added on top.
    """

    floor: float
    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.floor < 0:
            raise ValueError("negative latency floor")
        if self.sigma < 0:
            raise ValueError("negative sigma")

    def mean(self) -> float:
        """Analytic mean of the distribution."""
        return self.floor + math.exp(self.mu + self.sigma**2 / 2.0)


#: Baseline RTT parameters per client category.  Values are loosely drawn
#: from the 2005-era access technologies the paper's clients used: PlanetLab
#: on academic backbones, dialup with ~150ms modem latency, broadband DSL and
#: cable, and corporate clients whose first hop is an on-site proxy.
CATEGORY_LATENCY = {
    "PL": LatencyParams(floor=0.020, mu=math.log(0.030), sigma=0.6),
    "DU": LatencyParams(floor=0.150, mu=math.log(0.080), sigma=0.7),
    "BB": LatencyParams(floor=0.030, mu=math.log(0.035), sigma=0.6),
    "CN": LatencyParams(floor=0.005, mu=math.log(0.010), sigma=0.5),
}

#: Extra one-way latency added for intercontinental paths, seconds.
INTERCONTINENTAL_EXTRA = 0.120


class LatencyModel:
    """Samples RTTs for a (client category, destination region) pair.

    >>> model = LatencyModel("PL", random.Random(1))
    >>> 0.02 <= model.sample_rtt() < 5.0
    True
    """

    def __init__(
        self,
        category: str,
        rng: random.Random,
        params: Optional[LatencyParams] = None,
        intercontinental: bool = False,
    ) -> None:
        if params is None:
            try:
                params = CATEGORY_LATENCY[category]
            except KeyError:
                raise ValueError(f"unknown client category {category!r}") from None
        self.category = category
        self.params = params
        self.intercontinental = intercontinental
        self._rng = rng

    def sample_rtt(self) -> float:
        """One RTT sample in seconds."""
        queueing = self._rng.lognormvariate(self.params.mu, self.params.sigma)
        rtt = self.params.floor + queueing
        if self.intercontinental:
            rtt += INTERCONTINENTAL_EXTRA
        return rtt

    def sample_dns_lookup_time(self, hops: int = 1) -> float:
        """A DNS lookup duration: one RTT per resolution hop plus server time."""
        if hops < 1:
            raise ValueError("a lookup takes at least one hop")
        total = 0.0
        for _ in range(hops):
            total += self.sample_rtt() + self._rng.uniform(0.001, 0.010)
        return total

    def sample_transfer_time(self, num_bytes: int, bandwidth_bps: float) -> float:
        """Time to move ``num_bytes`` at ``bandwidth_bps``, plus one RTT."""
        if num_bytes < 0:
            raise ValueError("negative byte count")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        return self.sample_rtt() + (num_bytes * 8.0) / bandwidth_bps


#: Downstream bandwidth per category in bits/second.  The paper notes BB
#: links were 768/128 Kbps or better; dialup V.90 peaks near 50 Kbps.
CATEGORY_BANDWIDTH_BPS = {
    "PL": 10_000_000.0,
    "DU": 45_000.0,
    "BB": 1_500_000.0,
    "CN": 10_000_000.0,
}


def bandwidth_for_category(category: str) -> float:
    """Downstream bandwidth for a client category, bits/second."""
    try:
        return CATEGORY_BANDWIDTH_BPS[category]
    except KeyError:
        raise ValueError(f"unknown client category {category!r}") from None
