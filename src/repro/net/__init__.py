"""Network substrate: addressing, packets, latency, loss, and topology.

This package provides the low-level building blocks shared by the DNS, TCP,
HTTP, and BGP substrates:

* :mod:`repro.net.addressing` -- IPv4 addresses and CIDR prefixes.
* :mod:`repro.net.packet` -- a lightweight packet model used by the
  trace-capture machinery (the stand-in for tcpdump/windump).
* :mod:`repro.net.latency` -- per-client-category latency models.
* :mod:`repro.net.loss` -- Bernoulli and Gilbert-Elliott (bursty) loss models.
* :mod:`repro.net.topology` -- a coarse AS-level path model used to couple
  BGP reachability with end-to-end connectivity.
"""

from repro.net.addressing import IPv4Address, Prefix
from repro.net.latency import LatencyModel
from repro.net.loss import BernoulliLossModel, GilbertElliottLossModel
from repro.net.packet import Packet, PacketDirection

__all__ = [
    "IPv4Address",
    "Prefix",
    "LatencyModel",
    "BernoulliLossModel",
    "GilbertElliottLossModel",
    "Packet",
    "PacketDirection",
]
