"""IPv4 addresses and CIDR prefixes.

The simulator and the BGP analysis both key off IP addresses and the
prefixes that cover them (Section 3.6 of the paper maps the 203 client and
replica addresses onto 137 BGP prefixes).  We implement a small, fast,
dependency-free address model rather than using :mod:`ipaddress` because we
need hashable, slot-based objects that are cheap to create millions of times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as a 32-bit integer.

    >>> IPv4Address.parse("10.0.0.1").value
    167772161
    >>> str(IPv4Address.parse("10.0.0.1"))
    '10.0.0.1'
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation into an address."""
        return cls(_parse_dotted_quad(text))

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def slash24(self) -> "Prefix":
        """The /24 prefix containing this address.

        Used by the replica analysis (Section 4.5): replicas on the same /24
        are prone to correlated, "total replica" failures.
        """
        return Prefix(self.value & 0xFFFFFF00, 24)

    def within(self, prefix: "Prefix") -> bool:
        """True if this address is covered by ``prefix``."""
        return prefix.contains(self)


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix (network address plus mask length).

    The network address is canonicalized: host bits must be zero.

    >>> p = Prefix.parse("192.168.0.0/16")
    >>> p.contains(IPv4Address.parse("192.168.4.7"))
    True
    >>> p.contains(IPv4Address.parse("10.0.0.1"))
    False
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & ~self.netmask():
            raise AddressError(
                f"host bits set in prefix {IPv4Address(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        if "/" not in text:
            raise AddressError(f"missing '/length' in prefix {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"non-numeric prefix length in {text!r}")
        return cls(_parse_dotted_quad(addr_text), int(len_text))

    def netmask(self) -> int:
        """The prefix's netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains(self, address: IPv4Address) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (address.value & self.netmask()) == self.network

    def covers(self, other: "Prefix") -> bool:
        """True if this prefix covers ``other`` (is equal or less specific)."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask()) == self.network

    def size(self) -> int:
        """Number of addresses in the prefix."""
        return 1 << (32 - self.length)

    def first_address(self) -> IPv4Address:
        """Lowest address in the prefix."""
        return IPv4Address(self.network)

    def nth_address(self, n: int) -> IPv4Address:
        """The n-th address in the prefix (0-indexed)."""
        if not 0 <= n < self.size():
            raise AddressError(f"index {n} outside /{self.length} prefix")
        return IPv4Address(self.network + n)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate over every address in the prefix (small prefixes only)."""
        for offset in range(self.size()):
            yield IPv4Address(self.network + offset)

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.length}"


class PrefixTable:
    """A longest-prefix-match table mapping prefixes to arbitrary values.

    The BGP correlation analysis needs to find, for each client or replica
    address, the covering announced prefix(es) (Section 3.6, footnote 2:
    some addresses are covered by two prefixes and both are considered).
    A linear grouped-by-length scan is ample at our table sizes (~137
    prefixes in the default world).
    """

    def __init__(self) -> None:
        self._by_length: dict = {}

    def add(self, prefix: Prefix, value: object) -> None:
        """Insert ``prefix`` -> ``value``; later inserts overwrite."""
        self._by_length.setdefault(prefix.length, {})[prefix.network] = (prefix, value)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())

    def lookup(self, address: IPv4Address) -> Optional[object]:
        """Longest-prefix match; returns the stored value or None."""
        match = self.lookup_prefix(address)
        if match is None:
            return None
        return match[1]

    def lookup_prefix(self, address: IPv4Address):
        """Longest-prefix match; returns ``(prefix, value)`` or None."""
        for length in sorted(self._by_length, reverse=True):
            netmask = Prefix(0, length).netmask() if length else 0
            entry = self._by_length[length].get(address.value & netmask)
            if entry is not None:
                return entry
        return None

    def all_matches(self, address: IPv4Address) -> List:
        """Every ``(prefix, value)`` covering the address, most specific first.

        Mirrors the paper's handling of addresses covered by two prefixes:
        both are tracked, to cover withdrawal/filtering of the more specific
        one.
        """
        matches = []
        for length in sorted(self._by_length, reverse=True):
            netmask = Prefix(0, length).netmask() if length else 0
            entry = self._by_length[length].get(address.value & netmask)
            if entry is not None:
                matches.append(entry)
        return matches

    def items(self):
        """Iterate over all ``(prefix, value)`` pairs."""
        for bucket in self._by_length.values():
            yield from bucket.values()


class AddressAllocator:
    """Deterministically allocates non-overlapping prefixes and addresses.

    The world builder uses one allocator per run so that client and replica
    addresses are stable for a given seed, which keeps every downstream
    analysis reproducible.
    """

    def __init__(self, seed: int = 0, base_octet: int = 10) -> None:
        self._rng = random.Random(seed)
        self._next_block = (base_octet << 24) + (1 << 16)
        self._allocated: List[Prefix] = []

    def allocate_prefix(self, length: int = 24) -> Prefix:
        """Allocate the next free prefix of the given length."""
        if not 8 <= length <= 30:
            raise AddressError(f"unsupported allocation length /{length}")
        size = 1 << (32 - length)
        # Round the cursor up to the prefix's natural alignment.
        network = (self._next_block + size - 1) & ~(size - 1)
        self._next_block = network + size
        if self._next_block > 0xFFFFFFFF:
            raise AddressError("address space exhausted")
        prefix = Prefix(network, length)
        self._allocated.append(prefix)
        return prefix

    def allocate_address(self, prefix: Prefix) -> IPv4Address:
        """Pick a pseudo-random host address inside ``prefix``.

        Avoids the network (.0) and broadcast-like last address.
        """
        if prefix.size() <= 2:
            return prefix.first_address()
        offset = self._rng.randrange(1, prefix.size() - 1)
        return prefix.nth_address(offset)

    @property
    def allocated(self) -> Sequence[Prefix]:
        """All prefixes handed out so far, in order."""
        return tuple(self._allocated)


def group_by_slash24(addresses: Iterable[IPv4Address]) -> dict:
    """Group addresses by their /24 prefix.

    Returns a mapping ``Prefix -> [IPv4Address, ...]``; used by the replica
    analysis to detect same-subnet replica sets (Section 4.5).
    """
    groups: dict = {}
    for address in addresses:
        groups.setdefault(address.slash24(), []).append(address)
    return groups
