"""Packet loss models.

Two observations in the paper drive the need for a *bursty* loss model
rather than independent drops:

* Section 4.1.3: packet loss rate correlates only weakly (r = 0.19) with
  transaction failure, partly because failures are driven by loss *episodes*.
* Section 5: "the burstiness of packet loss matters since the loss of
  multiple SYN or SYN-ACK packets within a short period could prevent TCP
  connection establishment."

We therefore provide a classic two-state Gilbert-Elliott model (good state
with near-zero loss, bad state with heavy loss) alongside a simple Bernoulli
model for tests and calibration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class LossModel:
    """Interface: decide per-packet whether it is dropped."""

    def should_drop(self) -> bool:
        """Return True if the next packet is lost."""
        raise NotImplementedError

    def steady_state_loss_rate(self) -> float:
        """The model's long-run average loss probability."""
        raise NotImplementedError


class BernoulliLossModel(LossModel):
    """Independent per-packet loss with fixed probability."""

    def __init__(self, loss_rate: float, rng: random.Random) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        self.loss_rate = loss_rate
        self._rng = rng

    def should_drop(self) -> bool:
        return self._rng.random() < self.loss_rate

    def steady_state_loss_rate(self) -> float:
        return self.loss_rate


@dataclass(frozen=True)
class GilbertElliottParams:
    """Transition and emission probabilities for the two-state chain.

    ``p_good_to_bad``/``p_bad_to_good`` are per-packet transition
    probabilities; ``loss_good``/``loss_bad`` are the drop probabilities in
    each state.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float
    loss_bad: float

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        if self.p_good_to_bad + self.p_bad_to_good == 0:
            raise ValueError("chain must be able to move between states")

    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)


#: A mild background channel: ~0.7% average loss with occasional bursts.
DEFAULT_BACKGROUND = GilbertElliottParams(
    p_good_to_bad=0.002, p_bad_to_good=0.25, loss_good=0.002, loss_bad=0.6
)

#: A channel in the middle of a connectivity episode: mostly bad.
EPISODE_CHANNEL = GilbertElliottParams(
    p_good_to_bad=0.4, p_bad_to_good=0.05, loss_good=0.05, loss_bad=0.95
)


class GilbertElliottLossModel(LossModel):
    """Two-state bursty loss process.

    >>> model = GilbertElliottLossModel(DEFAULT_BACKGROUND, random.Random(7))
    >>> drops = sum(model.should_drop() for _ in range(10000))
    >>> 0 < drops < 1000
    True
    """

    GOOD = 0
    BAD = 1

    def __init__(self, params: GilbertElliottParams, rng: random.Random) -> None:
        self.params = params
        self._rng = rng
        # Start from the stationary distribution so short simulations are
        # unbiased.
        self.state = (
            self.BAD
            if rng.random() < params.stationary_bad_fraction()
            else self.GOOD
        )

    def _step(self) -> None:
        if self.state == self.GOOD:
            if self._rng.random() < self.params.p_good_to_bad:
                self.state = self.BAD
        else:
            if self._rng.random() < self.params.p_bad_to_good:
                self.state = self.GOOD

    def should_drop(self) -> bool:
        self._step()
        loss = (
            self.params.loss_bad if self.state == self.BAD else self.params.loss_good
        )
        return self._rng.random() < loss

    def steady_state_loss_rate(self) -> float:
        bad = self.params.stationary_bad_fraction()
        return bad * self.params.loss_bad + (1.0 - bad) * self.params.loss_good

    def force_state(self, state: int) -> None:
        """Pin the chain into GOOD or BAD (used by fault injection)."""
        if state not in (self.GOOD, self.BAD):
            raise ValueError(f"unknown state {state}")
        self.state = state


def syn_exchange_success_probability(
    loss_rate: float, retries: int = 3, both_directions: bool = True
) -> float:
    """Probability a SYN handshake completes under independent loss.

    A handshake attempt needs the SYN *and* the SYN-ACK to survive; the
    client retries the SYN ``retries`` times after the initial attempt
    (mirroring common 2005-era stacks). Used for calibrating fault-state
    failure probabilities and in tests as an analytic cross-check of the TCP
    substrate.

    >>> round(syn_exchange_success_probability(0.0), 3)
    1.0
    >>> syn_exchange_success_probability(1.0)
    0.0
    """
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss rate out of range: {loss_rate}")
    if retries < 0:
        raise ValueError("negative retry count")
    per_attempt = (1.0 - loss_rate) ** (2 if both_directions else 1)
    return 1.0 - (1.0 - per_attempt) ** (retries + 1)
