"""pcap serialization for packet traces.

The paper's raw artifact is a tcpdump/windump capture per transaction
(Section 3.4 step 4).  This module writes :class:`~repro.tcp.trace.
PacketTrace` objects as genuine libpcap files (raw-IP link type), readable
by tcpdump/tshark/wireshark, so the simulated traces can be inspected with
the same tools the authors used.  A minimal reader is provided for
round-trip tests.

Only the fields the study's post-processing uses are encoded: IPv4 + TCP
headers (addresses, ports, seq/ack, flags) and payload length (payload
bytes are zero-filled).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Union

from repro.net.addressing import IPv4Address
from repro.net.packet import Packet, PacketDirection, TCPFlag, TransportProtocol
from repro.tcp.trace import PacketTrace

#: libpcap magic (microsecond timestamps, little endian).
PCAP_MAGIC = 0xA1B2C3D4
#: Link type 101: raw IP.
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_IPV4_HEADER = struct.Struct("!BBHHHBBHII")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")


class PcapError(ValueError):
    """Raised for malformed pcap data."""


def _tcp_flags_byte(flags: TCPFlag) -> int:
    byte = 0
    if flags & TCPFlag.FIN:
        byte |= 0x01
    if flags & TCPFlag.SYN:
        byte |= 0x02
    if flags & TCPFlag.RST:
        byte |= 0x04
    if flags & TCPFlag.PSH:
        byte |= 0x08
    if flags & TCPFlag.ACK:
        byte |= 0x10
    return byte


def _flags_from_byte(byte: int) -> TCPFlag:
    flags = TCPFlag.NONE
    if byte & 0x01:
        flags |= TCPFlag.FIN
    if byte & 0x02:
        flags |= TCPFlag.SYN
    if byte & 0x04:
        flags |= TCPFlag.RST
    if byte & 0x08:
        flags |= TCPFlag.PSH
    if byte & 0x10:
        flags |= TCPFlag.ACK
    return flags


def packet_to_bytes(packet: Packet) -> bytes:
    """Encode one packet as IPv4 + TCP headers plus zero-filled payload."""
    if packet.protocol is not TransportProtocol.TCP:
        raise PcapError("only TCP packets are encodable")
    payload = b"\x00" * packet.payload_length
    tcp = _TCP_HEADER.pack(
        packet.src_port,
        packet.dst_port,
        packet.seq & 0xFFFFFFFF,
        packet.ack & 0xFFFFFFFF,
        (5 << 4),  # data offset: 5 words, no options
        _tcp_flags_byte(packet.flags),
        65535,  # window
        0,      # checksum (not computed; tools accept it)
        0,      # urgent pointer
    )
    total_length = _IPV4_HEADER.size + len(tcp) + len(payload)
    ip = _IPV4_HEADER.pack(
        (4 << 4) | 5,   # version 4, IHL 5
        0,              # DSCP/ECN
        total_length,
        0, 0,           # identification, flags/fragment
        64,             # TTL
        6,              # protocol: TCP
        0,              # header checksum (not computed)
        packet.src.value,
        packet.dst.value,
    )
    return ip + tcp + payload


def packet_from_bytes(data: bytes, timestamp: float) -> Packet:
    """Decode a raw-IP TCP packet produced by :func:`packet_to_bytes`."""
    if len(data) < _IPV4_HEADER.size + _TCP_HEADER.size:
        raise PcapError("truncated packet")
    (vihl, _, total_length, _, _, _, proto, _, src, dst) = _IPV4_HEADER.unpack(
        data[: _IPV4_HEADER.size]
    )
    if vihl >> 4 != 4:
        raise PcapError("not IPv4")
    if proto != 6:
        raise PcapError("not TCP")
    tcp_data = data[_IPV4_HEADER.size: _IPV4_HEADER.size + _TCP_HEADER.size]
    (src_port, dst_port, seq, ack, offset_byte, flags_byte, _, _, _) = (
        _TCP_HEADER.unpack(tcp_data)
    )
    header_len = _IPV4_HEADER.size + ((offset_byte >> 4) * 4)
    payload_length = max(0, total_length - header_len)
    return Packet(
        timestamp=timestamp,
        # Direction is a capture-side notion; reconstructed packets are
        # marked outbound and re-oriented by the caller if needed.
        direction=PacketDirection.OUTBOUND,
        protocol=TransportProtocol.TCP,
        src=IPv4Address(src),
        dst=IPv4Address(dst),
        src_port=src_port,
        dst_port=dst_port,
        flags=_flags_from_byte(flags_byte),
        seq=seq,
        ack=ack,
        payload_length=payload_length,
    )


def write_pcap(trace: PacketTrace, path: Union[str, Path]) -> int:
    """Write a trace to a pcap file; returns the number of packets written."""
    with Path(path).open("wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, 2, 4, 0, 0, 65535, LINKTYPE_RAW
            )
        )
        count = 0
        for packet in trace.packets:
            data = packet_to_bytes(packet)
            seconds = int(packet.timestamp)
            micros = int(round((packet.timestamp - seconds) * 1e6))
            fh.write(_RECORD_HEADER.pack(seconds, micros, len(data), len(data)))
            fh.write(data)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read the packets back from a pcap file written by :func:`write_pcap`."""
    raw = Path(path).read_bytes()
    if len(raw) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap header")
    magic, _, _, _, _, _, linktype = _GLOBAL_HEADER.unpack(
        raw[: _GLOBAL_HEADER.size]
    )
    if magic != PCAP_MAGIC:
        raise PcapError(f"bad magic {magic:#x}")
    if linktype != LINKTYPE_RAW:
        raise PcapError(f"unsupported link type {linktype}")
    packets = []
    offset = _GLOBAL_HEADER.size
    while offset < len(raw):
        if offset + _RECORD_HEADER.size > len(raw):
            raise PcapError("truncated record header")
        seconds, micros, cap_len, _ = _RECORD_HEADER.unpack(
            raw[offset: offset + _RECORD_HEADER.size]
        )
        offset += _RECORD_HEADER.size
        if offset + cap_len > len(raw):
            raise PcapError("truncated record body")
        packets.append(
            packet_from_bytes(
                raw[offset: offset + cap_len], seconds + micros / 1e6
            )
        )
        offset += cap_len
    return packets
