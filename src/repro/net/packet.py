"""A lightweight packet model for trace capture.

The paper records a packet-level trace of every transaction with
tcpdump/windump and post-processes it to (a) classify the cause of TCP
connection failure and (b) infer packet loss from retransmissions
(Section 3.5).  Our detailed engine emits :class:`Packet` objects that the
:mod:`repro.tcp.trace` capture consumes, standing in for the pcap file.

We only model the header fields the post-processing needs; payloads are
represented by their length.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.net.addressing import IPv4Address


class PacketDirection(enum.Enum):
    """Direction of a packet relative to the measuring client."""

    OUTBOUND = "outbound"  # client -> server
    INBOUND = "inbound"  # server -> client


class TransportProtocol(enum.Enum):
    """Transport protocol carried by a packet."""

    TCP = "tcp"
    UDP = "udp"


class TCPFlag(enum.IntFlag):
    """TCP header flags (subset relevant to failure classification)."""

    NONE = 0
    FIN = 1
    SYN = 2
    RST = 4
    PSH = 8
    ACK = 16


@dataclass(frozen=True)
class Packet:
    """One captured packet.

    ``timestamp`` is in seconds since the experiment epoch. ``seq`` and
    ``ack`` are absolute sequence numbers (TCP only); ``payload_length`` is
    the number of data bytes carried.
    """

    timestamp: float
    direction: PacketDirection
    protocol: TransportProtocol
    src: IPv4Address
    dst: IPv4Address
    src_port: int
    dst_port: int
    flags: TCPFlag = TCPFlag.NONE
    seq: int = 0
    ack: int = 0
    payload_length: int = 0
    annotation: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.src_port <= 65535 or not 0 <= self.dst_port <= 65535:
            raise ValueError("port out of range")
        if self.payload_length < 0:
            raise ValueError("negative payload length")

    @property
    def is_syn(self) -> bool:
        """True for a bare SYN (connection request)."""
        return bool(self.flags & TCPFlag.SYN) and not bool(self.flags & TCPFlag.ACK)

    @property
    def is_synack(self) -> bool:
        """True for a SYN+ACK (connection accept)."""
        return bool(self.flags & TCPFlag.SYN) and bool(self.flags & TCPFlag.ACK)

    @property
    def is_rst(self) -> bool:
        """True if the RST flag is set."""
        return bool(self.flags & TCPFlag.RST)

    @property
    def is_fin(self) -> bool:
        """True if the FIN flag is set."""
        return bool(self.flags & TCPFlag.FIN)

    @property
    def carries_data(self) -> bool:
        """True if the packet carries payload bytes."""
        return self.payload_length > 0

    def flow(self) -> Tuple[IPv4Address, int, IPv4Address, int]:
        """The 4-tuple identifying the packet's flow (directional)."""
        return (self.src, self.src_port, self.dst, self.dst_port)

    def canonical_flow(self) -> Tuple[IPv4Address, int, IPv4Address, int]:
        """A direction-independent flow key (sorted endpoints)."""
        a = (self.src, self.src_port)
        b = (self.dst, self.dst_port)
        lo, hi = sorted([a, b], key=lambda e: (e[0].value, e[1]))
        return (lo[0], lo[1], hi[0], hi[1])


@dataclass
class PacketBuilder:
    """Convenience factory bound to one client-server conversation.

    Keeps the endpoint addressing in one place so the TCP machinery can emit
    packets with two calls instead of ten keyword arguments.
    """

    client: IPv4Address
    server: IPv4Address
    client_port: int
    server_port: int = 80
    protocol: TransportProtocol = TransportProtocol.TCP
    _counter: int = field(default=0, repr=False)

    def outbound(
        self,
        timestamp: float,
        flags: TCPFlag = TCPFlag.NONE,
        seq: int = 0,
        ack: int = 0,
        payload_length: int = 0,
        annotation: str = "",
    ) -> Packet:
        """A client -> server packet."""
        self._counter += 1
        return Packet(
            timestamp=timestamp,
            direction=PacketDirection.OUTBOUND,
            protocol=self.protocol,
            src=self.client,
            dst=self.server,
            src_port=self.client_port,
            dst_port=self.server_port,
            flags=flags,
            seq=seq,
            ack=ack,
            payload_length=payload_length,
            annotation=annotation,
        )

    def inbound(
        self,
        timestamp: float,
        flags: TCPFlag = TCPFlag.NONE,
        seq: int = 0,
        ack: int = 0,
        payload_length: int = 0,
        annotation: str = "",
    ) -> Packet:
        """A server -> client packet."""
        self._counter += 1
        return Packet(
            timestamp=timestamp,
            direction=PacketDirection.INBOUND,
            protocol=self.protocol,
            src=self.server,
            dst=self.client,
            src_port=self.server_port,
            dst_port=self.client_port,
            flags=flags,
            seq=seq,
            ack=ack,
            payload_length=payload_length,
            annotation=annotation,
        )
