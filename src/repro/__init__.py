"""repro -- a reproduction of "A Study of End-to-End Web Access Failures"
(Padmanabhan, Ramabhadran, Agarwal, Padhye; CoNEXT 2006).

The package has two halves:

* **Substrates** (:mod:`repro.net`, :mod:`repro.dns`, :mod:`repro.tcp`,
  :mod:`repro.http`, :mod:`repro.bgp`, :mod:`repro.world`): a synthetic
  Internet -- clients, websites, resolvers, proxies, a Routeviews-style
  BGP collector -- with generative fault processes calibrated to the
  paper's measurements.
* **Analysis** (:mod:`repro.core`): the paper's contribution -- the
  failure taxonomy, episode identification, blame attribution, replica /
  similarity / spread analyses, BGP correlation, and report builders for
  every table and figure.

Quickstart::

    from repro import simulate_default_month
    from repro.core import report

    result = simulate_default_month(hours=168)  # one simulated week
    print(report.table3(result.dataset))
"""

from repro.core.dataset import MeasurementDataset
from repro.core.records import (
    DNSFailureKind,
    FailureType,
    PerformanceRecord,
    TCPFailureKind,
)
from repro.world.defaults import build_default_world
from repro.world.entities import Client, ClientCategory, Website, World
from repro.world.simulator import MonthSimulator, simulate_default_month

__version__ = "1.0.0"

__all__ = [
    "MeasurementDataset",
    "PerformanceRecord",
    "FailureType",
    "DNSFailureKind",
    "TCPFailureKind",
    "build_default_world",
    "World",
    "Client",
    "ClientCategory",
    "Website",
    "MonthSimulator",
    "simulate_default_month",
    "__version__",
]
