"""Entities of the measurement world: clients, websites, replicas, proxies.

These are pure descriptions -- the fault layer attaches behaviour to them.
The structure mirrors Tables 1 and 2 of the paper: clients carry a category
(PL/DU/CN/BB), a *site* (the co-location unit used by the similarity
analysis of Section 4.4.6), an IP address and covering prefix(es); websites
carry a region, a replica set (Section 4.5), and DNS/CDN structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.dns.message import normalize_name
from repro.net.addressing import IPv4Address, Prefix


class ClientCategory(enum.Enum):
    """The four client populations of Table 1."""

    PLANETLAB = "PL"
    DIALUP = "DU"
    CORPNET = "CN"
    BROADBAND = "BB"

    @property
    def has_packet_traces(self) -> bool:
        """Whether tcpdump/windump ran on this category (Section 3.4: not
        on BB clients; CN traces exist but only show the proxy hop)."""
        return self in (ClientCategory.PLANETLAB, ClientCategory.DIALUP)

    @property
    def behind_proxy(self) -> bool:
        """Whether accesses are forced through a caching proxy."""
        return self is ClientCategory.CORPNET


class SiteRegion(enum.Enum):
    """Coarse geography, used for latency and path modelling."""

    US = "us"
    EUROPE = "europe"
    ASIA = "asia"
    OTHER = "other"


@dataclass(frozen=True)
class Client:
    """One measurement client (or DU "virtual client", i.e. one PoP).

    ``site`` is the co-location key: clients sharing a site share last-mile
    infrastructure, LDNS, and IP prefix.  ``proxy_name`` is set for CN
    clients routed through a proxy; ``provider`` records the DU PoP's ISP.
    """

    name: str
    category: ClientCategory
    site: str
    region: SiteRegion
    address: IPv4Address
    prefixes: Tuple[Prefix, ...]
    proxy_name: Optional[str] = None
    provider: Optional[str] = None
    city: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client needs a name")
        if not self.prefixes:
            raise ValueError(f"client {self.name} needs at least one prefix")
        for prefix in self.prefixes:
            if not prefix.contains(self.address):
                raise ValueError(
                    f"client {self.name}: {self.address} not in {prefix}"
                )
    @property
    def proxied(self) -> bool:
        """True when the client's web accesses go through a proxy.

        All CN clients except SEAEXT (which sits outside the corporate
        firewall but shares the Seattle WAN connectivity) are proxied.
        """
        return self.proxy_name is not None

    @property
    def primary_prefix(self) -> Prefix:
        """The most specific covering prefix."""
        return max(self.prefixes, key=lambda p: p.length)


@dataclass(frozen=True)
class Replica:
    """One server IP address of a website (Section 4.5's unit)."""

    address: IPv4Address
    prefixes: Tuple[Prefix, ...]

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ValueError("replica needs at least one prefix")
        for prefix in self.prefixes:
            if not prefix.contains(self.address):
                raise ValueError(f"replica {self.address} not in {prefix}")

    @property
    def primary_prefix(self) -> Prefix:
        """The most specific covering prefix."""
        return max(self.prefixes, key=lambda p: p.length)


class SiteCategory(enum.Enum):
    """Website groups from Table 2."""

    US_EDU = "US-EDU"
    US_POPULAR = "US-POPULAR"
    US_MISC = "US-MISC"
    INTL_EDU = "INTL-EDU"
    INTL_POPULAR = "INTL-POPULAR"
    INTL_MISC = "INTL-MISC"


@dataclass(frozen=True)
class Website:
    """One of the 80 target websites.

    ``replicas`` are the qualifying server addresses; for CDN-served sites
    (``cdn`` True) the address pool is large and churns, so no single
    address qualifies as a replica under the 10%-of-connections rule
    (Section 4.5: 6 such sites).  ``replicas_same_subnet`` marks
    multi-replica sites whose replicas share a /24 and hence fail together.
    ``index_bytes`` sizes the index page; ``redirect_probability`` drives
    the connection-count inflation of Table 3.
    """

    name: str
    category: SiteCategory
    region: SiteRegion
    replicas: Tuple[Replica, ...]
    cdn: bool = False
    cdn_pool_size: int = 0
    replicas_same_subnet: bool = True
    index_bytes: int = 20000
    redirect_probability: float = 0.0
    redirect_to: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.cdn:
            if self.cdn_pool_size < 10:
                raise ValueError(
                    f"CDN site {self.name} needs a large address pool"
                )
        elif not self.replicas:
            raise ValueError(f"site {self.name} needs at least one replica")
        if not 0.0 <= self.redirect_probability <= 1.0:
            raise ValueError("redirect probability out of range")
        if self.redirect_probability > 0 and not self.redirect_to:
            raise ValueError(f"site {self.name} redirects but has no target")

    @property
    def num_replicas(self) -> int:
        """Number of qualifying replicas (0 for CDN sites)."""
        return 0 if self.cdn else len(self.replicas)

    @property
    def multi_replica(self) -> bool:
        """True for sites with more than one qualifying replica."""
        return self.num_replicas > 1

    def replica_addresses(self) -> List[IPv4Address]:
        """Addresses of the qualifying replicas."""
        return [r.address for r in self.replicas]


@dataclass(frozen=True)
class ProxySpec:
    """A corporate proxy: its location and address."""

    name: str
    location: str
    address: IPv4Address
    prefix: Prefix


@dataclass
class World:
    """The full roster plus the index structures every layer shares."""

    clients: List[Client]
    websites: List[Website]
    proxies: List[ProxySpec]
    hours: int

    def __post_init__(self) -> None:
        names = [c.name for c in self.clients]
        if len(names) != len(set(names)):
            raise ValueError("duplicate client names")
        site_names = [w.name for w in self.websites]
        if len(site_names) != len(set(site_names)):
            raise ValueError("duplicate website names")
        self._client_index = {c.name: i for i, c in enumerate(self.clients)}
        self._site_index = {w.name: i for i, w in enumerate(self.websites)}

    def client_named(self, name: str) -> Client:
        """Look up a client by name."""
        return self.clients[self._client_index[name]]

    def website_named(self, name: str) -> Website:
        """Look up a website by name."""
        return self.websites[self._site_index[normalize_name(name)]]

    def website_for_host(self, host: str) -> Website:
        """Look up the website serving ``host``, including www aliases.

        Redirecting sites bounce the bare name to a ``www.`` alias served
        by the same replicas; both names map to the same website.
        """
        host = normalize_name(host)
        if host in self._site_index:
            return self.websites[self._site_index[host]]
        if host.startswith("www."):
            bare = host[4:]
            if bare in self._site_index:
                return self.websites[self._site_index[bare]]
        raise KeyError(host)

    def client_idx(self, name: str) -> int:
        """Array index of a client."""
        return self._client_index[name]

    def site_idx(self, name: str) -> int:
        """Array index of a website."""
        return self._site_index[normalize_name(name)]

    def clients_in_category(self, category: ClientCategory) -> List[Client]:
        """All clients of one category."""
        return [c for c in self.clients if c.category is category]

    def colocated_groups(self) -> List[List[Client]]:
        """Groups of clients sharing a site, with 2+ members."""
        by_site: dict = {}
        for client in self.clients:
            by_site.setdefault((client.category, client.site), []).append(client)
        return [group for group in by_site.values() if len(group) > 1]

    def colocated_pairs(self) -> List[Tuple[Client, Client]]:
        """All unordered pairs of co-located clients (Section 4.4.6 #2).

        DU virtual clients share physical hosts but not access paths, so
        they are not considered co-located.
        """
        pairs = []
        for group in self.colocated_groups():
            if group[0].category is ClientCategory.DIALUP:
                continue
            # Proxied clients' observations are mediated by their proxy, so
            # they are excluded from the co-location similarity analysis.
            group = [c for c in group if not c.proxied]
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    pairs.append((group[i], group[j]))
        return pairs

    def all_prefixes(self) -> List[Prefix]:
        """Every distinct client and replica prefix, sorted."""
        prefixes = set()
        for client in self.clients:
            prefixes.update(client.prefixes)
        for site in self.websites:
            for replica in site.replicas:
                prefixes.update(replica.prefixes)
        return sorted(prefixes)

    def max_replicas(self) -> int:
        """The largest replica count across non-CDN sites."""
        return max((w.num_replicas for w in self.websites), default=0)
