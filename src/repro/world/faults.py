"""Ground-truth fault processes.

This module generates, per hour of the experiment, the hidden state of the
world: which LDNS servers are unreachable, which client sites have lost WAN
connectivity, which servers/replicas are down or degraded, which
client-server pairs are permanently broken, and how BGP routing events
impair paths.  The analysis pipeline never sees any of this -- it only sees
the performance records the engines derive from it.

Rates are calibrated so the *analysis* reproduces the paper's findings
(see DESIGN.md section 5); the named profiles below encode the specific
hosts and sites the paper discusses (sina.com.cn, iitb.ac.in, the Intel
Pittsburgh pair, nodea.howard.edu, ...).

All state is represented as dense numpy arrays:

* ``client_up``        bool (C, H)  -- client machine making accesses
* ``ldns_fail``        float (C, H) -- P(DNS lookup fails: LDNS timeout)
* ``wan_fail``         float (C, H) -- P(an access is hit by client WAN loss)
* ``wan_dns_fail``     float (C, H) -- P(DNS also fails during WAN loss)
* ``site_fail``        float (S, H) -- correlated server-side failure prob
* ``replica_fail``     float (S, R, H) -- independent per-replica failure
* ``site_auth_timeout``float (S, H) -- P(non-LDNS timeout for the site)
* ``site_dns_error``   float (S, H) -- P(SERVFAIL/NXDOMAIN for the site)
* ``permanent_pair``   float (C, S) -- near-1 failure prob for broken pairs
* ``proxy_hostile``    float (S,)   -- extra failure prob for proxied fetches
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bgp.churn import (
    ChurnConfig,
    ChurnGenerator,
    InstabilityEvent,
    failure_weight_by_prefix_hour,
)
from repro.bgp.messages import UpdateArchive
from repro.bgp.routeviews import CollectorFleet, default_sessions
from repro.net.addressing import Prefix
from repro.net.topology import Topology, build_default_core, random_attachments
from repro.world.entities import Client, ClientCategory, Website, World
from repro.world.rng import RNGRegistry


# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------


@dataclass
class FaultConfig:
    """Calibration knobs; defaults target the paper's headline numbers."""

    # Background transient failures ("other" blame category): per-access
    # probability that a transaction is hit by a short loss burst.
    background_tcp: Dict[str, float] = field(
        default_factory=lambda: {"PL": 0.0042, "DU": 0.0012, "CN": 0.0022, "BB": 0.0026}
    )
    #: Of background TCP failures, fraction presenting as no-connection /
    #: no-response / partial, per category.  Dialup and broadband links see
    #: relatively more mid-transfer trouble (Figure 3's category spread).
    background_tcp_mix: Dict[str, Tuple[float, float, float]] = field(
        default_factory=lambda: {
            "PL": (0.70, 0.15, 0.15),
            "DU": (0.35, 0.32, 0.33),
            "CN": (0.50, 0.25, 0.25),
            "BB": (0.25, 0.37, 0.38),
        }
    )
    #: Uniform background DNS error probability (misc lookup errors).
    background_dns_error: float = 0.00008
    #: Per-segment background packet loss on successful transfers, used
    #: for the retransmission-inferred loss counts (Section 4.1.3).
    background_packet_loss: float = 0.007
    #: Uniform background HTTP error probability (Figure 1: <2% of failures).
    background_http_error: float = 0.0003

    # Client machine downtime.
    machine_down_spells_per_month: float = 1.2
    machine_down_mean_hours: float = 9.0

    # LDNS outage process (site-level, shared by co-located clients).
    ldns_spells_per_month: Dict[str, float] = field(
        default_factory=lambda: {"PL": 0.8, "DU": 0.7, "CN": 1.2, "BB": 1.0}
    )
    ldns_mean_hours: float = 1.6
    ldns_fail_intensity: Tuple[float, float] = (0.4, 0.9)
    #: Probability a co-located client participates in its site's LDNS faults.
    ldns_participation: float = 0.62
    #: Per-client multiplicative jitter on a shared spell's intensity --
    #: co-located clients feel the same outage with different severity, so
    #: near-threshold episodes flag for one client but not its neighbour
    #: (Table 7's spread of similarities below 100%).
    ldns_client_jitter: Tuple[float, float] = (0.45, 1.15)
    #: Per-client private LDNS/resolver problems (spells/month).
    ldns_private_spells_per_month: float = 0.25
    #: Lognormal sigma for per-site rate heterogeneity.
    rate_sigma: float = 1.25
    #: A small fraction of PL clients are chronically unhealthy.
    chronic_client_probability: float = 0.042
    chronic_client_fraction: Tuple[float, float] = (0.15, 0.40)
    chronic_client_intensity: Tuple[float, float] = (0.18, 0.55)

    # Client WAN outage process (site-level).
    wan_spells_per_month: Dict[str, float] = field(
        default_factory=lambda: {"PL": 0.7, "DU": 0.25, "CN": 0.4, "BB": 0.35}
    )
    wan_mean_hours: float = 1.8
    wan_fail_intensity: Tuple[float, float] = (0.6, 1.0)
    #: P(DNS lookup also fails | WAN outage): the LDNS is local and caches,
    #: so most lookups still succeed -- which is what routes client problems
    #: into the TCP failure column (Section 4.4.4).
    wan_dns_coupling: float = 0.3

    # Server-side episode process for unnamed sites.
    server_no_episode_fraction: float = 0.30
    server_spells_per_month: float = 1.2
    server_mean_hours: float = 2.4
    server_intensity: Tuple[float, float] = (0.06, 0.20)
    #: Failure-mode mix during server episodes (no-conn dominates).
    server_mix: Tuple[float, float, float] = (0.80, 0.11, 0.09)

    # Independent per-replica outages for spread-replica sites.  The
    # chronic case (iitb.ac.in, Section 4.7) gets its own heavier rate.
    replica_spells_per_month: float = 1.5
    replica_mean_hours: float = 3.0
    replica_intensity: Tuple[float, float] = (0.9, 1.0)
    chronic_replica_sites: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: {"iitb.ac.in": (6.0, 7.0)}
    )

    # Permanent pairs.
    permanent_intensity_high: float = 0.998
    permanent_intensity_low: float = 0.93

    # Proxy-shared failures (Section 4.7): royal.gov.uk's unexplained case.
    proxy_hostile_sites: Dict[str, float] = field(
        default_factory=lambda: {"royal.gov.uk": 0.062}
    )
    #: royal.gov.uk also shows elevated failures for direct clients (1.38%).
    direct_elevated_sites: Dict[str, float] = field(
        default_factory=lambda: {"royal.gov.uk": 0.010}
    )

    # BGP churn configuration.
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    #: Scale applied to BGP path-fail weights when folded into failures.
    bgp_coupling: float = 0.9


#: Named server profiles: (episode_fraction_of_month, intensity_lo,
#: intensity_hi, long_stretch_hours).  Calibrated to Table 6.
NAMED_SERVER_PROFILES: Dict[str, Tuple[float, float, float, int]] = {
    # Table 6 counts episodes at replica granularity (sina: 764 over 2
    # replicas, iitb: 759 over 3), so the per-server hour fractions here are
    # the replica counts divided by (replicas x 744).
    "sina.com.cn": (0.55, 0.06, 0.22, 400),
    "iitb.ac.in": (0.35, 0.06, 0.22, 230),
    "sohu.com": (0.33, 0.06, 0.20, 60),
    "craigslist.org": (0.11, 0.06, 0.20, 24),
    "brazzil.com": (0.13, 0.06, 0.20, 20),
    "cs.technion.ac.il": (0.13, 0.06, 0.20, 18),
    "technion.ac.il": (0.06, 0.06, 0.20, 16),
    "chinabroadcast.cn": (0.12, 0.06, 0.20, 16),
    "ucl.ac.uk": (0.04, 0.06, 0.20, 12),
    "nih.gov": (0.047, 0.06, 0.20, 8),
    "mit.edu": (0.031, 0.06, 0.20, 6),
}

#: Sites whose authoritative DNS returns errors (Section 4.2: SERVFAIL /
#: NXDOMAIN from buggy or misconfigured servers).  Values are per-lookup
#: error probabilities sized so brazzil ~57% and espn ~30% of DNS errors.
DNS_ERROR_PROFILES: Dict[str, float] = {
    "brazzil.com": 0.028,
    "espn.go.com": 0.015,
}

#: Sites with flaky authoritative servers (non-LDNS timeouts); skewed
#: across sites per Figure 2's bottom-right curves.
AUTH_TIMEOUT_PROFILES: Dict[str, float] = {
    "iitm.ac.in": 0.006,
    "samachar.com": 0.005,
    "english.pravda.ru": 0.004,
    "cosmos.com.mx": 0.003,
    "sina.com.hk": 0.0025,
    "hku.hk": 0.002,
}
#: Uniform background auth-timeout probability for all other sites.
BACKGROUND_AUTH_TIMEOUT = 0.0003

#: The chronically broken client sites (Table 8).
CHRONIC_CLIENT_SITES: Dict[str, Tuple[float, float]] = {
    # site -> (fraction of hours in LDNS/client trouble, shared fraction)
    "pittsburgh.intel-research.net": (0.42, 0.98),
}

#: Columbia's odd trio: nodes 2 and 3 share a chronic site problem that
#: node 1 does not participate in (Table 8).
COLUMBIA_SITE = "comet.columbia.edu"
COLUMBIA_SHARED_FRACTION = 0.30
COLUMBIA_PRIVATE_FRACTION = 0.14
COLUMBIA_NONPARTICIPANT = "planetlab1.comet.columbia.edu"

#: Forced client downtime (the blank stretches in Figures 5 and 7), as
#: fractions of the experiment duration.
FORCED_DOWNTIME: Dict[str, Tuple[float, float]] = {
    "nodea.howard.edu": (0.730, 0.757),
    "planetlab1.kscy.internet2.planet-lab.org": (0.511, 0.545),
}

#: Forced BGP showcase events, as (fraction_of_month, duration_h, kind).
FORCED_BGP_EVENTS: Dict[str, Tuple[float, float, str, int]] = {
    # client name -> (start fraction, duration hours, kind, withdrawing sessions)
    "nodea.howard.edu": (0.409, 1.5, "severe", 72),
    "planetlab1.kscy.internet2.planet-lab.org": (0.866, 0.9, "localized", 2),
}


# --------------------------------------------------------------------------
# Ground truth container
# --------------------------------------------------------------------------


@dataclass
class GroundTruth:
    """Everything the engines need, plus truth kept for validation."""

    config: FaultConfig
    hours: int
    client_up: np.ndarray
    ldns_fail: np.ndarray
    wan_fail: np.ndarray
    wan_dns_fail: np.ndarray
    site_fail: np.ndarray
    site_mix: Tuple[float, float, float]
    replica_fail: np.ndarray
    site_auth_timeout: np.ndarray
    site_dns_error: np.ndarray
    site_http_error: np.ndarray
    permanent_pair: np.ndarray
    permanent_pair_kind: np.ndarray  # 0 none, 1 no-conn, 2 partial
    proxy_hostile: np.ndarray
    direct_elevated: np.ndarray
    bgp_client_fail: np.ndarray
    bgp_replica_fail: np.ndarray
    bgp_archive: UpdateArchive
    bgp_events: List[InstabilityEvent]
    prefix_of_client: Dict[str, Prefix]
    prefix_of_replica: Dict[Tuple[str, int], Prefix]

    def total_client_tcp_fail(self) -> np.ndarray:
        """Combined client-side TCP failure probability, shape (C, H)."""
        return 1.0 - (1.0 - self.wan_fail) * (1.0 - self.bgp_client_fail)


# --------------------------------------------------------------------------
# Generator
# --------------------------------------------------------------------------


class FaultGenerator:
    """Builds a :class:`GroundTruth` for a world."""

    def __init__(
        self,
        world: World,
        config: Optional[FaultConfig] = None,
        rngs: Optional[RNGRegistry] = None,
    ) -> None:
        self.world = world
        self.config = config or FaultConfig()
        self.rngs = rngs or RNGRegistry()

    # -- spell helper --------------------------------------------------------

    def _spells(
        self,
        rng,
        spells_per_month: float,
        mean_hours: float,
        heterogeneity: float = 0.0,
    ) -> List[Tuple[int, int]]:
        """Sample outage spells as (start_hour, end_hour) half-open pairs.

        The per-entity rate is multiplied by a lognormal factor when
        ``heterogeneity`` (sigma) is nonzero -- the source of heavy-tailed
        cross-entity skew.
        """
        hours = self.world.hours
        rate = spells_per_month * (hours / 744.0)
        if heterogeneity > 0.0:
            rate *= rng.lognormvariate(-heterogeneity**2 / 2.0, heterogeneity)
        count = _poisson(rng, rate)
        spells = []
        for _ in range(count):
            start = rng.randrange(hours)
            duration = max(1, round(rng.expovariate(1.0 / mean_hours)))
            spells.append((start, min(hours, start + duration)))
        return spells

    # -- client-side processes --------------------------------------------------

    def _client_machine_uptime(self) -> np.ndarray:
        hours = self.world.hours
        up = np.ones((len(self.world.clients), hours), dtype=bool)
        for ci, client in enumerate(self.world.clients):
            rng = self.rngs.stream(f"downtime:{client.name}")
            for start, end in self._spells(
                rng,
                self.config.machine_down_spells_per_month,
                self.config.machine_down_mean_hours,
            ):
                up[ci, start:end] = False
        for name, (f0, f1) in FORCED_DOWNTIME.items():
            try:
                ci = self.world.client_idx(name)
            except KeyError:
                continue
            up[ci, int(f0 * hours): int(f1 * hours)] = False
        return up

    def _ldns_process(self) -> np.ndarray:
        """LDNS unreachability probability per client-hour.

        Every site (and every chronic-tail client) draws from its own named
        RNG stream, so recalibrating one process does not reshuffle the
        rest of the world.
        """
        cfg = self.config
        hours = self.world.hours
        fail = np.zeros((len(self.world.clients), hours), dtype=np.float32)

        by_site: Dict[Tuple[ClientCategory, str], List[int]] = {}
        for ci, client in enumerate(self.world.clients):
            by_site.setdefault((client.category, client.site), []).append(ci)

        for (category, site), client_idxs in by_site.items():
            rng = self.rngs.stream(f"ldns:{category.value}:{site}")
            if site in CHRONIC_CLIENT_SITES:
                self._chronic_site(rng, fail, site, client_idxs)
                continue
            if site == COLUMBIA_SITE:
                self._columbia_site(rng, fail, client_idxs)
                continue
            spells = self._spells(
                rng,
                cfg.ldns_spells_per_month[category.value],
                cfg.ldns_mean_hours,
                heterogeneity=cfg.rate_sigma,
            )
            for start, end in spells:
                intensity = rng.uniform(*cfg.ldns_fail_intensity)
                # Participation is drawn per spell: not every shared-LDNS
                # incident touches every co-located host.
                participants = [
                    ci for ci in client_idxs
                    if len(client_idxs) == 1
                    or rng.random() < cfg.ldns_participation
                ]
                for ci in participants:
                    # Each co-located client feels the shared outage over
                    # its own sub-interval (hosts reconnect/recover at
                    # different times), so episode overlap is partial --
                    # Table 7's similarity spread below 100%.
                    c_start, c_end = _client_subspell(rng, start, end)
                    jitter = rng.uniform(*cfg.ldns_client_jitter)
                    fail[ci, c_start:c_end] = np.maximum(
                        fail[ci, c_start:c_end], min(1.0, intensity * jitter)
                    )
            # Private (per-client) resolver trouble on top.
            for ci in client_idxs:
                for start, end in self._spells(
                    rng, cfg.ldns_private_spells_per_month, cfg.ldns_mean_hours,
                    heterogeneity=cfg.rate_sigma,
                ):
                    intensity = rng.uniform(*cfg.ldns_fail_intensity)
                    fail[ci, start:end] = np.maximum(fail[ci, start:end], intensity)
        return fail

    def _chronic_tail(self) -> Tuple[np.ndarray, np.ndarray]:
        """The chronic client tail: a handful of persistently sick PL nodes.

        An overloaded node hurts both name resolution and data transfer, so
        chronic hours contribute to the LDNS *and* WAN failure arrays (the
        paper's worst clients show 10-20% overall failure rates and large
        client-side episode counts).  Returns (ldns_part, wan_part).
        """
        cfg = self.config
        hours = self.world.hours
        n_c = len(self.world.clients)
        ldns_part = np.zeros((n_c, hours), dtype=np.float32)
        wan_part = np.zeros((n_c, hours), dtype=np.float32)
        for ci, client in enumerate(self.world.clients):
            if client.category is not ClientCategory.PLANETLAB:
                continue
            if client.site in CHRONIC_CLIENT_SITES or client.site == COLUMBIA_SITE:
                continue
            rng = self.rngs.stream(f"chronic:{client.name}")
            if rng.random() >= cfg.chronic_client_probability:
                continue
            frac = rng.uniform(*cfg.chronic_client_fraction)
            for h in _sample_hour_set(rng, hours, frac, 6.0):
                intensity = rng.uniform(*cfg.chronic_client_intensity)
                ldns_part[ci, h] = max(ldns_part[ci, h], intensity * 0.93)
                wan_part[ci, h] = max(wan_part[ci, h], intensity * 0.05)
        return ldns_part, wan_part

    def _chronic_site(self, rng, fail, site, client_idxs) -> None:
        """Intel-Pittsburgh-style chronic shared LDNS trouble."""
        frac, shared = CHRONIC_CLIENT_SITES[site]
        hours = self.world.hours
        bad_hours = set()
        cursor = 0
        while len(bad_hours) < frac * hours and cursor < 10000:
            cursor += 1
            start = rng.randrange(hours)
            duration = max(1, round(rng.expovariate(1.0 / 7.0)))
            bad_hours.update(range(start, min(hours, start + duration)))
        for h in bad_hours:
            intensity = rng.uniform(0.08, 0.5)
            if rng.random() < shared:
                for ci in client_idxs:
                    fail[ci, h] = max(fail[ci, h], intensity * rng.uniform(0.8, 1.1))
            else:
                ci = rng.choice(client_idxs)
                fail[ci, h] = max(fail[ci, h], intensity)

    def _columbia_site(self, rng, fail, client_idxs) -> None:
        """Columbia's trio: a shared problem for nodes 2/3, none for node 1."""
        hours = self.world.hours
        participant_idxs = [
            ci for ci in client_idxs
            if self.world.clients[ci].name != COLUMBIA_NONPARTICIPANT
        ]
        outsider = [ci for ci in client_idxs if ci not in participant_idxs]
        shared_hours = _sample_hour_set(rng, hours, COLUMBIA_SHARED_FRACTION, 4.0)
        for h in shared_hours:
            intensity = rng.uniform(0.08, 0.5)
            for ci in participant_idxs:
                fail[ci, h] = max(fail[ci, h], intensity)
        for ci in participant_idxs:
            private = _sample_hour_set(rng, hours, COLUMBIA_PRIVATE_FRACTION, 3.0)
            for h in private:
                fail[ci, h] = max(fail[ci, h], rng.uniform(0.08, 0.5))
        for ci in outsider:
            private = _sample_hour_set(rng, hours, 0.012, 2.0)
            for h in private:
                fail[ci, h] = max(fail[ci, h], rng.uniform(0.08, 0.5))

    def _wan_process(self) -> Tuple[np.ndarray, np.ndarray]:
        """Client WAN outage probabilities (TCP and coupled-DNS)."""
        cfg = self.config
        hours = self.world.hours
        wan = np.zeros((len(self.world.clients), hours), dtype=np.float32)
        by_site: Dict[Tuple[ClientCategory, str], List[int]] = {}
        for ci, client in enumerate(self.world.clients):
            by_site.setdefault((client.category, client.site), []).append(ci)
        for (category, site), client_idxs in by_site.items():
            rng = self.rngs.stream(f"wan:{category.value}:{site}")
            spells = self._spells(
                rng,
                cfg.wan_spells_per_month[category.value],
                cfg.wan_mean_hours,
                heterogeneity=cfg.rate_sigma,
            )
            for start, end in spells:
                intensity = rng.uniform(*cfg.wan_fail_intensity)
                for ci in client_idxs:
                    wan[ci, start:end] = np.maximum(wan[ci, start:end], intensity)
        return wan, wan * cfg.wan_dns_coupling

    # -- server-side processes -----------------------------------------------------

    def _server_processes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Site-level (correlated) and replica-level failure probabilities."""
        cfg = self.config
        hours = self.world.hours
        n_sites = len(self.world.websites)
        max_r = max(1, self.world.max_replicas())
        site_fail = np.zeros((n_sites, hours), dtype=np.float32)
        replica_fail = np.zeros((n_sites, max_r, hours), dtype=np.float32)

        for si, site in enumerate(self.world.websites):
            rng = self.rngs.stream(f"server:{site.name}")
            profile = NAMED_SERVER_PROFILES.get(site.name)
            if profile is not None:
                self._named_server(rng, site_fail, si, profile)
            else:
                if rng.random() >= cfg.server_no_episode_fraction:
                    for start, end in self._spells(
                        rng, cfg.server_spells_per_month, cfg.server_mean_hours,
                        heterogeneity=cfg.rate_sigma,
                    ):
                        intensity = rng.uniform(*cfg.server_intensity)
                        site_fail[si, start:end] = np.maximum(
                            site_fail[si, start:end], intensity
                        )
            # Independent replica outages for spread-replica sites.
            if not site.cdn and site.multi_replica and not site.replicas_same_subnet:
                spells_rate, mean_h = cfg.chronic_replica_sites.get(
                    site.name, (cfg.replica_spells_per_month, cfg.replica_mean_hours)
                )
                for r in range(site.num_replicas):
                    for start, end in self._spells(rng, spells_rate, mean_h):
                        intensity = rng.uniform(*cfg.replica_intensity)
                        replica_fail[si, r, start:end] = np.maximum(
                            replica_fail[si, r, start:end], intensity
                        )
        return site_fail, replica_fail

    def _named_server(self, rng, site_fail, si, profile) -> None:
        frac, lo, hi, stretch = profile
        hours = self.world.hours
        scaled_stretch = max(1, round(stretch * hours / 744.0))
        target = round(frac * hours)
        # One long stretch anchored mid-month, then random spells to target.
        start = rng.randrange(max(1, hours - scaled_stretch))
        chosen = set(range(start, min(hours, start + scaled_stretch)))
        guard = 0
        while len(chosen) < target and guard < 20000:
            guard += 1
            s = rng.randrange(hours)
            duration = max(1, round(rng.expovariate(1.0 / 4.0)))
            chosen.update(range(s, min(hours, s + duration)))
        for h in chosen:
            site_fail[si, h] = max(site_fail[si, h], rng.uniform(lo, hi))

    def _dns_server_processes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Authoritative-timeout and DNS-error probabilities per site-hour."""
        hours = self.world.hours
        n_sites = len(self.world.websites)
        auth = np.full((n_sites, hours), BACKGROUND_AUTH_TIMEOUT, dtype=np.float32)
        error = np.full(
            (n_sites, hours), self.config.background_dns_error, dtype=np.float32
        )
        for si, site in enumerate(self.world.websites):
            rng = self.rngs.stream(f"dns-server:{site.name}")
            if site.name in AUTH_TIMEOUT_PROFILES:
                base = AUTH_TIMEOUT_PROFILES[site.name]
                # Flakiness concentrates in spells, not uniformly.
                for start, end in self._spells(rng, 10.0, 12.0):
                    auth[si, start:end] = np.maximum(
                        auth[si, start:end], base * rng.uniform(5.0, 12.0)
                    )
                auth[si] = np.maximum(auth[si], base * 0.3)
            if site.name in DNS_ERROR_PROFILES:
                error[si, :] = DNS_ERROR_PROFILES[site.name]
        return auth, error

    # -- permanent pairs --------------------------------------------------------

    def _permanent_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """The 38 near-permanently-broken client-server pairs (Section 4.4.2)."""
        rng = self.rngs.stream("permanent")
        cfg = self.config
        n_c, n_s = len(self.world.clients), len(self.world.websites)
        prob = np.zeros((n_c, n_s), dtype=np.float32)
        kind = np.zeros((n_c, n_s), dtype=np.int8)

        pl = [c for c in self.world.clients if c.category is ClientCategory.PLANETLAB]
        named_blocked = ["planetlab1.hp.com", "planetlab1.epfl.ch",
                         "planetlab1.nyu.edu", "planetlab1.unito.it",
                         "planetlab1.postel.org"]
        other_pl = [c.name for c in pl if c.name not in named_blocked]
        rng.shuffle(other_pl)

        def block(client_name: str, site_name: str, high: bool, pair_kind: int = 1):
            ci = self.world.client_idx(client_name)
            si = self.world.site_idx(site_name)
            prob[ci, si] = (
                cfg.permanent_intensity_high if high else cfg.permanent_intensity_low
            )
            # repro: lint-ok[DTY001] int8 holds a categorical pair-kind code (0/1/2), not a count that can accumulate past the dtype
            kind[ci, si] = pair_kind

        cursor = 0
        # sina.com.cn: the 5 named clients + 4 more (9 pairs).
        for name in named_blocked + other_pl[cursor:cursor + 4]:
            block(name, "sina.com.cn", high=True)
        cursor += 4
        # sohu.com: the 5 named clients + 3 more (8 pairs).
        for name in named_blocked + other_pl[cursor:cursor + 3]:
            block(name, "sohu.com", high=True)
        cursor += 3
        # msn.com.tw: 10 distinct PL clients.
        for name in other_pl[cursor:cursor + 10]:
            block(name, "msn.com.tw", high=True)
        cursor += 10
        # northwestern <-> mp3.com: TCP checksum corruption -> partial resp.
        block("planetlab1.northwestern.edu", "mp3.com", high=True, pair_kind=2)
        # 10 more scattered pairs; 4 of the 38 are "only" >90% broken.
        scatter_sites = ["chinabroadcast.cn", "alibaba.com", "sina.com.hk",
                         "rediff.com", "terra.com", "iitm.ac.in",
                         "cosmos.com.mx", "nttdocomo.co.jp", "samachar.com",
                         "english.pravda.ru"]
        for i, site_name in enumerate(scatter_sites):
            block(other_pl[cursor + i], site_name, high=(i >= 4))
        return prob, kind

    # -- BGP --------------------------------------------------------------------

    def _build_bgp(self) -> Tuple[
        np.ndarray, np.ndarray, UpdateArchive, List[InstabilityEvent],
        Dict[str, Prefix], Dict[Tuple[str, int], Prefix],
    ]:
        rng = self.rngs.stream("bgp")
        hours = self.world.hours

        topology = Topology()
        transit = build_default_core(topology)
        archive = UpdateArchive(table_size=120_000)
        sessions = default_sessions(transit, rng)
        fleet = CollectorFleet(sessions, archive, rng)

        # One edge AS per distinct primary prefix.
        prefix_of_client: Dict[str, Prefix] = {}
        prefix_of_replica: Dict[Tuple[str, int], Prefix] = {}
        prefix_attachments: Dict[Prefix, List[Tuple[int, float]]] = {}
        next_asn = 64500

        def register(prefix: Prefix, force_dual: bool = False):
            nonlocal next_asn
            if prefix in prefix_attachments:
                return
            count = 2 if force_dual else None
            attachments = random_attachments(transit, rng, count=count)
            topology.add_edge(next_asn, attachments)
            topology.originate(prefix, next_asn)
            next_asn += 1
            pairs = [(a.transit_asn, a.weight) for a in attachments]
            prefix_attachments[prefix] = pairs
            fleet.seed_prefix(
                prefix,
                [asn for asn, _ in pairs],
                [w for _, w in pairs],
                timestamp=0.0,
            )

        for client in self.world.clients:
            prefix = client.primary_prefix
            prefix_of_client[client.name] = prefix
            register(prefix, force_dual=client.name in FORCED_BGP_EVENTS)
        for site in self.world.websites:
            for ri, replica in enumerate(site.replicas):
                prefix = replica.primary_prefix
                prefix_of_replica[(site.name, ri)] = prefix
                register(prefix)

        forced: List[InstabilityEvent] = []
        for client_name, (f0, dur_h, kind, n_sessions) in FORCED_BGP_EVENTS.items():
            if client_name not in prefix_of_client:
                continue
            prefix = prefix_of_client[client_name]
            n_avail = len(fleet.sessions_with_route(prefix))
            forced.append(
                InstabilityEvent(
                    prefix=prefix,
                    start=f0 * hours * 3600.0,
                    duration=dur_h * 3600.0,
                    path_fail_fraction=0.95 if kind == "severe" else 0.60,
                    withdrawing_sessions=min(n_sessions, n_avail),
                    kind=kind,
                )
            )

        generator = ChurnGenerator(fleet, self.config.churn, rng, hours)
        events = generator.run(prefix_attachments, forced_events=forced)
        weights = failure_weight_by_prefix_hour(events, hours)

        client_fail = np.zeros((len(self.world.clients), hours), dtype=np.float32)
        for ci, client in enumerate(self.world.clients):
            prefix = prefix_of_client[client.name]
            for (pfx, hour), w in weights.items():
                if pfx == prefix:
                    client_fail[ci, hour] = min(
                        1.0, w * self.config.bgp_coupling
                    )

        max_r = max(1, self.world.max_replicas())
        replica_bgp = np.zeros(
            (len(self.world.websites), max_r, hours), dtype=np.float32
        )
        for si, site in enumerate(self.world.websites):
            for ri in range(site.num_replicas):
                prefix = prefix_of_replica[(site.name, ri)]
                for (pfx, hour), w in weights.items():
                    if pfx == prefix:
                        replica_bgp[si, ri, hour] = min(
                            1.0, w * self.config.bgp_coupling
                        )
        return (client_fail, replica_bgp, archive, events,
                prefix_of_client, prefix_of_replica)

    # -- assembly -----------------------------------------------------------------

    def generate(self) -> GroundTruth:
        """Run every fault process and assemble the ground truth."""
        cfg = self.config
        n_sites = len(self.world.websites)
        hours = self.world.hours

        client_up = self._client_machine_uptime()
        ldns_fail = self._ldns_process()
        wan_fail, wan_dns_fail = self._wan_process()
        chronic_ldns, chronic_wan = self._chronic_tail()
        ldns_fail = np.maximum(ldns_fail, chronic_ldns)
        wan_fail = np.maximum(wan_fail, chronic_wan)
        wan_dns_fail = np.maximum(
            wan_dns_fail, chronic_wan * self.config.wan_dns_coupling
        )
        site_fail, replica_fail = self._server_processes()
        auth_timeout, dns_error = self._dns_server_processes()
        permanent, permanent_kind = self._permanent_pairs()
        (bgp_client, bgp_replica, archive, events,
         prefix_of_client, prefix_of_replica) = self._build_bgp()

        http_error = np.full(
            (n_sites, hours), cfg.background_http_error, dtype=np.float32
        )
        proxy_hostile = np.zeros(n_sites, dtype=np.float32)
        direct_elevated = np.zeros(n_sites, dtype=np.float32)
        for name, p in cfg.proxy_hostile_sites.items():
            proxy_hostile[self.world.site_idx(name)] = p
        for name, p in cfg.direct_elevated_sites.items():
            direct_elevated[self.world.site_idx(name)] = p

        return GroundTruth(
            config=cfg,
            hours=hours,
            client_up=client_up,
            ldns_fail=ldns_fail,
            wan_fail=wan_fail,
            wan_dns_fail=wan_dns_fail,
            site_fail=site_fail,
            site_mix=cfg.server_mix,
            replica_fail=replica_fail,
            site_auth_timeout=auth_timeout,
            site_dns_error=dns_error,
            site_http_error=http_error,
            permanent_pair=permanent,
            permanent_pair_kind=permanent_kind,
            proxy_hostile=proxy_hostile,
            direct_elevated=direct_elevated,
            bgp_client_fail=bgp_client,
            bgp_replica_fail=bgp_replica,
            bgp_archive=archive,
            bgp_events=events,
            prefix_of_client=prefix_of_client,
            prefix_of_replica=prefix_of_replica,
        )


# --------------------------------------------------------------------------
# Small helpers
# --------------------------------------------------------------------------


def _poisson(rng, mean: float) -> int:
    """Poisson sample via Knuth's method (small means)."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def _sample_hour_set(rng, hours: int, fraction: float, mean_spell: float) -> Set[int]:
    """A set of hours covering ~``fraction`` of the experiment in spells."""
    chosen: Set[int] = set()
    target = round(fraction * hours)
    guard = 0
    while len(chosen) < target and guard < 20000:
        guard += 1
        start = rng.randrange(hours)
        duration = max(1, round(rng.expovariate(1.0 / mean_spell)))
        chosen.update(range(start, min(hours, start + duration)))
    return chosen

def _client_subspell(rng, start: int, end: int) -> Tuple[int, int]:
    """A client's own sub-interval of a shared outage spell.

    Keeps 50-100% of the spell, anchored at a random offset; 1-hour spells
    are returned unchanged.
    """
    duration = end - start
    if duration <= 1:
        return start, end
    keep = max(1, round(duration * rng.uniform(0.4, 0.9)))
    offset = rng.randrange(0, duration - keep + 1)
    return start + offset, start + offset + keep
