"""Deterministic hour-sharded parallel month simulation.

The fast engine's month loop is embarrassingly parallel once every hour
draws from its own derived RNG stream (``fast-engine/hour/<h>``): a worker
process simulating hours ``[h0, h1)`` produces exactly the counts the
sequential engine would for those hours, because seed derivation depends
only on the master seed and the hour -- never on which process runs it or
what ran before.  The month is sharded into contiguous hour blocks, one
per worker; workers write their counts directly into one
``multiprocessing.shared_memory`` block (:mod:`repro.world.sharedmem`)
the parent adopts after the join -- no pickled count arrays, no
per-shard re-merge.

Determinism contract: for a given master seed the merged dataset is
bit-identical for *any* worker count -- ``--workers 1``, the in-process
fallback, and any process-pool width all digest equal.

Fallback: when the pool or the shared block cannot be used (sandboxed
environments, unpicklable worlds, broken pools, undersized planned
dtypes) every shard runs in this process sequentially and the results
merge through :meth:`~repro.core.dataset.MeasurementDataset.merge_shards`.
The switch is *observable*: the ``parallel_fallback_total`` counter
increments and the dataset provenance (and therefore the run manifest)
records the reason, so ``repro runs show`` reveals that a "parallel" run
actually ran sequentially.

Observability: each worker runs under its own fresh
:class:`~repro.obs.metrics.MetricsRegistry` (instruments hold locks and
cannot cross process boundaries), dumps it into the
:class:`~repro.world.simulator.ShardResult`, and the parent folds every
worker's state back into the active registry after the join.  The parent's
trace gains one ``simulate.shard`` span per shard carrying the worker's
hour range and wall time.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.dataset import MeasurementDataset
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.world.rng import RNGRegistry
from repro.world.sharedmem import SharedMonthBuffer, attach_shard_arrays

if TYPE_CHECKING:  # circular at runtime: simulator dispatches to us
    from repro.world.simulator import MonthSimulator, ShardResult, SimulationResult

#: Floor on shard size: below this, process spin-up dominates the work and
#: the auto worker count backs off toward sequential.
MIN_HOURS_PER_SHARD = 24

#: Exceptions that demote a parallel run to the in-process fallback.
#: ``OverflowError`` is the fixed-dtype shared-buffer overflow -- the
#: in-process path can promote dtypes mid-run, so it can still finish.
_FALLBACK_ERRORS = (
    OSError, ValueError, pickle.PicklingError, BrokenProcessPool,
    OverflowError,
)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def default_workers(hours: int) -> int:
    """The ``--workers`` auto default.

    ``$REPRO_WORKERS`` overrides the starting point, but the result is
    always clamped to both the CPU affinity mask and the
    :data:`MIN_HOURS_PER_SHARD` work floor -- an env override used to be
    able to oversubscribe a small machine (the recorded 0.37x "speedup"
    came from 4 workers timesharing one core).
    """
    requested = available_cpus()
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            requested = int(env)
        except ValueError:
            obs.logger.warning("ignoring non-integer REPRO_WORKERS=%r", env)
    return max(1, min(requested, available_cpus(), hours // MIN_HOURS_PER_SHARD))


def plan_shards(hours: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal hour blocks exactly covering ``[0, hours)``.

    The first ``hours % workers`` blocks get one extra hour.  Never
    returns empty blocks; with ``workers >= hours`` each block is a
    single hour.
    """
    if hours < 0:
        raise ValueError(f"negative hours: {hours}")
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if hours == 0:
        return []
    workers = min(workers, hours)
    base, extra = divmod(hours, workers)
    shards: List[Tuple[int, int]] = []
    start = 0
    for i in range(workers):
        size = base + (1 if i < extra else 0)
        shards.append((start, start + size))
        start += size
    return shards


def _simulate_shard(payload) -> "ShardResult":
    """Worker entry point: simulate one hour block under fresh obs state.

    Runs in a worker process (or in-process on fallback).  A fresh
    metrics registry captures exactly this shard's instruments for the
    parent to merge; the tracer is disabled -- worker processes must not
    interleave writes into the parent's trace file.  Live telemetry, in
    contrast, *is* wired through: when the parent parked a telemetry
    queue before forking the pool, the worker installs an emitter bound
    to it (labelled with its worker index) so per-hour progress streams
    to the parent while the shard runs.

    With a shared-memory block name in the payload the shard's counts go
    straight into the parent's block (sliced to this shard's hours,
    fixed dtypes) and the returned result carries no arrays -- only the
    tiny bookkeeping fields ride the pickle.
    """
    from repro.world.columnar import BlockSink
    from repro.world.simulator import MonthSimulator

    (world, truth, access, master_seed, hour_start, hour_stop, worker,
     shm_name) = payload
    registry = MetricsRegistry()
    old_registry = obs.set_registry(registry)
    old_tracer = obs.set_tracer(Tracer())
    old_emitter = obs.set_emitter(obs.inherited_emitter(worker))
    shm = None
    try:
        sink = None
        if shm_name is not None:
            shm, arrays = attach_shard_arrays(
                shm_name, world, access.per_hour, hour_start, hour_stop
            )
            sink = BlockSink(arrays, hour_start, fixed_dtype=True)
        simulator = MonthSimulator(
            world, access=access, rngs=RNGRegistry(master_seed), truth=truth
        )
        shard = simulator.run_shard(hour_start, hour_stop, sink=sink)
        shard.metrics = registry.dump_state()
        return shard
    finally:
        if shm is not None:
            shm.close()
        obs.set_registry(old_registry)
        obs.set_tracer(old_tracer)
        obs.set_emitter(old_emitter)


def _pool_dispatch(payloads: Sequence[tuple]) -> List["ShardResult"]:
    """Run every shard payload on a process pool (fork when available)."""
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(
        max_workers=len(payloads), mp_context=ctx
    ) as pool:
        return list(pool.map(_simulate_shard, payloads))


def run_block(
    simulator: "MonthSimulator",
    hour_start: int,
    hour_stop: int,
    workers: int = 1,
    in_process: bool = False,
) -> dict:
    """Simulate one contiguous hour block; returns its count arrays.

    The chunk-sized unit the service daemon (:mod:`repro.serve`) drives:
    where :func:`run_parallel` owns a whole month and a dataset, this
    simulates just ``[hour_start, hour_stop)`` and hands back block
    arrays (shape ``(clients, sites, hours)``) for the caller to commit.
    Per-hour RNG streams make the output bit-identical to the same hours
    of a batch run, for any ``workers`` split.

    ``workers`` > 1 sub-shards the block across a process pool on the
    pickled-arrays path (chunks are small; shared memory isn't worth its
    setup here).  Pool failures fall back to in-process shards with the
    same ``parallel_fallback_total`` accounting as the month driver.
    """
    world = simulator.world
    if not 0 <= hour_start <= hour_stop <= world.hours:
        raise ValueError(
            f"hour block [{hour_start}, {hour_stop}) outside experiment "
            f"(0..{world.hours})"
        )
    n_hours = hour_stop - hour_start
    shards = [
        (hour_start + h0, hour_start + h1)
        for h0, h1 in plan_shards(n_hours, max(1, workers))
    ]
    if len(shards) <= 1:
        shard = simulator.run_shard(hour_start, hour_stop)
        return shard.arrays if shard.arrays is not None else {}
    payloads = [
        (world, simulator.truth, simulator.access,
         simulator.rngs.master_seed, h0, h1, i, None)
        for i, (h0, h1) in enumerate(shards)
    ]
    results: Optional[List["ShardResult"]] = None
    if not in_process:
        try:
            results = _pool_dispatch(payloads)
        except _FALLBACK_ERRORS as exc:
            obs.logger.warning(
                "parallel dispatch unavailable (%s); running %d block "
                "shards in-process", exc, len(shards),
            )
            obs.event(
                "simulate.parallel_fallback", reason=repr(exc),
                shards=len(shards),
            )
            obs.registry().counter("parallel_fallback_total").inc()
    if results is None:
        results = [_simulate_shard(p) for p in payloads]
    arrays = MeasurementDataset.block_template(world, n_hours)
    registry = obs.registry()
    for shard in results:
        lo = shard.hour_start - hour_start
        hi = shard.hour_stop - hour_start
        for name, block in (shard.arrays or {}).items():
            np.copyto(arrays[name][..., lo:hi], block, casting="safe")
        if shard.metrics:
            registry.merge_state(shard.metrics)
    return arrays


def run_parallel(
    simulator: "MonthSimulator",
    workers: int,
    in_process: bool = False,
) -> "SimulationResult":
    """Shard ``simulator``'s month across ``workers`` and merge the results.

    ``in_process=True`` forces the sequential-shards path (every shard
    runs in this process; no shared memory, no fallback accounting) --
    useful for tests and environments without working process pools;
    output is identical.
    """
    from repro.world.simulator import SimulationResult

    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    world = simulator.world
    shards = plan_shards(world.hours, workers)
    if len(shards) <= 1:
        return simulator.run(workers=1)
    master_seed = simulator.rngs.master_seed
    access = simulator.access

    def payloads(shm_name: Optional[str]) -> List[tuple]:
        return [
            (world, simulator.truth, access, master_seed, h0, h1, i, shm_name)
            for i, (h0, h1) in enumerate(shards)
        ]

    emitter = obs.emitter()
    if emitter.enabled:
        from repro.world.simulator import _run_start_entities

        emitter.emit(
            "run_start", hours=world.hours, workers=len(shards),
            engine="fast", shards=[[h0, h1] for h0, h1 in shards],
            **_run_start_entities(world, emitter),
        )
    dataset = MeasurementDataset(world)
    fallback_reason: Optional[str] = None
    with obs.stage(
        "simulate.month", hours=world.hours, workers=len(shards)
    ) as month_stage:
        results: Optional[List["ShardResult"]] = None
        if not in_process and len(shards) > 1:
            buffer = None
            try:
                buffer = SharedMonthBuffer(world, access.per_hour)
                results = _pool_dispatch(payloads(buffer.name))
                buffer.adopt_into(dataset)
            except _FALLBACK_ERRORS as exc:
                fallback_reason = repr(exc)
                results = None
                obs.logger.warning(
                    "parallel dispatch unavailable (%s); running %d shards "
                    "in-process", exc, len(shards),
                )
                obs.event(
                    "simulate.parallel_fallback", reason=fallback_reason,
                    shards=len(shards),
                )
                obs.registry().counter("parallel_fallback_total").inc()
            finally:
                if buffer is not None:
                    buffer.destroy()
        if results is None:
            results = [_simulate_shard(p) for p in payloads(None)]
            dataset.merge_shards(
                (shard.arrays, (shard.hour_start, shard.hour_stop))
                for shard in results
            )
        registry = obs.registry()
        for i, shard in enumerate(results):
            with obs.span(
                "simulate.shard",
                worker=i,
                hour_start=shard.hour_start,
                hour_stop=shard.hour_stop,
                worker_seconds=round(shard.elapsed_seconds, 6),
                worker_cpu_seconds=round(shard.cpu_seconds, 6),
                transactions=shard.transactions,
            ):
                if shard.metrics:
                    registry.merge_state(shard.metrics)
            # Per-shard wall/CPU accounting: run manifests report
            # aggregate worker compute alongside the parent's wall time.
            registry.gauge(
                "simulate_shard_seconds", worker=str(i)
            ).set(shard.elapsed_seconds)
            registry.counter(
                "simulate_worker_cpu_seconds_total"
            ).inc(shard.cpu_seconds)
        month_stage.add_items(int(dataset.transactions.sum()))
    simulator._commit_outcome_metrics(dataset)
    simulator._attach_provenance(dataset, workers=len(shards))
    if fallback_reason is not None:
        dataset.provenance["parallel_fallback"] = {
            "reason": fallback_reason,
            "shards": len(shards),
        }
    if emitter.enabled:
        from repro.world.simulator import _dataset_totals

        emitter.emit("run_done", **_dataset_totals(dataset))
    return SimulationResult(
        dataset=dataset, truth=simulator.truth, model=simulator.model
    )
