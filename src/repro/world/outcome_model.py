"""The shared probabilistic outcome model.

Maps the hidden :class:`~repro.world.faults.GroundTruth` to per-access
outcome probabilities.  Both engines consume this model -- the fast
simulator vectorised per hour, the detailed engine per single access -- so
their statistics agree by construction and a validation test can hold them
to it.

Key modelling decisions (all mirroring the paper's observations):

* Failures *within* one transaction are correlated: a client WAN outage, a
  server-side problem, or a loss burst affects the retry and the failover
  attempt alike.  Only independent per-replica outages at "spread" sites
  (different subnets) are independent across a transaction's attempts --
  which is exactly why direct clients ride out iitb.ac.in's dead replica
  while the non-failing-over proxy does not (Section 4.7).
* Client connectivity trouble mostly surfaces as a DNS (LDNS timeout)
  failure, precluding TCP -- the mechanism behind the paper's headline
  "server-side problems dominate TCP failures" finding (Section 4.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.world.entities import ClientCategory, World
from repro.world.faults import GroundTruth

#: TCP failure-kind mixes (no_connection, no_response, partial_response)
#: per cause.  The permanent northwestern<->mp3.com pair presents as
#: partial responses (TCP checksum corruption, Section 4.4.2).
CLIENT_SIDE_MIX = (0.85, 0.09, 0.06)
PERMANENT_NOCONN_MIX = (1.0, 0.0, 0.0)
PERMANENT_PARTIAL_MIX = (0.05, 0.05, 0.90)
REPLICA_DOWN_MIX = (1.0, 0.0, 0.0)


@dataclass
class AccessConfig:
    """Client access behaviour (Section 3.1/3.4)."""

    #: wget invocations per client per URL per hour (paper: ~4).
    per_hour: int = 4
    #: wget whole-sequence retry count for ordinary failures.  Ordinary
    #: TCP failures burn wget's patience on slow timeouts, so in practice
    #: only one pass over the address list happens; fast failures
    #: (permanent pairs: RSTs, checksum errors) are retried more.
    tries: int = 1
    permanent_tries: int = 3
    #: Fraction of BB no-connection failures identifiable as such without
    #: packet traces (wget exit codes only); the rest land in the
    #: combined no/partial category (Figure 3).
    bb_noconn_visibility: float = 0.7
    #: A records used per try.
    max_addresses: int = 3
    #: DU virtual clients are active only while their physical host dials
    #: their PoP: 5 hosts cycling 26 PoPs.
    dialup_duty_cycle: float = 5.0 / 26.0


@dataclass
class HourProbabilities:
    """Per-(client, site) probability matrices for one hour.

    Shapes are (C, S) unless noted.  ``tcp_mix_*`` are the blended failure
    kind fractions conditioned on a TCP failure.
    """

    n_expected: np.ndarray  # expected accesses (C, S)
    p_ldns: np.ndarray
    p_nonldns: np.ndarray
    p_dnserr: np.ndarray
    p_tcp: np.ndarray
    tcp_mix_noconn: np.ndarray
    tcp_mix_noresp: np.ndarray
    tcp_mix_partial: np.ndarray
    p_http: np.ndarray
    p_fail_proxied: np.ndarray  # (C, S), only meaningful for proxied rows
    p_replica_all_down: np.ndarray  # (S,)
    replica_eff_fail: np.ndarray  # (S, R) effective per-replica failure


class OutcomeModel:
    """Derives access outcome probabilities from ground truth."""

    def __init__(
        self,
        world: World,
        truth: GroundTruth,
        config: Optional[AccessConfig] = None,
    ) -> None:
        self.world = world
        self.truth = truth
        self.config = config or AccessConfig()
        self._build_static()

    def _build_static(self) -> None:
        world = self.world
        cfg = self.config
        n_c, n_s = len(world.clients), len(world.websites)

        self.proxied = np.array([c.proxied for c in world.clients], dtype=bool)
        self.dialup = np.array(
            [c.category is ClientCategory.DIALUP for c in world.clients], dtype=bool
        )
        self.bb = np.array(
            [c.category is ClientCategory.BROADBAND for c in world.clients],
            dtype=bool,
        )
        self.background_tcp = np.array(
            [self.truth.config.background_tcp[c.category.value] for c in world.clients],
            dtype=np.float32,
        )
        self.background_mix = np.array(
            [
                self.truth.config.background_tcp_mix[c.category.value]
                for c in world.clients
            ],
            dtype=np.float64,
        )  # (C, 3)
        self.n_replicas = np.array(
            [max(1, w.num_replicas) if not w.cdn else 0 for w in world.websites],
            dtype=np.int64,
        )
        #: Addresses wget sees per site (CDN sites return several addresses).
        self.n_addresses = np.array(
            [
                min(cfg.max_addresses, 3 if w.cdn else max(1, w.num_replicas))
                for w in world.websites
            ],
            dtype=np.int64,
        )
        self.redirect_p = np.array(
            [w.redirect_probability for w in world.websites], dtype=np.float32
        )
        self.spread_site = np.array(
            [
                (not w.cdn) and w.multi_replica and not w.replicas_same_subnet
                for w in world.websites
            ],
            dtype=bool,
        )
        # Expected accesses per cell per hour (before uptime masking).
        base = np.full((n_c, n_s), float(cfg.per_hour), dtype=np.float32)
        base[self.dialup, :] *= cfg.dialup_duty_cycle
        self.base_accesses = base

    # -- per-hour matrices ----------------------------------------------------

    def hour(self, h: int) -> HourProbabilities:
        """All probability matrices for hour ``h`` (memoised per hour)."""
        cached = getattr(self, "_hour_cache", None)
        if cached is not None and cached[0] == h:
            return cached[1]
        result = self._compute_hour(h)
        self._hour_cache = (h, result)
        return result

    def _compute_hour(self, h: int) -> HourProbabilities:
        truth = self.truth
        n_c, n_s = len(self.world.clients), len(self.world.websites)

        up = truth.client_up[:, h].astype(np.float32)
        n_expected = self.base_accesses * up[:, None]

        # ---- DNS stage ----
        ldns = truth.ldns_fail[:, h].astype(np.float64)
        wan_dns = truth.wan_dns_fail[:, h].astype(np.float64)
        p_ldns_client = 1.0 - (1.0 - ldns) * (1.0 - wan_dns)
        p_ldns = np.broadcast_to(p_ldns_client[:, None], (n_c, n_s)).copy()
        p_nonldns = np.broadcast_to(
            truth.site_auth_timeout[:, h].astype(np.float64)[None, :], (n_c, n_s)
        ).copy()
        p_dnserr = np.broadcast_to(
            truth.site_dns_error[:, h].astype(np.float64)[None, :], (n_c, n_s)
        ).copy()

        # ---- TCP stage: correlated causes ----
        # Per-replica effective failure (independent part, spread sites).
        r_eff = np.maximum(
            truth.replica_fail[:, :, h], truth.bgp_replica_fail[:, :, h]
        ).astype(np.float64)  # (S, R)
        # Mask out non-existent replicas.
        r_idx = np.arange(r_eff.shape[1])[None, :]
        exists = r_idx < self.n_replicas[:, None]
        p_all_down = np.where(
            self.n_replicas > 0,
            np.prod(np.where(exists, r_eff, 1.0), axis=1),
            0.0,
        )
        p_all_down = np.where(self.n_replicas > 0, p_all_down, 0.0)
        # Only spread sites have a nonzero independent part by construction,
        # but the formula is general.

        site_bad = truth.site_fail[:, h].astype(np.float64)
        # Same-subnet sites: BGP trouble on the shared prefix is a site-wide
        # correlated cause.
        shared_bgp = np.where(
            ~self.spread_site & (self.n_replicas > 0),
            truth.bgp_replica_fail[:, 0, h].astype(np.float64),
            0.0,
        )
        site_corr = 1.0 - (1.0 - site_bad) * (1.0 - shared_bgp)
        site_corr = 1.0 - (1.0 - site_corr) * (
            1.0 - truth.direct_elevated.astype(np.float64)[None, :].ravel()
        )

        client_bad = truth.total_client_tcp_fail()[:, h].astype(np.float64)
        bg = self.background_tcp.astype(np.float64)
        perm = truth.permanent_pair.astype(np.float64)  # (C, S)

        p_site = np.broadcast_to(site_corr[None, :], (n_c, n_s))
        p_client = np.broadcast_to(client_bad[:, None], (n_c, n_s))
        p_bg = np.broadcast_to(bg[:, None], (n_c, n_s))
        p_repl = np.broadcast_to(p_all_down[None, :], (n_c, n_s))

        p_tcp = 1.0 - (
            (1.0 - p_site)
            * (1.0 - p_client)
            * (1.0 - p_bg)
            * (1.0 - perm)
            * (1.0 - p_repl)
        )

        # ---- TCP kind mix: blend by cause weight ----
        mixes = np.zeros((3, n_c, n_s), dtype=np.float64)
        cfg_mix = truth.site_mix
        perm_noconn = (truth.permanent_pair_kind == 1).astype(np.float64) * perm
        perm_partial = (truth.permanent_pair_kind == 2).astype(np.float64) * perm
        for k in range(3):
            mixes[k] = (
                p_site * cfg_mix[k]
                + p_client * CLIENT_SIDE_MIX[k]
                + p_bg * self.background_mix[:, k][:, None]
                + perm_noconn * PERMANENT_NOCONN_MIX[k]
                + perm_partial * PERMANENT_PARTIAL_MIX[k]
                + p_repl * REPLICA_DOWN_MIX[k]
            )
        total_weight = mixes.sum(axis=0)
        safe = total_weight > 0
        for k in range(3):
            mixes[k] = np.where(safe, mixes[k] / np.where(safe, total_weight, 1.0),
                                (1.0, 0.0, 0.0)[k])

        p_http = np.broadcast_to(
            truth.site_http_error[:, h].astype(np.float64)[None, :], (n_c, n_s)
        ).copy()

        # ---- Proxied (CN) clients ----
        # The proxy resolves and fetches without A-record failover; client
        # sees only success or an opaque failure.
        mean_replica_fail = np.where(
            self.n_replicas > 0,
            np.where(exists, r_eff, 0.0).sum(axis=1)
            / np.maximum(1, self.n_replicas),
            0.0,
        )
        p_proxy_dns = (
            truth.site_auth_timeout[:, h].astype(np.float64)
            + truth.site_dns_error[:, h].astype(np.float64)
        )
        p_up = 1.0 - (
            (1.0 - site_corr)
            * (1.0 - mean_replica_fail)
            * (1.0 - truth.proxy_hostile.astype(np.float64))
            * (1.0 - p_proxy_dns)
        )
        p_fail_proxied = 1.0 - (
            (1.0 - np.broadcast_to(p_up[None, :], (n_c, n_s)))
            * (1.0 - p_client)
            * (1.0 - p_bg)
        )

        return HourProbabilities(
            n_expected=n_expected,
            p_ldns=p_ldns,
            p_nonldns=p_nonldns,
            p_dnserr=p_dnserr,
            p_tcp=p_tcp,
            tcp_mix_noconn=mixes[0],
            tcp_mix_noresp=mixes[1],
            tcp_mix_partial=mixes[2],
            p_http=p_http,
            p_fail_proxied=p_fail_proxied,
            p_replica_all_down=p_all_down,
            replica_eff_fail=np.where(exists, r_eff, 0.0),
        )

    # -- single-cell view (detailed engine) -----------------------------------

    def cell(self, client_name: str, site_name: str, h: int) -> Dict[str, float]:
        """Scalar probabilities for one (client, site, hour) cell.

        Returns a plain dict so the detailed engine can translate the
        probabilities into concrete substrate states.
        """
        ci = self.world.client_idx(client_name)
        si = self.world.site_idx(site_name)
        hour = self.hour(h)
        r = self.n_replicas[si]
        return {
            "up": bool(self.truth.client_up[ci, h]),
            "p_ldns": float(hour.p_ldns[ci, si]),
            "p_nonldns": float(hour.p_nonldns[ci, si]),
            "p_dnserr": float(hour.p_dnserr[ci, si]),
            "p_tcp": float(hour.p_tcp[ci, si]),
            "mix": (
                float(hour.tcp_mix_noconn[ci, si]),
                float(hour.tcp_mix_noresp[ci, si]),
                float(hour.tcp_mix_partial[ci, si]),
            ),
            "p_http": float(hour.p_http[ci, si]),
            "p_fail_proxied": float(hour.p_fail_proxied[ci, si]),
            "replica_fail": [
                float(hour.replica_eff_fail[si, ri]) for ri in range(r)
            ],
        }
