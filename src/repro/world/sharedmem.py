"""Shared-memory transfer of shard counts between worker processes.

The parallel engine used to pickle every worker's full count arrays back
through the process pool: ~50 MB of serialized numpy per month shipped
over a pipe, copied twice, then re-summed through the dtype-promotion
ladder.  This module replaces the transfer with one
``multiprocessing.shared_memory`` block sized for the whole month: the
parent creates it, every worker attaches and writes its *disjoint*
contiguous hour slice directly (no locks needed -- shards partition the
hour axis), and the parent adopts the finished arrays with a single
bulk copy per field.

Layout is deterministic: field order follows
``MeasurementDataset._ARRAY_FIELDS``, every field is aligned to its
itemsize, and dtypes come from
:meth:`~repro.core.dataset.MeasurementDataset.planned_dtypes` -- sized
once, up front, from the access configuration, because a shared block
cannot be promoted mid-run.  Workers recompute the same layout from the
same ``(world, per_hour)`` inputs, so only the block *name* rides the
task payload.

Lifecycle: the parent owns the block and unlinks it in a ``finally`` --
on success, on worker crash, and on KeyboardInterrupt.  Workers must
detach their resource-tracker registration on attach (Python < 3.13
registers attached segments too) or the tracker would unlink the
parent's live block when the first worker exits.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dataset import MeasurementDataset
from repro.world.entities import World

_REPLICA_FIELDS = ("replica_connections", "replica_failed_connections")


@dataclass(frozen=True)
class FieldSpec:
    """One count array's placement inside the shared block."""

    name: str
    dtype: np.dtype
    shape: Tuple[int, ...]
    offset: int


def plan_layout(world: World, per_hour: int) -> Tuple[List[FieldSpec], int]:
    """Field placements plus total byte size for one month-wide block.

    Pure function of ``(world, per_hour)``: parent and workers derive
    identical layouts independently.
    """
    c, s = len(world.clients), len(world.websites)
    r = max(1, world.max_replicas())
    h = world.hours
    dtypes = MeasurementDataset.planned_dtypes(world, per_hour)
    fields: List[FieldSpec] = []
    offset = 0
    for name in MeasurementDataset._ARRAY_FIELDS:
        shape = (s, r, h) if name in _REPLICA_FIELDS else (c, s, h)
        dtype = np.dtype(dtypes[name])
        # Align to the itemsize so every view is a native-aligned array.
        offset = -(-offset // dtype.itemsize) * dtype.itemsize
        fields.append(FieldSpec(name, dtype, shape, offset))
        offset += int(np.prod(shape)) * dtype.itemsize
    return fields, max(1, offset)


def _views(shm: shared_memory.SharedMemory,
           layout: List[FieldSpec]) -> Dict[str, np.ndarray]:
    return {
        spec.name: np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        for spec in layout
    }


class SharedMonthBuffer:
    """Parent-side owner of the month-wide shared count block."""

    def __init__(self, world: World, per_hour: int) -> None:
        self.layout, self.size = plan_layout(world, per_hour)
        self._shm = shared_memory.SharedMemory(create=True, size=self.size)
        #: POSIX shared memory is zero-filled on creation, so fields need
        #: no explicit clear before workers write their hour slices.
        self.name = self._shm.name
        self.arrays = _views(self._shm, self.layout)

    def adopt_into(self, dataset: MeasurementDataset) -> None:
        """Copy every finished field into ``dataset`` (one pass each).

        The dataset's arrays are promoted to fit each field's actual
        peak first, so the copy itself can never wrap.
        """
        for spec in self.layout:
            view = self.arrays[spec.name]
            peak = int(view.max()) if view.size else 0
            dataset.ensure_count_capacity(peak, fields=(spec.name,))
            getattr(dataset, spec.name)[...] = view

    def destroy(self) -> None:
        """Detach and unlink; safe to call more than once."""
        self.arrays = {}
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass


def attach_shard_arrays(
    name: str, world: World, per_hour: int, hour_start: int, hour_stop: int
) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Worker-side attach: views restricted to ``[hour_start, hour_stop)``.

    The returned views cover only this shard's hour slice, so a sink
    writing through them cannot touch another worker's hours, and
    summing a view observes only this shard's counts.  Caller closes the
    returned segment when the shard is done (the parent unlinks).
    """
    layout, _ = plan_layout(world, per_hour)
    # Attaching registers the segment with the resource tracker (fixed
    # only in Python 3.13's track=False).  Under *spawn* the worker owns
    # a private tracker that would unlink the parent's live block when
    # the worker exits, so the registration must be dropped.  Under
    # *fork* the tracker process is shared with the parent -- there the
    # re-registration is an idempotent set-add that must be left alone,
    # or the parent's own unlink-time unregister would double-remove.
    # A tracker already running before we attach means it was inherited.
    tracker_inherited = (
        resource_tracker._resource_tracker._fd is not None
    )
    shm = shared_memory.SharedMemory(name=name)
    if not tracker_inherited:
        resource_tracker.unregister(shm._name, "shared_memory")
    views = _views(shm, layout)
    sliced = {
        field: view[..., hour_start:hour_stop]
        for field, view in views.items()
    }
    return shm, sliced
