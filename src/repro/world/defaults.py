"""The default world: the paper's client and website rosters.

Builds the 134-client roster of Table 1 (95 PlanetLab nodes across 64
sites, 26 dialup "virtual clients" / PoPs, 5 proxied CorpNet clients plus
SEAEXT, and 7 broadband clients) and the 80 websites of Table 2, with the
replica structure reported in Section 4.5 (6 CDN-served sites with no
qualifying replica, 42 single-replica sites, 32 multi-replica sites, almost
all of the latter with replicas on one /24).

Named hosts the paper discusses individually (nodea.howard.edu, the
Intel-Pittsburgh / KAIST / Columbia co-located groups, the kscy Internet2
node, the northwestern.edu<->mp3.com pair) are present under their real
names so the scenario analyses can target them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addressing import AddressAllocator, IPv4Address, Prefix
from repro.world.entities import (
    Client,
    ClientCategory,
    ProxySpec,
    Replica,
    SiteCategory,
    SiteRegion,
    Website,
    World,
)

#: Default experiment length: Jan 1 - Feb 1 2005 = 31 days (Section 3.1).
DEFAULT_HOURS = 744

# --------------------------------------------------------------------------
# PlanetLab sites.  (site_key, node_count, region, dual_prefix)
# The first eleven are the sites the paper names; the rest are synthetic
# fills matching the Table 1 mix (50 US-EDU, 19 US-ORG, 4 US-COM, 5 US-NET,
# 13 Europe, 4 Asia -- these are node counts).
# --------------------------------------------------------------------------

_PL_NAMED_SITES: List[Tuple[str, List[str], SiteRegion, bool]] = [
    (
        "pittsburgh.intel-research.net",
        ["planet1.pittsburgh.intel-research.net", "planet2.pittsburgh.intel-research.net"],
        SiteRegion.US,
        False,
    ),
    (
        "kaist.ac.kr",
        ["csplanetlab1.kaist.ac.kr", "csplanetlab3.kaist.ac.kr", "csplanetlab4.kaist.ac.kr"],
        SiteRegion.ASIA,
        True,
    ),
    (
        "comet.columbia.edu",
        [
            "planetlab1.comet.columbia.edu",
            "planetlab2.comet.columbia.edu",
            "planetlab3.comet.columbia.edu",
        ],
        SiteRegion.US,
        False,
    ),
    ("howard.edu", ["nodea.howard.edu"], SiteRegion.US, True),
    (
        "kscy.internet2.planet-lab.org",
        ["planetlab1.kscy.internet2.planet-lab.org"],
        SiteRegion.US,
        False,
    ),
    ("northwestern.edu", ["planetlab1.northwestern.edu"], SiteRegion.US, False),
    ("hp.com", ["planetlab1.hp.com"], SiteRegion.US, False),
    ("epfl.ch", ["planetlab1.epfl.ch"], SiteRegion.EUROPE, False),
    ("nyu.edu", ["planetlab1.nyu.edu"], SiteRegion.US, False),
    ("unito.it", ["planetlab1.unito.it"], SiteRegion.EUROPE, False),
    ("postel.org", ["planetlab1.postel.org"], SiteRegion.US, True),
]

#: Synthetic fill sites: 26 dual-node + 27 single-node = 79 nodes, 53 sites.
_PL_FILL_DUAL = [
    "cs.aurora.edu", "cs.bigten.edu", "net.cascadia.edu", "cs.dunes.edu",
    "cs.eastlake.edu", "cs.foothill.edu", "cs.greatplains.edu", "cs.harborview.edu",
    "cs.ironwood.edu", "cs.juniperridge.edu", "cs.keystone.edu", "cs.lakeshore.edu",
    "cs.mesaverde.edu", "cs.northgate.edu", "cs.oakhollow.edu", "cs.pinecrest.edu",
    "research.quartz.org", "research.redcedar.org", "research.stonebridge.org",
    "research.tamarack.org", "net.ultraviolet.net", "net.vantage.net",
    "inf.westfjord.eu", "inf.xanten.eu", "inf.yarrow.eu", "cs.zephyr.ac.asia",
]
_PL_FILL_SINGLE = [
    "cs.alder.edu", "cs.basalt.edu", "cs.cobalt.edu", "cs.dogwood.edu",
    "cs.elmwood.edu", "cs.fernhill.edu", "cs.garnet.edu", "cs.hawthorn.edu",
    "cs.inlet.edu", "cs.jasper.edu", "cs.kestrel.edu", "cs.larkspur.edu",
    "cs.meridian.edu", "cs.nimbus.edu", "research.obsidian.org", "research.palisade.org",
    "research.quill.org", "research.rowan.org", "research.sable.org",
    "research.thicket.org", "corp.umber.com", "corp.verdant.com",
    "net.willow.net", "net.xenia.net", "inf.yewtree.eu", "inf.zugspitze.eu",
    "inf.aland.eu",
]

_PL_FILL_REGION = {name: SiteRegion.EUROPE for name in [
    "inf.westfjord.eu", "inf.xanten.eu", "inf.yarrow.eu",
    "inf.yewtree.eu", "inf.zugspitze.eu", "inf.aland.eu",
]}
_PL_FILL_REGION.update({"cs.zephyr.ac.asia": SiteRegion.ASIA})

# --------------------------------------------------------------------------
# Dialup PoPs: Table 1's cities x providers.  I=ICG, L=Level3, Q=Qwest,
# U=UUNet.  5 physical clients in Seattle dial into 26 PoPs = 26 virtual
# clients.
# --------------------------------------------------------------------------

_DU_POPS: List[Tuple[str, str]] = [
    ("boston", "ICG"), ("boston", "Level3"), ("boston", "Qwest"),
    ("chicago", "ICG"), ("chicago", "Level3"), ("chicago", "Qwest"),
    ("houston", "ICG"), ("houston", "Level3"), ("houston", "Qwest"),
    ("newyork", "ICG"), ("newyork", "Qwest"), ("newyork", "UUNet"),
    ("pittsburgh", "ICG"), ("pittsburgh", "Level3"), ("pittsburgh", "Qwest"),
    ("sandiego", "ICG"), ("sandiego", "Level3"), ("sandiego", "Qwest"),
    ("sanfrancisco", "ICG"), ("sanfrancisco", "Level3"), ("sanfrancisco", "Qwest"),
    ("seattle", "ICG"), ("seattle", "Level3"), ("seattle", "Qwest"),
    ("washdc", "ICG"), ("washdc", "Level3"),
]

# --------------------------------------------------------------------------
# CorpNet nodes and Broadband clients.
# --------------------------------------------------------------------------

_CN_NODES = [
    ("SEA1", "seattle", "proxy-sea1", SiteRegion.US),
    ("SEA2", "seattle", "proxy-sea2", SiteRegion.US),
    ("SF", "sanfrancisco", "proxy-sf", SiteRegion.US),
    ("UK", "uk", "proxy-uk", SiteRegion.EUROPE),
    ("CHN", "china", "proxy-chn", SiteRegion.ASIA),
]

_BB_CLIENTS = [
    # (name, site, city, provider)  -- pairs share a site (co-located).
    ("bb-rr-sd-1", "roadrunner-sandiego", "sandiego", "Roadrunner"),
    ("bb-rr-sd-2", "roadrunner-sandiego", "sandiego", "Roadrunner"),
    ("bb-vz-sea-1", "verizon-seattle", "seattle", "Verizon"),
    ("bb-vz-sea-2", "verizon-seattle", "seattle", "Verizon"),
    ("bb-se-sea-1", "speakeasy-seattle", "seattle", "Speakeasy"),
    ("bb-sbc-pit-1", "sbc-pittsburgh", "pittsburgh", "SBC"),
    ("bb-sbc-sf-1", "sbc-sanfrancisco", "sanfrancisco", "SBC"),
]

# --------------------------------------------------------------------------
# Websites: Table 2 verbatim (mp.com read as mp3.com per Section 4.4.2).
# --------------------------------------------------------------------------

WEBSITES_BY_CATEGORY: Dict[SiteCategory, List[str]] = {
    SiteCategory.US_EDU: [
        "berkeley.edu", "washington.edu", "cmu.edu", "umn.edu",
        "caltech.edu", "nmt.edu", "ufl.edu", "mit.edu",
    ],
    SiteCategory.US_POPULAR: [
        "amazon.com", "microsoft.com", "ebay.com", "mapquest.com", "cnn.com",
        "cnnsi.com", "webmd.com", "espn.go.com", "sportsline.com",
        "expedia.com", "orbitz.com", "imdb.com", "google.com", "yahoo.com",
        "games.yahoo.com", "weather.yahoo.com", "msn.com", "passport.net",
        "aol.com", "nytimes.com", "lycos.com", "cnet.com",
    ],
    SiteCategory.US_MISC: [
        "latimes.com", "nfl.com", "pbs.org", "cisco.com", "juniper.net",
        "ibm.com", "fastclick.com", "advertising.com", "slashdot.org",
        "un.org", "craigslist.org", "state.gov", "nih.gov", "nasa.gov",
        "mp3.com",
    ],
    SiteCategory.INTL_EDU: [
        "iitb.ac.in", "iitm.ac.in", "technion.ac.il", "cs.technion.ac.il",
        "ucl.ac.uk", "cs.ucl.ac.uk", "cam.ac.uk", "inria.fr", "hku.hk",
        "nus.edu.sg",
    ],
    SiteCategory.INTL_POPULAR: [
        "amazon.co.uk", "amazon.co.jp", "bbc.co.uk", "muenchen.de",
        "terra.com", "alibaba.com", "wanadoo.fr", "sohu.com", "sina.com.hk",
        "cosmos.com.mx", "msn.com.tw", "msn.co.in", "google.co.uk",
        "google.co.jp", "sina.com.cn",
    ],
    SiteCategory.INTL_MISC: [
        "lufthansa.com", "english.pravda.ru", "rediff.com", "samachar.com",
        "chinabroadcast.cn", "nttdocomo.co.jp", "sony.co.jp", "brazzil.com",
        "royal.gov.uk", "direct.gov.uk",
    ],
}

#: Sites served by large CDNs: no single address passes the 10% replica
#: qualification rule (6 sites, Section 4.5).
CDN_SITES = {"cnn.com", "msn.com", "expedia.com", "lycos.com", "cnet.com", "mapquest.com"}

#: Multi-replica sites (32, Section 4.5).  All but the "spread" set below
#: keep their replicas on one /24 (the cause of total-replica failures).
MULTI_REPLICA_SITES: Dict[str, int] = {
    "amazon.com": 2, "microsoft.com": 3, "ebay.com": 2, "cnnsi.com": 2,
    "webmd.com": 2, "espn.go.com": 2, "sportsline.com": 2, "orbitz.com": 2,
    "imdb.com": 2, "google.com": 3, "yahoo.com": 3, "games.yahoo.com": 2,
    "weather.yahoo.com": 2, "passport.net": 2, "aol.com": 3, "nytimes.com": 2,
    "latimes.com": 2, "nfl.com": 2, "cisco.com": 2, "ibm.com": 3,
    "advertising.com": 2, "craigslist.org": 2, "nasa.gov": 2,
    "iitb.ac.in": 3, "technion.ac.il": 2, "ucl.ac.uk": 2, "cam.ac.uk": 2,
    "amazon.co.uk": 2, "bbc.co.uk": 3, "google.co.uk": 2, "google.co.jp": 2,
    "sina.com.cn": 2,
}

#: Multi-replica sites whose replicas live on *different* subnets; these
#: are the sites that can suffer partial replica failures (Section 4.5 /
#: Section 4.7 -- iitb.ac.in's three addresses fail independently).
SPREAD_REPLICA_SITES = {"iitb.ac.in", "bbc.co.uk", "ibm.com", "aol.com", "microsoft.com"}

#: Sites that answer the bare index request with a redirect (HTTP 302) --
#: a driver of connections-per-transaction > 1 (Table 3).
REDIRECTING_SITES = {
    "espn.go.com": 1.0, "passport.net": 1.0, "aol.com": 1.0,
    "google.co.uk": 1.0, "google.co.jp": 1.0, "msn.co.in": 1.0,
    "amazon.com": 0.5, "nytimes.com": 0.5, "wanadoo.fr": 1.0,
    "terra.com": 0.5, "state.gov": 1.0, "lufthansa.com": 1.0,
    "direct.gov.uk": 0.5, "webmd.com": 0.5,
}

_REGION_BY_CATEGORY = {
    SiteCategory.US_EDU: SiteRegion.US,
    SiteCategory.US_POPULAR: SiteRegion.US,
    SiteCategory.US_MISC: SiteRegion.US,
}

_INTL_REGION_OVERRIDES = {
    "iitb.ac.in": SiteRegion.ASIA, "iitm.ac.in": SiteRegion.ASIA,
    "technion.ac.il": SiteRegion.ASIA, "cs.technion.ac.il": SiteRegion.ASIA,
    "hku.hk": SiteRegion.ASIA, "nus.edu.sg": SiteRegion.ASIA,
    "sohu.com": SiteRegion.ASIA, "sina.com.hk": SiteRegion.ASIA,
    "alibaba.com": SiteRegion.ASIA, "msn.com.tw": SiteRegion.ASIA,
    "msn.co.in": SiteRegion.ASIA, "sina.com.cn": SiteRegion.ASIA,
    "amazon.co.jp": SiteRegion.ASIA, "google.co.jp": SiteRegion.ASIA,
    "chinabroadcast.cn": SiteRegion.ASIA, "nttdocomo.co.jp": SiteRegion.ASIA,
    "sony.co.jp": SiteRegion.ASIA, "rediff.com": SiteRegion.ASIA,
    "samachar.com": SiteRegion.ASIA,
    "terra.com": SiteRegion.OTHER, "cosmos.com.mx": SiteRegion.OTHER,
    "brazzil.com": SiteRegion.OTHER, "english.pravda.ru": SiteRegion.EUROPE,
}


def _website_region(name: str, category: SiteCategory) -> SiteRegion:
    if category in _REGION_BY_CATEGORY:
        return _REGION_BY_CATEGORY[category]
    return _INTL_REGION_OVERRIDES.get(name, SiteRegion.EUROPE)


def _make_client(
    name: str,
    category: ClientCategory,
    site: str,
    region: SiteRegion,
    allocator: AddressAllocator,
    site_prefixes: Dict[str, Tuple[Prefix, ...]],
    dual: bool = False,
    proxy_name: Optional[str] = None,
    provider: Optional[str] = None,
    city: Optional[str] = None,
) -> Client:
    """Build a client, reusing its site's prefix if already allocated."""
    if site not in site_prefixes:
        if dual:
            covering = allocator.allocate_prefix(16)
            specific = Prefix(covering.network, 24)
            site_prefixes[site] = (specific, covering)
        else:
            site_prefixes[site] = (allocator.allocate_prefix(24),)
    prefixes = site_prefixes[site]
    address = allocator.allocate_address(prefixes[0])
    return Client(
        name=name,
        category=category,
        site=site,
        region=region,
        address=address,
        prefixes=prefixes,
        proxy_name=proxy_name,
        provider=provider,
        city=city,
    )


def _build_planetlab(
    allocator: AddressAllocator, site_prefixes: Dict[str, Tuple[Prefix, ...]]
) -> List[Client]:
    clients: List[Client] = []
    for site, node_names, region, dual in _PL_NAMED_SITES:
        for node in node_names:
            clients.append(
                _make_client(
                    node, ClientCategory.PLANETLAB, site, region,
                    allocator, site_prefixes, dual=dual,
                )
            )
    dual_flags = {site: (i % 4 == 0) for i, site in enumerate(_PL_FILL_DUAL)}
    for site in _PL_FILL_DUAL:
        region = _PL_FILL_REGION.get(site, SiteRegion.US)
        for n in (1, 2):
            clients.append(
                _make_client(
                    f"planetlab{n}.{site}", ClientCategory.PLANETLAB, site,
                    region, allocator, site_prefixes, dual=dual_flags[site],
                )
            )
    for i, site in enumerate(_PL_FILL_SINGLE):
        region = _PL_FILL_REGION.get(site, SiteRegion.US)
        clients.append(
            _make_client(
                f"planetlab1.{site}", ClientCategory.PLANETLAB, site, region,
                allocator, site_prefixes, dual=(i % 5 == 0),
            )
        )
    return clients


def _build_dialup(
    allocator: AddressAllocator, site_prefixes: Dict[str, Tuple[Prefix, ...]]
) -> List[Client]:
    clients = []
    for city, provider in _DU_POPS:
        site = f"pop-{provider.lower()}-{city}"
        clients.append(
            _make_client(
                f"du-{provider.lower()}-{city}", ClientCategory.DIALUP, site,
                SiteRegion.US, allocator, site_prefixes,
                provider=provider, city=city,
            )
        )
    return clients


def _build_corpnet(
    allocator: AddressAllocator, site_prefixes: Dict[str, Tuple[Prefix, ...]]
) -> Tuple[List[Client], List[ProxySpec]]:
    clients = []
    proxies = []
    for name, location, proxy_name, region in _CN_NODES:
        site = f"corp-{location}"
        clients.append(
            _make_client(
                name, ClientCategory.CORPNET, site, region,
                allocator, site_prefixes, proxy_name=proxy_name, city=location,
            )
        )
        proxy_prefix = site_prefixes[site][0]
        proxies.append(
            ProxySpec(
                name=proxy_name,
                location="japan" if name == "CHN" else location,
                address=allocator.allocate_address(proxy_prefix),
                prefix=proxy_prefix,
            )
        )
    # SEAEXT: outside the firewall/proxy, same WAN connectivity (prefix) as
    # SEA1/SEA2 but its own site key, so it is not treated as co-located.
    site_prefixes["corp-seattle-ext"] = site_prefixes["corp-seattle"]
    clients.append(
        _make_client(
            "SEAEXT", ClientCategory.CORPNET, "corp-seattle-ext",
            SiteRegion.US, allocator, site_prefixes, city="seattle",
        )
    )
    return clients, proxies


def _build_broadband(
    allocator: AddressAllocator, site_prefixes: Dict[str, Tuple[Prefix, ...]]
) -> List[Client]:
    clients = []
    for name, site, city, provider in _BB_CLIENTS:
        clients.append(
            _make_client(
                name, ClientCategory.BROADBAND, site, SiteRegion.US,
                allocator, site_prefixes, provider=provider, city=city,
            )
        )
    return clients


def _build_websites(allocator: AddressAllocator) -> List[Website]:
    websites: List[Website] = []
    size_cycle = (8000, 15000, 24000, 40000, 64000, 12000, 30000, 52000)
    counter = 0
    for category, names in WEBSITES_BY_CATEGORY.items():
        for name in names:
            counter += 1
            index_bytes = size_cycle[counter % len(size_cycle)]
            region = _website_region(name, category)
            redirect_p = REDIRECTING_SITES.get(name, 0.0)
            # The bare hostname bounces to a www alias served by the same
            # replicas (the common 2005 pattern); the alias serves content.
            redirect_to = f"www.{name}" if redirect_p > 0 else None
            if name in CDN_SITES:
                websites.append(
                    Website(
                        name=name, category=category, region=region,
                        replicas=(), cdn=True, cdn_pool_size=200,
                        index_bytes=index_bytes,
                        redirect_probability=redirect_p, redirect_to=redirect_to,
                    )
                )
                continue
            n_replicas = MULTI_REPLICA_SITES.get(name, 1)
            spread = name in SPREAD_REPLICA_SITES
            replicas = []
            if spread:
                for _ in range(n_replicas):
                    prefix = allocator.allocate_prefix(24)
                    replicas.append(
                        Replica(
                            address=allocator.allocate_address(prefix),
                            prefixes=(prefix,),
                        )
                    )
            else:
                prefix = allocator.allocate_prefix(24)
                for _ in range(n_replicas):
                    replicas.append(
                        Replica(
                            address=allocator.allocate_address(prefix),
                            prefixes=(prefix,),
                        )
                    )
            websites.append(
                Website(
                    name=name, category=category, region=region,
                    replicas=tuple(replicas), replicas_same_subnet=not spread,
                    index_bytes=index_bytes,
                    redirect_probability=redirect_p, redirect_to=redirect_to,
                )
            )
    return websites


def build_default_world(hours: int = DEFAULT_HOURS, seed: int = 0) -> World:
    """Build the paper's world: 134 clients, 80 websites, 5 proxies.

    ``hours`` sets the experiment duration (744 = the paper's month);
    ``seed`` perturbs only address assignment, not roster structure.
    """
    if hours < 1:
        raise ValueError("need at least one hour")
    allocator = AddressAllocator(seed=seed)
    site_prefixes: Dict[str, Tuple[Prefix, ...]] = {}
    clients: List[Client] = []
    clients.extend(_build_planetlab(allocator, site_prefixes))
    clients.extend(_build_dialup(allocator, site_prefixes))
    cn_clients, proxies = _build_corpnet(allocator, site_prefixes)
    clients.extend(cn_clients)
    clients.extend(_build_broadband(allocator, site_prefixes))
    websites = _build_websites(allocator)
    return World(clients=clients, websites=websites, proxies=proxies, hours=hours)
