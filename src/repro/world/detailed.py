"""The detailed, message-level engine.

Drives the *real* substrates -- stub resolver against a full DNS hierarchy,
wget with failover/retries over simulated TCP connections with packet
traces, corporate proxies -- for individual transactions.  The hidden fault
scenario for each transaction is sampled from the same
:class:`~repro.world.outcome_model.OutcomeModel` the fast engine uses, then
*realized mechanistically*: a "server down" draw makes the authoritative
TCP endpoint stop answering SYNs, and the failure the client records is
whatever wget and the trace post-processing actually produce.

This engine is the ground for the substrate-integration tests, the example
scripts, and the engine-agreement ablation; the fast engine covers
full-month scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.records import (
    DNSFailureKind,
    FailureType,
    PerformanceRecord,
    RecordBatch,
    TCPFailureKind,
)
from repro.dns.iterative import IterativeDigger
from repro.dns.message import RCode
from repro.dns.resolver import (
    LDNSPath,
    ResolutionOutcome,
    ResolutionStatus,
    StubResolver,
)
from repro.dns.server import (
    AuthoritativeServer,
    DNSHierarchy,
    RecursiveResolverServer,
    Zone,
)
from repro.http.message import HTTPRequest, HTTPResponse
from repro.http.proxy import CachingProxy, ProxyTransport
from repro.http.server import OriginFleet, ReplicaApp, SiteContent
from repro.http.wget import FetchResult, Transport, TransactionResult, WgetClient
from repro.net.addressing import IPv4Address
from repro.net.latency import LatencyModel, bandwidth_for_category
from repro.net.loss import BernoulliLossModel
from repro.net.packet import PacketBuilder
from repro.tcp.connection import ConnectionOutcome, ServerBehavior, TCPConnection
from repro.tcp.trace import PacketTrace
from repro.tcp.trace_analysis import TraceVerdict, analyze_trace
from repro.world.entities import Client, ClientCategory, Website, World
from repro.world.faults import GroundTruth
from repro.world.outcome_model import AccessConfig, OutcomeModel
from repro.world.rng import RNGRegistry

#: Root/TLD server addresses live in a reserved block.
_INFRA_BASE = 0x0A000000 + 0x100  # 10.0.1.0


@dataclass
class Scenario:
    """One transaction's realized hidden state."""

    ldns_down: bool = False
    #: When the LDNS timeout stems from broken client connectivity (the
    #: dominant case), the iterative dig's root walk fails too.
    client_net_down: bool = False
    auth_down: bool = False
    dns_error: bool = False
    tcp_kind: Optional[TCPFailureKind] = None  # site/client/background cause
    replica_down: Tuple[bool, ...] = ()
    http_error: bool = False
    proxied_fail: bool = False


class DetailedEngine:
    """Runs individual transactions through the full substrate stack."""

    def __init__(
        self,
        world: World,
        truth: GroundTruth,
        access: Optional[AccessConfig] = None,
        rngs: Optional[RNGRegistry] = None,
    ) -> None:
        self.world = world
        self.truth = truth
        self.access = access or AccessConfig()
        self.rngs = rngs or RNGRegistry()
        self.model = OutcomeModel(world, truth, self.access)
        self._rng = self.rngs.stream("detailed-engine")
        self._build_dns()
        self._build_origins()
        self._client_state: Dict[str, dict] = {}

    # -- world construction ---------------------------------------------------

    def _build_dns(self) -> None:
        """Root -> TLD -> site-zone hierarchy with real delegations."""
        self.hierarchy = DNSHierarchy()
        rng = self.rngs.stream("detailed-dns")
        next_addr = [_INFRA_BASE]

        def infra_address() -> IPv4Address:
            addr = IPv4Address(next_addr[0])
            next_addr[0] += 1
            return addr

        root_zone = Zone(name="")
        tld_zones: Dict[str, Zone] = {}
        self._site_servers: Dict[str, AuthoritativeServer] = {}

        for site in self.world.websites:
            tld = site.name.rsplit(".", 1)[-1]
            if tld not in tld_zones:
                tld_zones[tld] = Zone(name=tld)
            # Site zone with its A records.
            zone = Zone(name=site.name)
            addresses = (
                [r.address for r in site.replicas]
                if not site.cdn
                else [infra_address() for _ in range(3)]
            )
            zone.add_a(site.name, addresses)
            if site.redirect_to:
                # The www alias the bare name bounces to, same replicas.
                zone.add_a(site.redirect_to, addresses)
            server = AuthoritativeServer(
                name=f"ns1.{site.name}", address=infra_address(), zone=zone
            )
            self.hierarchy.register(server)
            self._site_servers[site.name] = server
            tld_zones[tld].delegate(site.name, [(server.name, server.address)])

        for tld, zone in tld_zones.items():
            server = AuthoritativeServer(
                name=f"ns.{tld}-tld", address=infra_address(), zone=zone
            )
            self.hierarchy.register(server)
            root_zone.delegate(tld, [(server.name, server.address)])

        for i in range(2):
            self.hierarchy.register(
                AuthoritativeServer(
                    name=f"{chr(ord('a') + i)}.root", address=infra_address(),
                    zone=root_zone,
                ),
                is_root=True,
            )

    def _build_origins(self) -> None:
        self.fleet = OriginFleet()
        for site in self.world.websites:
            content = SiteContent(
                index_bytes=site.index_bytes,
                redirect_to=site.redirect_to,
                redirect_probability=site.redirect_probability,
            )
            for replica in site.replicas:
                self.fleet.register(
                    ReplicaApp(
                        address=replica.address,
                        site_name=site.name,
                        content=content,
                    )
                )
            if site.cdn:
                # CDN edge nodes: the zone's synthetic addresses.
                zone = self._site_servers[site.name].zone
                for address in zone.a_records[site.name]:
                    self.fleet.register(
                        ReplicaApp(
                            address=address, site_name=site.name, content=content
                        )
                    )

    def _state_for(self, client: Client) -> dict:
        """Per-client substrate objects, built lazily."""
        state = self._client_state.get(client.name)
        if state is not None:
            return state
        rng = self.rngs.stream(f"client:{client.name}")
        ldns = RecursiveResolverServer(
            name=f"ldns.{client.site}",
            address=IPv4Address(client.address.value ^ 0x1),
            hierarchy=self.hierarchy,
            rng=rng,
        )
        path = LDNSPath(ldns)
        resolver = StubResolver(path, rng)
        latency = LatencyModel(client.category.value, rng)
        state = {
            "rng": rng,
            "ldns": ldns,
            "path": path,
            "resolver": resolver,
            "latency": latency,
            "digger": IterativeDigger(path, self.hierarchy, rng),
            "port": 40000,
        }
        if client.proxied:
            proxy_rng = self.rngs.stream(f"proxy:{client.proxy_name}")
            proxy_ldns = RecursiveResolverServer(
                name=f"ldns.{client.proxy_name}",
                address=IPv4Address(client.address.value ^ 0x2),
                hierarchy=self.hierarchy,
                rng=proxy_rng,
            )
            proxy_path = LDNSPath(proxy_ldns)
            proxy_resolver = StubResolver(proxy_path, proxy_rng)
            upstream = _DirectTransport(self, client, state, proxy_mode=True)
            proxy_spec = next(
                p for p in self.world.proxies if p.name == client.proxy_name
            )
            proxy = CachingProxy(
                name=client.proxy_name or "proxy",
                resolver=proxy_resolver,
                upstream=upstream,
                rng=proxy_rng,
            )
            state["proxy"] = proxy
            state["proxy_transport"] = ProxyTransport(
                proxy, proxy_spec.address, proxy_rng
            )
        self._client_state[client.name] = state
        return state

    # -- scenario sampling -------------------------------------------------------

    def _sample_scenario(self, client: Client, site: Website, hour: int) -> Scenario:
        cell = self.model.cell(client.name, site.name, hour)
        rng = self._rng
        scenario = Scenario()
        if client.proxied:
            scenario.proxied_fail = rng.random() < cell["p_fail_proxied"]
            return scenario
        u = rng.random()
        if u < cell["p_ldns"]:
            scenario.ldns_down = True
            # Most LDNS timeouts are connectivity problems, not just a dead
            # resolver host; the paper's dig fails in >94% of DNS failures.
            scenario.client_net_down = rng.random() < 0.9
            return scenario
        u = rng.random()
        if u < cell["p_nonldns"]:
            scenario.auth_down = True
            return scenario
        u = rng.random()
        if u < cell["p_dnserr"]:
            scenario.dns_error = True
            return scenario
        # Replica-level state persists for the transaction.
        scenario.replica_down = tuple(
            rng.random() < p for p in cell["replica_fail"]
        )
        # Correlated TCP causes, minus the all-replica-down component that
        # the replica draws realize mechanistically.
        p_corr = cell["p_tcp"]
        replica_part = 1.0
        for p in cell["replica_fail"]:
            replica_part *= p
        p_corr = max(0.0, (p_corr - replica_part) / max(1e-12, 1.0 - replica_part))
        if rng.random() < p_corr:
            noconn, noresp, partial = cell["mix"]
            v = rng.random() * max(1e-12, noconn + noresp + partial)
            if v < noconn:
                scenario.tcp_kind = TCPFailureKind.NO_CONNECTION
            elif v < noconn + noresp:
                scenario.tcp_kind = TCPFailureKind.NO_RESPONSE
            else:
                scenario.tcp_kind = TCPFailureKind.PARTIAL_RESPONSE
            return scenario
        if rng.random() < cell["p_http"]:
            scenario.http_error = True
        return scenario

    # -- transaction execution ----------------------------------------------------

    def run_transaction(
        self, client_name: str, site_name: str, hour: int, offset_seconds: float = 0.0
    ) -> Tuple[PerformanceRecord, TransactionResult]:
        """Run one download and return (record, raw wget result)."""
        record, result, _ = self.run_transaction_with_dig(
            client_name, site_name, hour, offset_seconds, run_dig=False
        )
        return record, result

    def run_transaction_with_dig(
        self,
        client_name: str,
        site_name: str,
        hour: int,
        offset_seconds: float = 0.0,
        run_dig: bool = True,
    ):
        """Run one download plus the Section 3.4 step-3 iterative dig.

        The dig runs *inside* the transaction's fault scenario -- the fault
        (a dead LDNS, an unreachable authoritative) persists across the two
        back-to-back lookups, which is why the paper finds the dig fails
        whenever wget's DNS does, in over 94% of cases.  Returns
        (record, wget result, DigResult | None).
        """
        client = self.world.client_named(client_name)
        site = self.world.website_named(site_name)
        if not self.truth.client_up[self.world.client_idx(client_name), hour]:
            raise RuntimeError(f"{client_name} is down in hour {hour}")
        state = self._state_for(client)
        scenario = self._sample_scenario(client, site, hour)
        now = hour * 3600.0 + offset_seconds

        dig = None
        started = perf_counter()
        self._apply_dns_scenario(state, site, scenario)
        try:
            with obs.span(
                "detailed.transaction",
                client=client_name, site=site_name, hour=hour,
            ):
                if client.proxied:
                    transport: Transport = state["proxy_transport"]
                    state["_scenario"] = scenario
                    wget = WgetClient(
                        transport, tries=1, rng=state["rng"], no_cache=True
                    )
                else:
                    transport = _DirectTransport(
                        self, client, state, scenario=scenario
                    )
                    wget = WgetClient(
                        transport,
                        tries=self.access.tries,
                        max_addresses=self.access.max_addresses,
                        rng=state["rng"],
                    )
                state["resolver"].flush_cache()  # step 1 of the procedure
                result = wget.download(f"http://{site.name}/", now)
                if run_dig and not client.proxied:
                    # Step 3: iterative dig, while the fault still holds.  The
                    # LDNS cache is flushed again so a cached answer from the
                    # wget lookup does not mask the authoritative fault.
                    with obs.span("detailed.dig", site=site_name):
                        state["ldns"].cache.flush_name(site.name)
                        dig = state["digger"].dig(
                            site.name, result.end_time + 1.0
                        )
        finally:
            self._clear_dns_scenario(state, site)
            state.pop("_scenario", None)

        record = self._to_record(client, site, hour, now, result)
        registry = obs.registry()
        registry.counter("stage_calls_total", stage="detailed.access").inc()
        registry.counter("stage_seconds_total", stage="detailed.access").inc(
            perf_counter() - started
        )
        registry.counter("detailed_transactions_total").inc()
        if record.failed:
            registry.counter(
                "detailed_failures_total", type=record.failure_type.value
            ).inc()
        return record, result, dig

    def _apply_dns_scenario(self, state, site: Website, scenario: Scenario) -> None:
        state["path"].reachable = not scenario.ldns_down
        state["digger"].network_up = not scenario.client_net_down
        server = self._site_servers[site.name]
        server.available = not scenario.auth_down
        server.forced_rcode = RCode.SERVFAIL if scenario.dns_error else None
        # The LDNS cache would mask per-transaction authoritative faults;
        # flush it so the scenario is observable (the paper's clients hit
        # uncached LDNS entries often enough at 4 accesses/hour vs 300s TTL).
        state["ldns"].cache.flush_name(site.name)

    def _clear_dns_scenario(self, state, site: Website) -> None:
        state["path"].reachable = True
        state["digger"].network_up = True
        server = self._site_servers[site.name]
        server.available = True
        server.forced_rcode = None

    def _behavior_for(
        self, site: Website, address: IPv4Address, scenario: Scenario
    ) -> ServerBehavior:
        """Translate the scenario into the TCP endpoint's behaviour."""
        behavior = ServerBehavior(response_bytes=site.index_bytes)
        # Per-replica outage (spread sites).
        if scenario.replica_down:
            for ri, replica in enumerate(site.replicas):
                if replica.address == address and ri < len(scenario.replica_down):
                    if scenario.replica_down[ri]:
                        behavior.accepting = False
                        return behavior
        if scenario.tcp_kind is TCPFailureKind.NO_CONNECTION:
            behavior.accepting = False
        elif scenario.tcp_kind is TCPFailureKind.NO_RESPONSE:
            behavior.responds = False
        elif scenario.tcp_kind is TCPFailureKind.PARTIAL_RESPONSE:
            behavior.stall_after_bytes = max(1, site.index_bytes // 3)
        return behavior

    def _to_record(
        self,
        client: Client,
        site: Website,
        hour: int,
        now: float,
        result: TransactionResult,
    ) -> PerformanceRecord:
        failure_type = FailureType.NONE
        dns_kind = None
        tcp_kind = None
        http_status = result.final_response.status if result.final_response else None

        if client.proxied and result.failed:
            failure_type = FailureType.MASKED
        elif result.dns_failed:
            failure_type = FailureType.DNS
            failed = result.failed_resolution
            dns_kind = {
                ResolutionStatus.LDNS_TIMEOUT: DNSFailureKind.LDNS_TIMEOUT,
                ResolutionStatus.NON_LDNS_TIMEOUT: DNSFailureKind.NON_LDNS_TIMEOUT,
                ResolutionStatus.ERROR_RESPONSE: DNSFailureKind.ERROR_RESPONSE,
            }[failed.status]
        elif result.tcp_failed:
            failure_type = FailureType.TCP
            tcp_kind = self._classify_tcp(client, result)
        elif result.http_failed:
            failure_type = FailureType.HTTP
        elif result.failed:
            # Dangling redirect chain (budget exhausted): wget reports an
            # application-level failure.
            failure_type = FailureType.HTTP

        failed_conns = sum(
            1 for a in result.attempts
            if a.connection.outcome is not ConnectionOutcome.COMPLETE
        )
        losses = sum(
            analyze_trace(a.trace).inferred_losses
            for a in result.attempts
            if a.trace is not None and a.trace.enabled
        )
        return PerformanceRecord(
            client_name=client.name,
            site_name=site.name,
            url=result.url,
            timestamp=now,
            hour=hour,
            failure_type=failure_type,
            dns_kind=dns_kind,
            tcp_kind=tcp_kind,
            http_status=http_status,
            server_address=result.attempts[-1].address if result.attempts else None,
            dns_lookup_time=(
                result.resolution.lookup_time if result.resolution else 0.0
            ),
            download_time=result.download_time(),
            num_connections=result.num_connections,
            num_failed_connections=failed_conns,
            packet_losses=losses,
            bytes_received=(
                result.final_response.body_bytes if result.final_response else 0
            ),
        )

    def _classify_tcp(
        self, client: Client, result: TransactionResult
    ) -> TCPFailureKind:
        """Post-process the last attempt's trace, as Section 3.5 does."""
        last = result.attempts[-1] if result.attempts else None
        if last is None:
            return TCPFailureKind.NO_CONNECTION
        if last.trace is not None and last.trace.enabled:
            verdict = analyze_trace(last.trace).verdict
            return {
                TraceVerdict.NO_CONNECTION: TCPFailureKind.NO_CONNECTION,
                TraceVerdict.NO_RESPONSE: TCPFailureKind.NO_RESPONSE,
                TraceVerdict.PARTIAL_RESPONSE: TCPFailureKind.PARTIAL_RESPONSE,
                TraceVerdict.COMPLETE: TCPFailureKind.PARTIAL_RESPONSE,
                TraceVerdict.EMPTY_TRACE: TCPFailureKind.NO_CONNECTION,
                TraceVerdict.AMBIGUOUS_NO_OR_PARTIAL: TCPFailureKind.NO_OR_PARTIAL,
            }[verdict]
        # No trace (BB): wget's exit information only.
        if not last.connection.established:
            return TCPFailureKind.NO_CONNECTION
        return TCPFailureKind.NO_OR_PARTIAL

    # -- batch helper ----------------------------------------------------------------

    def run_batch(
        self,
        client_names: List[str],
        site_names: List[str],
        hours: List[int],
        accesses_per_cell: int = 1,
    ) -> RecordBatch:
        """Run a grid of transactions (skipping down clients)."""
        batch = RecordBatch()
        rng = self._rng
        with obs.stage("detailed.batch", trace=True) as batch_stage:
            for hour in hours:
                for client_name in client_names:
                    ci = self.world.client_idx(client_name)
                    if not self.truth.client_up[ci, hour]:
                        continue
                    # Randomized URL order, as in Section 3.4.
                    order = list(site_names)
                    rng.shuffle(order)
                    for site_name in order:
                        for k in range(accesses_per_cell):
                            offset = rng.uniform(0, 3500.0)
                            record, _ = self.run_transaction(
                                client_name, site_name, hour, offset
                            )
                            batch.append(record)
            batch_stage.add_items(len(batch))
        return batch


class _DirectTransport(Transport):
    """Transport for non-proxied clients: resolver + TCP + origin apps."""

    def __init__(
        self,
        engine: DetailedEngine,
        client: Client,
        state: dict,
        scenario: Optional[Scenario] = None,
        proxy_mode: bool = False,
    ) -> None:
        self.engine = engine
        self.client = client
        self.state = state
        self.scenario = scenario
        self.proxy_mode = proxy_mode  # resolve/fetch on behalf of the proxy

    def _current_scenario(self) -> Scenario:
        if self.scenario is not None:
            return self.scenario
        return self.state.get("_scenario") or Scenario()

    def resolve(self, name: str, now: float) -> ResolutionOutcome:
        return self.state["resolver"].resolve(name, now)

    def fetch(
        self, address: IPv4Address, request: HTTPRequest, now: float
    ) -> FetchResult:
        engine = self.engine
        state = self.state
        scenario = self._current_scenario()
        site = engine.world.website_for_host(request.host)
        behavior = engine._behavior_for(site, address, scenario)
        if self.proxy_mode and scenario.proxied_fail:
            # The proxied client's opaque failure: realized as the proxy
            # failing to reach the origin (it does not fail over).
            behavior.accepting = False

        self.state["port"] += 1
        builder = PacketBuilder(
            client=self.client.address,
            server=address,
            client_port=40000 + (state["port"] % 20000),
        )
        trace = PacketTrace(
            client_name=self.client.name,
            enabled=self.client.category.has_packet_traces,
        )
        loss = BernoulliLossModel(0.003, state["rng"])
        connection = TCPConnection(
            builder=builder,
            loss=loss,
            latency=state["latency"],
            trace=trace,
            rng=state["rng"],
            bandwidth_bps=bandwidth_for_category(self.client.category.value),
        )
        conn_result = connection.run(now, behavior, request_bytes=request.wire_size())
        response: Optional[HTTPResponse] = None
        if conn_result.outcome is ConnectionOutcome.COMPLETE:
            app = engine.fleet.app_at(address)
            if app is not None:
                response = app.respond(request, state["rng"])
                if response.is_error and not scenario.http_error:
                    # The scenario decides HTTP errors; suppress incidental
                    # ones so both engines share one statistical model.
                    response = HTTPResponse(
                        status=200, body_bytes=site.index_bytes
                    )
                elif scenario.http_error and response.ok:
                    response = HTTPResponse(status=503, body_bytes=512)
            else:
                response = HTTPResponse(status=200, body_bytes=site.index_bytes)
        return FetchResult(connection=conn_result, response=response, trace=trace)
