"""The columnar hot path: Poisson-factorised month simulation.

The original fast engine walked the month hour by hour, drawing a
sequential conditional-binomial cascade per (client, site) cell -- a
Poisson transaction count thinned through DNS -> TCP -> HTTP stage
binomials, ~25 numpy RNG calls and a per-site Python replica loop *per
hour*.  At paper scale that is ~160k per-element variate draws an hour;
the interpreter and per-element binomial cost put a hard ceiling of a
few million transactions per second on the whole engine, and made the
parallel engine slower than sequential once shard pickling was paid.

This module restructures the hot path around one exact identity --
**Poisson splitting**: drawing ``N ~ Poisson(lam)`` accesses per cell
and classifying each access independently through the DNS -> TCP ->
HTTP cascade (the chain rule of a multinomial) is distributionally
identical to drawing *independent Poisson counts per outcome category*
with rates ``lam * q_cat``.  That independence is exploited twice,
because the category masses are wildly skewed (~97% of accesses
succeed):

* The 12 **rare** categories (every failure flavour) are drawn as one
  scalar ``Poisson(total)`` over the concatenated rare lattice and
  scattered with a single sorted ``searchsorted`` -- cost proportional
  to the handful of failure *events*, not the 12 x C x S cells.
* The 3 **bulk** success categories are drawn as per-cell Poisson
  planes (one ``Generator.poisson`` call each) -- no per-event
  uniforms, no sort, cost proportional to *cells* and independent of
  how many transactions land.  Raw throughput therefore *rises* with
  event density instead of falling.

The per-hour probability lattices the old engine rebuilt cell by cell
(:meth:`OutcomeModel.hour`) are computed here as
``(hours_chunk, category, client, site)`` blocks.  All hour-varying
inputs are per-client or per-site vectors, so almost every category
rate is a fused rank-1 outer product (``einsum('hc,hs,cs->hcs')``)
over a static (client, site) mask -- a handful of full-lattice passes
per chunk instead of hundreds.  All lattice math is elementwise per
hour, so chunk and shard boundaries cannot perturb any hour's rates.

Determinism contract (unchanged): every hour draws from its own derived
stream ``fast-engine/hour/<h>`` in a fixed call order -- rare total,
rare uniforms, three bulk planes, extra-attempt scatter, loss scatter,
three replica multinomials -- so shards of any shape reproduce exactly
the counts the sequential pass produces, and the merged dataset digest
is bit-identical at any worker count.  (The *values* differ from the
pre-columnar engine -- the factorisation is a different, equally valid
realisation of the same distribution -- a one-time digest migration
recorded in BENCH_trajectory.json.)

Counts are staged per chunk in hour-major scratch blocks and flushed to
the sink as one transposed block write per field, so the dataset's
hour-last layout is touched once per chunk instead of once per hour.
The writer abstraction (:class:`DatasetSink`, :class:`BlockSink`) lets
the same engine commit into a live :class:`MeasurementDataset` (the
sequential path, dtype promotion allowed), a standalone block of arrays
(``run_shard``), or fixed-dtype shared-memory views sliced for one hour
block (the parallel path, :mod:`repro.world.sharedmem`).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.core.dataset import MeasurementDataset

# -- outcome categories -------------------------------------------------------
#
# Every access lands in exactly one category; per-cell rates are
# lam * q_cat with sum_cat(q_cat) == 1 (direct and proxied rows carry
# disjoint category sets).  Order is part of the determinism contract:
# the 12 rare (failure) categories are contiguous and category-major in
# the joint scatter, so reordering them would re-scatter every hour's
# failure events.  The 3 bulk success categories sit at the end and are
# drawn as per-cell Poisson planes in id order.

CAT_DNS_LDNS = 0         # LDNS timeout                      -> dns_ldns
CAT_DNS_NONLDNS = 1      # authoritative-path timeout        -> dns_nonldns
CAT_DNS_ERROR = 2        # DNS error response                -> dns_error
CAT_TCP_NOCONN = 3       # identifiable no-connection        -> tcp_noconn
CAT_TCP_NOCONN_HID = 4   # BB no-conn, not identifiable      -> tcp_ambiguous
CAT_TCP_NORESP = 5       # no response (traced clients)      -> tcp_noresp
CAT_TCP_NORESP_AMB = 6   # no response on BB                 -> tcp_ambiguous
CAT_TCP_PARTIAL = 7      # partial response (traced)         -> tcp_partial
CAT_TCP_PARTIAL_AMB = 8  # partial response on BB            -> tcp_ambiguous
CAT_HTTP_REDIR = 9       # HTTP error, redirected fetch      -> http_errors
CAT_HTTP_PLAIN = 10      # HTTP error, direct fetch          -> http_errors
CAT_MASKED = 11          # proxied opaque failure            -> masked_failures
CAT_OK_REDIR = 12        # success, redirected fetch         (success)
CAT_OK_PLAIN = 13        # success, direct fetch             (success)
CAT_PROXIED_OK = 14      # proxied success                   (success)
N_RARE = 12              # categories [0, N_RARE) scatter jointly
N_CATEGORIES = 15

#: Mean data segments per successful transfer (Section 3.5(b) loss model).
_SEGMENTS_PER_TRANSFER = 16.0
#: Loss-rate inflation for transfers sharing an hour with TCP trouble.
_AMBIENT_LOSS_FACTOR = 1.4
#: Retransmission-inferred losses per partial-response failure.
_LOSSES_PER_PARTIAL = 6.0

#: Upper bound on (hour x category x cell) entries per rate-lattice
#: chunk: bounds peak scratch memory (~30 MiB of float64 lattice plus a
#: comparable staging block) at any world scale while keeping chunks
#: long enough to amortise the batched lattice build.
_CHUNK_LATTICE_BUDGET = 4_000_000


def expected_leading_failures(
    replica_eff_fail: np.ndarray, n_replicas: np.ndarray
) -> np.ndarray:
    """Expected dead-replica attempts before a success, vectorised.

    ``replica_eff_fail`` is ``(..., S, R)`` with nonexistent replicas
    already zeroed; ``n_replicas`` is ``(S,)``.  Matches the scalar
    derivation: with the address list rotated uniformly and replica r
    down with probability q_r, the expected failed attempts before an up
    replica, conditioned on one being up, is ~ sum(q) / (n - sum(q) + 1)
    for multi-replica sites with at least one replica expected up.
    """
    down = replica_eff_fail.sum(axis=-1)
    up = n_replicas.astype(np.float64) - down
    return np.where(
        (n_replicas > 1) & (up > 0.0),
        down / np.where(up > 0.0, up + 1.0, 1.0),
        0.0,
    )


class DatasetSink:
    """Commit hour blocks into a live dataset, promoting dtypes on demand."""

    def __init__(self, dataset: MeasurementDataset) -> None:
        self.dataset = dataset

    def commit_block(self, name: str, h0: int, h1: int,
                     block: np.ndarray) -> None:
        """Write hour-major ``(Hb, ...)`` counts for hours ``[h0, h1)``."""
        arr = getattr(self.dataset, name)
        peak = int(block.max()) if block.size else 0
        if peak > np.iinfo(arr.dtype).max:
            self.dataset.ensure_count_capacity(peak, fields=(name,))
            arr = getattr(self.dataset, name)
        arr[..., h0:h1] = np.moveaxis(block, 0, -1)


class BlockSink:
    """Commit hour blocks into standalone arrays covering ``[h0, h1)``.

    ``fixed_dtype=True`` (the shared-memory path) forbids promotion: the
    parent pre-sized every array's dtype from the access configuration
    (:meth:`MeasurementDataset.planned_dtypes`), so an overflow means
    the plan was wrong and must fail loudly, never wrap.
    """

    def __init__(
        self,
        arrays: Dict[str, np.ndarray],
        hour_start: int,
        fixed_dtype: bool = False,
    ) -> None:
        self.arrays = arrays
        self.hour_start = hour_start
        self.fixed_dtype = fixed_dtype

    def commit_block(self, name: str, h0: int, h1: int,
                     block: np.ndarray) -> None:
        """Write the block for experiment hours ``[h0, h1)`` at its offset."""
        arr = self.arrays[name]
        peak = int(block.max()) if block.size else 0
        if peak > np.iinfo(arr.dtype).max:
            if self.fixed_dtype:
                raise OverflowError(
                    f"array {name}: count {peak} exceeds the pre-sized "
                    f"{arr.dtype.name} shard buffer -- the planned count "
                    "dtype underestimated this access configuration"
                )
            from repro.core.dataset import _widened_dtype

            arr = arr.astype(_widened_dtype(peak, arr.dtype))
            self.arrays[name] = arr
        t0 = h0 - self.hour_start
        arr[..., t0 : t0 + (h1 - h0)] = np.moveaxis(block, 0, -1)


class _ChunkLattice:
    """Rate lattices for one contiguous hour chunk.

    ``rates`` is ``(Hc, K, C, S)`` float64 -- hour-major, categories
    contiguous per hour, so the rare block ``rates[t, :N_RARE]`` is one
    flat vector ready for ``cumsum`` and each bulk plane
    ``rates[t, k]`` is contiguous for ``Generator.poisson``.
    """

    __slots__ = ("hour_start", "rates", "ambient", "exp_extra", "replica_w")

    def __init__(self, hour_start, rates, ambient, exp_extra, replica_w):
        self.hour_start = hour_start
        self.rates = rates          # (Hc, K, C, S)
        self.ambient = ambient      # (Hc, C, S) loss rate per delivered
        self.exp_extra = exp_extra  # (Hc, S) dead-replica attempts factor
        self.replica_w = replica_w  # (Hc, S, R) effective replica failure


#: Dataset fields staged per (client, site) plane, in commit order.
_CS_FIELDS = (
    "transactions", "dns_ldns", "dns_nonldns", "dns_error",
    "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
    "http_errors", "masked_failures",
    "connections", "failed_connections", "packet_losses",
)
#: Dataset fields staged per (site, replica) plane.
_SR_FIELDS = ("replica_connections", "replica_failed_connections")


class ColumnarEngine:
    """Shared-model month engine over the factorised category lattice."""

    def __init__(self, model, truth, rngs, access) -> None:
        self.model = model
        self.truth = truth
        self.rngs = rngs
        self.access = access
        self._build_static()

    # -- static (hour-invariant) structure ----------------------------------

    def _build_static(self) -> None:
        from repro.world.outcome_model import (
            CLIENT_SIDE_MIX,
            PERMANENT_NOCONN_MIX,
            PERMANENT_PARTIAL_MIX,
        )

        model, truth, access = self.model, self.truth, self.access
        c = len(model.world.clients)
        s = len(model.world.websites)
        self.n_cells = c * s
        self.shape = (c, s)

        proxied = model.proxied
        direct = ~proxied
        ambiguous = model.bb & direct
        self.direct = direct
        # Row masks as float vectors over clients (float32: these only
        # scale lattice rates, see the note in :meth:`_build_chunk`).
        f_direct = direct.astype(np.float32)
        self._f_direct = f_direct
        self._f_prox = proxied.astype(np.float32)
        # No-connection visibility split: traced rows are fully visible,
        # ambiguous (BB) rows split between the identifiable and hidden
        # no-connection categories (Figure 3's combined category).
        vis = access.bb_noconn_visibility
        f_amb = (ambiguous & direct).astype(np.float32)
        self._f_amb = f_amb
        self._f_nonamb = f_direct - f_amb
        self._f_vis = (np.where(ambiguous, vis, 1.0) * f_direct).astype(
            np.float32
        )
        self._f_hid = np.float32(1.0 - vis) * f_amb

        self.n_replicas = model.n_replicas
        r_width = max(
            1, truth.replica_fail.shape[1] if truth.replica_fail.ndim == 3 else 1
        )
        r_idx = np.arange(r_width)[None, :]
        self._replica_exists = r_idx < self.n_replicas[:, None]  # (S, R)
        self.replica_active = np.nonzero(self.n_replicas > 0)[0]
        active = self.replica_active
        # Uniform split weights over existing replicas of active sites.
        self._replica_uniform = (
            self._replica_exists[active].astype(np.float64)
            / self.n_replicas[active, None]
        )

        self.spread = model.spread_site.astype(np.float64)
        tries = np.where(
            truth.permanent_pair > 0, access.permanent_tries, access.tries
        )
        self._tries_addr = (tries * model.n_addresses[None, :]).astype(np.int64)
        self._redirect_p = model.redirect_p.astype(np.float32)  # (S,)
        self._bg_loss_rate = np.float32(
            truth.config.background_packet_loss * _SEGMENTS_PER_TRANSFER
        )
        self._bg_tcp = model.background_tcp.astype(np.float32)  # (C,)
        # Static per-client mix contributions from the background cause.
        self._bg_mix_k = [
            (self._bg_tcp * model.background_mix[:, k]).astype(np.float32)
            for k in range(3)
        ]
        self._client_mix_k = np.asarray(CLIENT_SIDE_MIX, dtype=np.float32)
        perm = truth.permanent_pair.astype(np.float32)
        self._perm_comp = 1.0 - perm  # (C, S)
        perm_noconn = (truth.permanent_pair_kind == 1) * perm
        perm_partial = (truth.permanent_pair_kind == 2) * perm
        # Static (C, S) mix contributions from permanent pair faults.
        self._perm_mix_k = [
            (
                perm_noconn * PERMANENT_NOCONN_MIX[k]
                + perm_partial * PERMANENT_PARTIAL_MIX[k]
            ).astype(np.float32)
            for k in range(3)
        ]
        base = model.base_accesses.astype(np.float32)
        self._base_dir = base * f_direct[:, None]   # (C, S)
        self._base_prox = base * self._f_prox[:, None]
        hours_budget = _CHUNK_LATTICE_BUDGET // max(
            1, self.n_cells * N_CATEGORIES
        )
        self.chunk_hours = min(96, max(1, hours_budget))

    # -- rate lattices -------------------------------------------------------

    def _build_chunk(self, h0: int, h1: int) -> _ChunkLattice:
        """Category-rate lattices for hours ``[h0, h1)``.

        Everything here is elementwise per hour (broadcast over the hour
        axis), so the values for hour ``h`` are independent of the chunk
        and shard boundaries around it -- the property the determinism
        contract rests on.  Hour-varying inputs are (hour, client) and
        (hour, site) vectors; the full-lattice passes are the fused
        einsum outer products and the mix normalisation.
        """
        from repro.world.outcome_model import REPLICA_DOWN_MIX

        model, truth = self.model, self.truth
        c, s = self.shape
        hc = h1 - h0
        hs = slice(h0, h1)
        ein = np.einsum

        # The lattice is built in float32: every pass over the full
        # (Hc, K, C, S) block moves half the bytes of float64, and a
        # per-cell rate only steers sampling -- the 2e-7 relative
        # rounding is orders of magnitude below the Poisson noise.
        # Scatter *thresholds* (the cumsums) stay float64.
        def ch(arr):  # (C, H) -> (Hc, C) float32
            return np.ascontiguousarray(arr[:, hs].T, dtype=np.float32)

        def sh(arr):  # (S, H) -> (Hc, S) float32
            return np.ascontiguousarray(arr[:, hs].T, dtype=np.float32)

        # ---- hour x client vectors ----
        cu = ch(truth.client_up)
        p_ldns = 1.0 - (1.0 - ch(truth.ldns_fail)) * (
            1.0 - ch(truth.wan_dns_fail)
        )
        surv_ldns = 1.0 - p_ldns
        p_client = ch(truth.total_client_tcp_fail())
        # Client-side TCP survival (client cause x background cause).
        a_client = (1.0 - p_client) * (1.0 - self._bg_tcp)[None, :]

        # ---- hour x site vectors ----
        p_nonldns = sh(truth.site_auth_timeout)
        p_dnserr = sh(truth.site_dns_error)
        dns_site_ok = (1.0 - p_nonldns) * (1.0 - p_dnserr)

        r_eff = np.maximum(
            truth.replica_fail[:, :, hs], truth.bgp_replica_fail[:, :, hs]
        ).astype(np.float64)  # (S, R, Hc)
        r_eff = np.ascontiguousarray(r_eff.transpose(2, 0, 1))  # (Hc, S, R)
        exists = self._replica_exists[None, :, :]
        r_eff = np.where(exists, r_eff, 0.0)
        p_all_down = np.where(
            self.n_replicas[None, :] > 0,
            np.prod(np.where(exists, r_eff, 1.0), axis=2),
            0.0,
        ).astype(np.float32)  # (Hc, S)

        site_bad = sh(truth.site_fail)
        # Same-subnet sites: BGP trouble on the shared prefix is a
        # site-wide correlated cause (raw BGP, not the per-replica max).
        shared_bgp = np.where(
            (~model.spread_site & (self.n_replicas > 0))[None, :],
            sh(truth.bgp_replica_fail[:, 0, :]),
            0.0,
        )
        site_corr = 1.0 - (1.0 - site_bad) * (1.0 - shared_bgp)
        site_corr = 1.0 - (1.0 - site_corr) * (
            1.0 - truth.direct_elevated.astype(np.float32)[None, :]
        )
        # Site-side TCP survival (site cause x replica-down cause).
        b_site = (1.0 - site_corr) * (1.0 - p_all_down)
        p_http = sh(truth.site_http_error)

        # ---- full-lattice passes ----
        # E = 1 - p_tcp: the product of all survival factors.
        e = ein("hc,hs->hcs", a_client, b_site)
        e *= self._perm_comp[None]
        # G = lam * f_direct * dns_ok.
        g = ein("hc,hs,cs->hcs", cu * surv_ldns, dns_site_ok, self._base_dir)
        delivered_rate = g * e
        tcp_rate = g - delivered_rate
        # float32 rounding can leave subtraction residues at -1 ulp;
        # Poisson rates must be non-negative.
        np.maximum(tcp_rate, 0.0, out=tcp_rate)

        # ---- TCP kind mix: blend by cause weight, grouped by shape ----
        # Site-shaped weights (Hc, S), client-shaped (Hc, C), static (C, S).
        site_mix = truth.site_mix
        s_k = [
            site_corr * site_mix[k]
            + (p_all_down * REPLICA_DOWN_MIX[k] if REPLICA_DOWN_MIX[k] else 0.0)
            for k in range(3)
        ]
        c_k = [
            p_client * self._client_mix_k[k] + self._bg_mix_k[k][None, :]
            for k in range(3)
        ]
        p_k = self._perm_mix_k
        total_w = c_k[0] + c_k[1] + c_k[2]
        total_w = total_w[:, :, None] + (s_k[0] + s_k[1] + s_k[2])[:, None, :]
        total_w += (p_k[0] + p_k[1] + p_k[2])[None]
        # tcp_rate / total_weight, zero where no cause carries weight.
        scaled = np.divide(
            tcp_rate, total_w, out=np.zeros_like(tcp_rate),
            where=total_w > 0.0,
        )
        # Zero-weight cells fall back to the pure no-connection mix
        # (mix == (1, 0, 0)): the whole rate routes to noconn below.
        fallback = (total_w <= 0.0) & (tcp_rate > 0.0)
        rates = np.empty((hc, N_CATEGORIES, c, s), dtype=np.float32)

        def kind_rate(k):
            m = c_k[k][:, :, None] + s_k[k][:, None, :]
            m += p_k[k][None]
            m *= scaled
            return m

        r_noconn = kind_rate(0)
        if fallback.any():
            r_noconn = np.where(fallback, tcp_rate, r_noconn)
        r_noresp = kind_rate(1)
        r_partial = kind_rate(2)
        rates[:, CAT_TCP_NOCONN] = r_noconn * self._f_vis[None, :, None]
        rates[:, CAT_TCP_NOCONN_HID] = r_noconn * self._f_hid[None, :, None]
        rates[:, CAT_TCP_NORESP] = r_noresp * self._f_nonamb[None, :, None]
        rates[:, CAT_TCP_NORESP_AMB] = r_noresp * self._f_amb[None, :, None]
        rates[:, CAT_TCP_PARTIAL] = r_partial * self._f_nonamb[None, :, None]
        rates[:, CAT_TCP_PARTIAL_AMB] = r_partial * self._f_amb[None, :, None]

        # ---- DNS stage (fused rank-1 products) ----
        rates[:, CAT_DNS_LDNS] = ein(
            "hc,cs->hcs", cu * p_ldns, self._base_dir
        )
        rates[:, CAT_DNS_NONLDNS] = ein(
            "hc,hs,cs->hcs", cu * surv_ldns, p_nonldns, self._base_dir
        )
        rates[:, CAT_DNS_ERROR] = ein(
            "hc,hs,cs->hcs",
            cu * surv_ldns, (1.0 - p_nonldns) * p_dnserr, self._base_dir,
        )

        # ---- HTTP stage / delivered splits ----
        herr = delivered_rate * p_http[:, None, :]
        d_ok = delivered_rate - herr
        redir = self._redirect_p[None, None, :]
        rates[:, CAT_HTTP_REDIR] = herr * redir
        rates[:, CAT_HTTP_PLAIN] = herr - rates[:, CAT_HTTP_REDIR]
        rates[:, CAT_OK_REDIR] = d_ok * redir
        rates[:, CAT_OK_PLAIN] = d_ok - rates[:, CAT_OK_REDIR]
        np.maximum(
            rates[:, CAT_HTTP_PLAIN], 0.0, out=rates[:, CAT_HTTP_PLAIN]
        )
        np.maximum(rates[:, CAT_OK_PLAIN], 0.0, out=rates[:, CAT_OK_PLAIN])

        # ---- Proxied rows: opaque pass/fail ----
        mean_replica_fail = np.where(
            self.n_replicas[None, :] > 0,
            r_eff.sum(axis=2) / np.maximum(1, self.n_replicas)[None, :],
            0.0,
        ).astype(np.float32)
        p_proxy_dns = p_nonldns + p_dnserr
        p_site_up_fail = 1.0 - (
            (1.0 - site_corr)
            * (1.0 - mean_replica_fail)
            * (1.0 - truth.proxy_hostile.astype(np.float32)[None, :])
            * (1.0 - p_proxy_dns)
        )
        lam_prox = ein("hc,cs->hcs", cu, self._base_prox)
        rates[:, CAT_PROXIED_OK] = ein(
            "hc,hs,cs->hcs",
            cu * a_client, 1.0 - p_site_up_fail, self._base_prox,
        )
        rates[:, CAT_MASKED] = lam_prox - rates[:, CAT_PROXIED_OK]
        np.maximum(rates[:, CAT_MASKED], 0.0, out=rates[:, CAT_MASKED])

        ambient = (
            self._bg_loss_rate
            + (1.0 - e) * (_SEGMENTS_PER_TRANSFER * _AMBIENT_LOSS_FACTOR)
        ) * self._f_direct[None, :, None]
        exp_extra = expected_leading_failures(r_eff, self.n_replicas)
        return _ChunkLattice(h0, rates, ambient, exp_extra, r_eff)

    # -- the hour kernel -----------------------------------------------------

    def simulate_block(self, hour_start, hour_stop, sink, stage_seconds=None):
        """Simulate hours ``[hour_start, hour_stop)`` into ``sink``.

        Chunks the block for the rate lattices, runs every hour's draws
        from its own ``fast-engine/hour/<h>`` stream in a fixed call
        order into hour-major staging blocks, and flushes each chunk to
        the sink as one block write per field.  Per-hour telemetry
        (``hour_done``/``hour_stats``) streams off the staged planes
        exactly as the loop engine's did, so ``--live`` and ``--detect``
        consume an unchanged feed.
        """
        emitter = obs.emitter()
        stages = stage_seconds if stage_seconds is not None else {}
        for name in ("dns", "tcp", "http", "commit"):
            stages.setdefault(name, 0.0)
        c, s = self.shape
        r_width = self._replica_exists.shape[1]
        for c0 in range(hour_start, hour_stop, self.chunk_hours):
            c1 = min(c0 + self.chunk_hours, hour_stop)
            hc = c1 - c0
            t0 = perf_counter()
            lattice = self._build_chunk(c0, c1)
            stages["dns"] += perf_counter() - t0
            # The staging planes are fixed int32, and a draw past their
            # range would wrap *before* the sink's peak check could see
            # it -- the wrapped value looks small and honest.  Bound the
            # worst cell a priori from the rate lattice with the same
            # Poisson tail logic planned_dtypes uses (x8 headroom for
            # loss/connection multiplicity) and refuse to simulate past
            # it rather than corrupt counts silently.
            peak_cell = (
                8.0 * float(lattice.rates.sum(axis=1).max())
                if lattice.rates.size else 0.0
            )
            if peak_cell + 12.0 * peak_cell ** 0.5 + 64.0 > float(
                np.iinfo(np.int32).max
            ):
                raise OverflowError(
                    f"per-cell hourly rate {peak_cell / 8.0:.4g} exceeds "
                    "the int32 staging capacity; reduce per_hour or "
                    "widen the staging dtype"
                )
            # int32 staging halves the flush traffic; every (C, S) plane
            # is fully assigned each hour so np.empty is safe, while the
            # replica planes only write active rows and need the zeros.
            staging = {
                name: np.empty((hc, c, s), dtype=np.int32)
                for name in _CS_FIELDS
            }
            staging.update(
                (name, np.zeros((hc, s, r_width), dtype=np.int32))
                for name in _SR_FIELDS
            )
            for h in range(c0, c1):
                stream = f"fast-engine/hour/{h}"
                with obs.span("simulate.hour", hour=h):
                    rng = self.rngs.np_fresh(stream)
                    self._simulate_hour(h - c0, lattice, rng, staging, stages)
                if emitter.enabled:
                    emitter.emit(
                        "hour_done", hour=h, stream=stream,
                        **_hour_counts(staging, h - c0),
                    )
                    if getattr(emitter, "entity_stats", False):
                        emitter.emit(
                            "hour_stats", hour=h,
                            **_hour_entity_stats(staging, h - c0),
                        )
            t2 = perf_counter()
            for name, block in staging.items():
                sink.commit_block(name, c0, c1, block)
            stages["commit"] += perf_counter() - t2

    def _simulate_hour(self, t, lattice, rng, staging, stages) -> None:
        """One hour of draws, in the fixed stream order (see module doc)."""
        t0 = perf_counter()
        c, s = self.shape
        n_cells = self.n_cells
        rates = lattice.rates[t]

        # ---- 1. Rare categories: one Poisson total + sorted scatter ----
        # float64 accumulation: the thresholds must be strictly monotone
        # for searchsorted even though the per-cell rates are float32.
        rare_cum = np.cumsum(rates[:N_RARE].reshape(-1), dtype=np.float64)
        idx = _scatter_sorted(rng, rare_cum)
        # Category segment boundaries within the sorted flat indices.
        bounds = np.searchsorted(
            idx, np.arange(1, N_RARE + 1) * n_cells, side="left"
        )
        cell = idx % n_cells

        def seg(k):
            lo = bounds[k - 1] if k else 0
            return cell[lo:bounds[k]]

        def plane(*cats):
            parts = [seg(k) for k in cats]
            cells = parts[0] if len(parts) == 1 else np.concatenate(parts)
            return np.bincount(cells, minlength=n_cells).reshape(c, s)

        # ---- 2. Bulk success categories: per-cell Poisson planes ----
        ok_redir = rng.poisson(rates[CAT_OK_REDIR])
        ok_plain = rng.poisson(rates[CAT_OK_PLAIN])
        proxied_ok = rng.poisson(rates[CAT_PROXIED_OK])
        t1 = perf_counter()
        stages["tcp"] += t1 - t0

        # ---- Derived aggregates (pure arithmetic) ----
        dns_ldns = plane(CAT_DNS_LDNS)
        dns_nonldns = plane(CAT_DNS_NONLDNS)
        dns_error = plane(CAT_DNS_ERROR)
        tcp_noconn = plane(CAT_TCP_NOCONN)
        tcp_noresp = plane(CAT_TCP_NORESP)
        tcp_partial = plane(CAT_TCP_PARTIAL)
        tcp_ambiguous = plane(
            CAT_TCP_NOCONN_HID, CAT_TCP_NORESP_AMB, CAT_TCP_PARTIAL_AMB
        )
        http_redir = plane(CAT_HTTP_REDIR)
        http_plain = plane(CAT_HTTP_PLAIN)
        masked = plane(CAT_MASKED)
        http_errors = http_redir + http_plain
        partial_amb = plane(CAT_TCP_PARTIAL_AMB)

        tcp_f = tcp_noconn + tcp_noresp + tcp_partial + tcp_ambiguous
        delivered = http_errors + ok_redir + ok_plain
        redirects = http_redir + ok_redir
        partial = tcp_partial + partial_amb
        transactions = (
            dns_ldns + dns_nonldns + dns_error
            + tcp_f + delivered + masked + proxied_ok
        )

        # ---- 3. Conditional draws, fixed order ----
        # Extra failed attempts past dead replicas at spread sites: each
        # delivered transaction contributes Poisson(exp_extra) failures.
        lam_extra = delivered * (lattice.exp_extra[t] * self.spread)[None, :]
        extra_failed = _place_poisson(rng, lam_extra)
        # Retransmission-inferred packet losses (Section 3.5(b)).
        lam_loss = (
            delivered * lattice.ambient[t] + partial * _LOSSES_PER_PARTIAL
        )
        losses = _place_poisson(rng, lam_loss)
        t2 = perf_counter()
        stages["http"] += t2 - t1

        failed_conns = tcp_f * self._tries_addr + extra_failed
        total_conns = delivered + redirects + failed_conns

        # ---- 4. Replica-level splits (batched multinomials) ----
        active = self.replica_active
        site_conns = total_conns.sum(axis=0)[active]
        site_failed = failed_conns.sum(axis=0)[active]
        site_extra = extra_failed.sum(axis=0)[active]
        w = lattice.replica_w[t][active]
        w_sum = w.sum(axis=1, keepdims=True)
        weights = np.where(
            w_sum > 0, w / np.where(w_sum > 0, w_sum, 1.0),
            self._replica_uniform,
        )
        # Failed attempts concentrate on the dead replicas; the remainder
        # and the connection totals spread uniformly.
        extra_split = rng.multinomial(site_extra, weights)
        base_split = rng.multinomial(
            site_failed - site_extra, self._replica_uniform
        )
        conns_split = rng.multinomial(site_conns, self._replica_uniform)
        failed_r = extra_split + base_split
        conns_r = np.maximum(conns_split, failed_r)

        # ---- Stage this hour's planes (hour-major scratch) ----
        staging["transactions"][t] = transactions
        staging["dns_ldns"][t] = dns_ldns
        staging["dns_nonldns"][t] = dns_nonldns
        staging["dns_error"][t] = dns_error
        staging["tcp_noconn"][t] = tcp_noconn
        staging["tcp_noresp"][t] = tcp_noresp
        staging["tcp_partial"][t] = tcp_partial
        staging["tcp_ambiguous"][t] = tcp_ambiguous
        staging["http_errors"][t] = http_errors
        staging["masked_failures"][t] = masked
        staging["connections"][t] = total_conns
        staging["failed_connections"][t] = failed_conns
        staging["packet_losses"][t] = losses
        staging["replica_connections"][t][active] = conns_r
        staging["replica_failed_connections"][t][active] = failed_r
        stages["commit"] += perf_counter() - t2


def _scatter_sorted(rng: np.random.Generator, cum: np.ndarray) -> np.ndarray:
    """Sorted flat cell indices of one ``Poisson(cum[-1])`` scatter.

    Exact: a vector of independent Poisson counts is distributionally a
    single ``Poisson(sum)`` total scattered multinomially with the rates
    as weights.  The draw order (scalar total, then one uniform array)
    is fixed, so any process simulating this hour consumes the stream
    identically; the sort is pure post-processing of the uniforms and
    keeps the binary searches cache-local.
    """
    total = float(cum[-1]) if cum.size else 0.0
    n = int(rng.poisson(total))
    u = rng.random(n) * total
    u.sort()
    idx = np.searchsorted(cum, u, side="right")
    if n:
        np.minimum(idx, cum.size - 1, out=idx)
    return idx


def _place_poisson(rng: np.random.Generator, lam: np.ndarray) -> np.ndarray:
    """Independent per-cell Poisson draws via total + scatter (see above)."""
    cum = np.cumsum(lam.reshape(-1), dtype=np.float64)
    idx = _scatter_sorted(rng, cum)
    return np.bincount(idx, minlength=lam.size).reshape(lam.shape)


def _hour_counts(staging, t: int) -> Dict[str, int]:
    """Per-failure-type transaction counts of staged hour ``t``.

    Reads the staged planes back, so the emitter can never perturb the
    dataset or the RNG -- the digest is identical with telemetry on or
    off.
    """

    def total(*fields: str) -> int:
        return int(
            sum(staging[name][t].sum(dtype=np.int64) for name in fields)
        )

    return {
        "transactions": total("transactions"),
        "dns": total("dns_ldns", "dns_nonldns", "dns_error"),
        "tcp": total("tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous"),
        "http": total("http_errors"),
        "masked": total("masked_failures"),
    }


def _hour_entity_stats(staging, t: int) -> Dict[str, list]:
    """Per-entity counts of staged hour ``t`` for online detection.

    Everything :mod:`repro.obs.online` needs to mirror the batch
    episode/blame analysis for one hour, in plain JSON-native lists:
    per-client and per-server transaction/failure vectors plus the
    sparse (client, server, count) TCP-failure triples blame buckets on.
    Pure reads of the staged planes, like :func:`_hour_counts`.
    """
    trans = staging["transactions"][t]
    failures = np.zeros_like(trans)
    for name in (
        "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures",
    ):
        failures += staging[name][t]
    tcp = np.zeros_like(trans)
    for name in ("tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous"):
        tcp += staging[name][t]
    ci, si = np.nonzero(tcp)
    return {
        "ct": trans.sum(axis=1).tolist(),
        "cf": failures.sum(axis=1).tolist(),
        "st": trans.sum(axis=0).tolist(),
        "sf": failures.sum(axis=0).tolist(),
        "tcp": [
            [int(c), int(s), int(tcp[c, s])] for c, s in zip(ci, si)
        ],
    }
