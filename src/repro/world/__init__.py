"""The simulated world: client/site rosters, fault processes, and engines.

* :mod:`repro.world.entities` -- clients, websites, replicas, proxies.
* :mod:`repro.world.defaults` -- the paper's roster: 134 clients (95 PL /
  26 DU / 5+1 CN / 7 BB, Table 1) and 80 websites (Table 2).
* :mod:`repro.world.faults` -- generative ground-truth fault processes,
  calibrated to the paper's headline statistics.
* :mod:`repro.world.outcome_model` -- the shared probabilistic model
  mapping fault states to per-access outcome probabilities.
* :mod:`repro.world.simulator` -- the fast vectorised month simulator
  (per-hour RNG streams; bit-identical for any worker count).
* :mod:`repro.world.parallel` -- hour-sharded parallel driver for the
  fast engine: contiguous blocks across worker processes, merged with
  overflow-checked accumulation.
* :mod:`repro.world.detailed` -- the message-level engine that drives the
  real DNS/TCP/HTTP substrates and produces packet traces.
* :mod:`repro.world.experiment` -- the Section 3.4 download procedure.
"""

from repro.world.entities import Client, ClientCategory, Replica, Website
from repro.world.defaults import build_default_world

__all__ = [
    "Client",
    "ClientCategory",
    "Replica",
    "Website",
    "build_default_world",
]
