"""What-if scenario builders.

The generative world invites counterfactuals the paper could only discuss
(Section 5, "Implications of our findings").  Each builder returns a
modified :class:`~repro.world.faults.FaultConfig` (or transforms a
generated :class:`~repro.world.faults.GroundTruth`) implementing one
intervention, so its end-to-end effect can be measured with the ordinary
pipeline:

* :func:`reliable_ldns` -- the paper's first implication: "improving the
  reliability of the DNS lookups will go a long way"; removes LDNS
  outages and measures how much of the failure rate disappears.
* :func:`stable_bgp` -- no severe routing instability (second
  implication: address severe episodes, not general churn).
* :func:`no_permanent_pairs` -- unblock the 38 broken pairs.
* :func:`anycast_replicas` -- every site served from independent subnets
  (no correlated total-replica failures).
* :func:`failover_proxies` -- proxies that retry alternate A records
  (the Section 4.7 fix).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from repro.world.entities import World
from repro.world.faults import FaultConfig, FaultGenerator, GroundTruth
from repro.world.outcome_model import AccessConfig
from repro.world.rng import RNGRegistry
from repro.world.simulator import MonthSimulator, SimulationResult


def _clone_truth(truth: GroundTruth) -> GroundTruth:
    """A deep-enough copy: fresh arrays, shared immutable metadata."""
    return dataclasses.replace(
        truth,
        client_up=truth.client_up.copy(),
        ldns_fail=truth.ldns_fail.copy(),
        wan_fail=truth.wan_fail.copy(),
        wan_dns_fail=truth.wan_dns_fail.copy(),
        site_fail=truth.site_fail.copy(),
        replica_fail=truth.replica_fail.copy(),
        site_auth_timeout=truth.site_auth_timeout.copy(),
        site_dns_error=truth.site_dns_error.copy(),
        site_http_error=truth.site_http_error.copy(),
        permanent_pair=truth.permanent_pair.copy(),
        permanent_pair_kind=truth.permanent_pair_kind.copy(),
        proxy_hostile=truth.proxy_hostile.copy(),
        direct_elevated=truth.direct_elevated.copy(),
        bgp_client_fail=truth.bgp_client_fail.copy(),
        bgp_replica_fail=truth.bgp_replica_fail.copy(),
    )


def reliable_ldns(truth: GroundTruth) -> GroundTruth:
    """Perfectly reliable local DNS (Section 5, implication #1).

    Zeroes LDNS outages and the DNS side of WAN outages; TCP-level client
    trouble remains.
    """
    fixed = _clone_truth(truth)
    fixed.ldns_fail[:] = 0.0
    fixed.wan_dns_fail[:] = 0.0
    return fixed


def stable_bgp(truth: GroundTruth) -> GroundTruth:
    """No BGP-driven end-to-end outages (implication #2)."""
    fixed = _clone_truth(truth)
    fixed.bgp_client_fail[:] = 0.0
    fixed.bgp_replica_fail[:] = 0.0
    return fixed


def no_permanent_pairs(truth: GroundTruth) -> GroundTruth:
    """Unblock the near-permanently failing pairs (Section 4.4.2)."""
    fixed = _clone_truth(truth)
    fixed.permanent_pair[:] = 0.0
    fixed.permanent_pair_kind[:] = 0
    return fixed


def anycast_replicas(truth: GroundTruth) -> GroundTruth:
    """Halve correlated site-wide outages, as if every multi-replica site
    were spread across independent subnets/providers (Section 4.5's
    same-/24 finding inverted)."""
    fixed = _clone_truth(truth)
    fixed.site_fail *= 0.5
    return fixed


def failover_proxies(truth: GroundTruth) -> GroundTruth:
    """Proxies that retry alternate A records (the Section 4.7 fix).

    With failover, a single dead replica no longer fails the proxied
    request; only all-replica outages do.  Approximated by removing the
    independent replica-outage component the proxied path is exposed to.
    """
    fixed = _clone_truth(truth)
    fixed.replica_fail[:] = 0.0
    fixed.proxy_hostile[:] = 0.0
    return fixed


#: The named interventions, in the order the paper discusses them.
INTERVENTIONS: Dict[str, Callable[[GroundTruth], GroundTruth]] = {
    "reliable_ldns": reliable_ldns,
    "stable_bgp": stable_bgp,
    "no_permanent_pairs": no_permanent_pairs,
    "anycast_replicas": anycast_replicas,
    "failover_proxies": failover_proxies,
}


def run_intervention(
    world: World,
    truth: GroundTruth,
    name: str,
    per_hour: int = 2,
    seed: int = 7,
) -> SimulationResult:
    """Simulate the world under one named intervention."""
    try:
        transform = INTERVENTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown intervention {name!r}; choose from {sorted(INTERVENTIONS)}"
        ) from None
    fixed = transform(truth)
    simulator = MonthSimulator(
        world,
        access=AccessConfig(per_hour=per_hour),
        rngs=RNGRegistry(seed),
        truth=fixed,
    )
    return simulator.run()


def intervention_study(
    world: World,
    truth: GroundTruth,
    per_hour: int = 2,
    seed: int = 7,
) -> Dict[str, float]:
    """Overall failure rate under the baseline and every intervention.

    Returns ``{"baseline": rate, intervention: rate, ...}`` -- the
    quantified version of the paper's Section 5 discussion.
    """
    baseline = MonthSimulator(
        world,
        access=AccessConfig(per_hour=per_hour),
        rngs=RNGRegistry(seed),
        truth=truth,
    ).run()
    results = {"baseline": _rate(baseline)}
    for name in INTERVENTIONS:
        results[name] = _rate(
            run_intervention(world, truth, name, per_hour, seed)
        )
    return results


def _rate(result: SimulationResult) -> float:
    dataset = result.dataset
    total = int(dataset.transactions.sum())
    return int(dataset.failures.sum()) / total if total else 0.0
