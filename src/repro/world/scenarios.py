"""What-if scenario builders.

The generative world invites counterfactuals the paper could only discuss
(Section 5, "Implications of our findings").  Each builder returns a
modified :class:`~repro.world.faults.FaultConfig` (or transforms a
generated :class:`~repro.world.faults.GroundTruth`) implementing one
intervention, so its end-to-end effect can be measured with the ordinary
pipeline:

* :func:`reliable_ldns` -- the paper's first implication: "improving the
  reliability of the DNS lookups will go a long way"; removes LDNS
  outages and measures how much of the failure rate disappears.
* :func:`stable_bgp` -- no severe routing instability (second
  implication: address severe episodes, not general churn).
* :func:`no_permanent_pairs` -- unblock the 38 broken pairs.
* :func:`anycast_replicas` -- every site served from independent subnets
  (no correlated total-replica failures).
* :func:`failover_proxies` -- proxies that retry alternate A records
  (the Section 4.7 fix).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from repro.world.entities import World
from repro.world.faults import FaultConfig, FaultGenerator, GroundTruth
from repro.world.outcome_model import AccessConfig
from repro.world.rng import RNGRegistry
from repro.world.simulator import MonthSimulator, SimulationResult


def _clone_truth(truth: GroundTruth) -> GroundTruth:
    """A deep-enough copy: fresh arrays, shared immutable metadata."""
    return dataclasses.replace(
        truth,
        client_up=truth.client_up.copy(),
        ldns_fail=truth.ldns_fail.copy(),
        wan_fail=truth.wan_fail.copy(),
        wan_dns_fail=truth.wan_dns_fail.copy(),
        site_fail=truth.site_fail.copy(),
        replica_fail=truth.replica_fail.copy(),
        site_auth_timeout=truth.site_auth_timeout.copy(),
        site_dns_error=truth.site_dns_error.copy(),
        site_http_error=truth.site_http_error.copy(),
        permanent_pair=truth.permanent_pair.copy(),
        permanent_pair_kind=truth.permanent_pair_kind.copy(),
        proxy_hostile=truth.proxy_hostile.copy(),
        direct_elevated=truth.direct_elevated.copy(),
        bgp_client_fail=truth.bgp_client_fail.copy(),
        bgp_replica_fail=truth.bgp_replica_fail.copy(),
    )


def reliable_ldns(truth: GroundTruth) -> GroundTruth:
    """Perfectly reliable local DNS (Section 5, implication #1).

    Zeroes LDNS outages and the DNS side of WAN outages; TCP-level client
    trouble remains.
    """
    fixed = _clone_truth(truth)
    fixed.ldns_fail[:] = 0.0
    fixed.wan_dns_fail[:] = 0.0
    return fixed


def stable_bgp(truth: GroundTruth) -> GroundTruth:
    """No BGP-driven end-to-end outages (implication #2)."""
    fixed = _clone_truth(truth)
    fixed.bgp_client_fail[:] = 0.0
    fixed.bgp_replica_fail[:] = 0.0
    return fixed


def no_permanent_pairs(truth: GroundTruth) -> GroundTruth:
    """Unblock the near-permanently failing pairs (Section 4.4.2)."""
    fixed = _clone_truth(truth)
    fixed.permanent_pair[:] = 0.0
    fixed.permanent_pair_kind[:] = 0
    return fixed


def anycast_replicas(truth: GroundTruth) -> GroundTruth:
    """Halve correlated site-wide outages, as if every multi-replica site
    were spread across independent subnets/providers (Section 4.5's
    same-/24 finding inverted)."""
    fixed = _clone_truth(truth)
    fixed.site_fail *= 0.5
    return fixed


def failover_proxies(truth: GroundTruth) -> GroundTruth:
    """Proxies that retry alternate A records (the Section 4.7 fix).

    With failover, a single dead replica no longer fails the proxied
    request; only all-replica outages do.  Approximated by removing the
    independent replica-outage component the proxied path is exposed to.
    """
    fixed = _clone_truth(truth)
    fixed.replica_fail[:] = 0.0
    fixed.proxy_hostile[:] = 0.0
    return fixed


def plant_server_fault(
    truth: GroundTruth,
    world: World,
    site: str,
    start_hour: int,
    end_hour: int,
    intensity: float = 0.5,
) -> GroundTruth:
    """Inject a correlated server-side outage into the ground truth.

    Raises ``site``'s site-wide failure probability to at least
    ``intensity`` over hours ``[start_hour, end_hour)`` -- the
    controlled fault the online-detection SLO experiments measure
    onset-to-alert latency against (``repro simulate --fault
    server:SITE:START-END:INTENSITY``).  Everything else about the
    generated truth is untouched, so the fault's footprint in the
    dataset is exactly the planted window.
    """
    if not 0 <= start_hour < end_hour <= world.hours:
        raise ValueError(
            f"fault window [{start_hour}, {end_hour}) outside the "
            f"experiment (0..{world.hours})"
        )
    if not 0.0 < intensity <= 1.0:
        raise ValueError(f"fault intensity out of (0, 1]: {intensity}")
    try:
        si = world.site_idx(site)
    except KeyError:
        raise ValueError(f"unknown site {site!r}") from None
    planted = _clone_truth(truth)
    planted.site_fail[si, start_hour:end_hour] = np.maximum(
        planted.site_fail[si, start_hour:end_hour], intensity
    )
    return planted


def parse_fault_spec(spec: str):
    """Parse ``server:SITE:START-END:INTENSITY`` into a truth transform.

    Returns a ``truth_transform(world, truth)`` callable for
    :func:`repro.world.simulator.simulate_default_month`.  Only the
    ``server`` fault kind exists today; the spec grammar leaves room
    for client-side kinds later.
    """
    parts = spec.split(":")
    if len(parts) != 4 or parts[0] != "server":
        raise ValueError(
            f"bad fault spec {spec!r}; expected "
            "server:SITE:START-END:INTENSITY "
            "(e.g. server:berkeley.edu:24-48:0.5)"
        )
    _, site, window, intensity_str = parts
    start_str, sep, end_str = window.partition("-")
    if not sep:
        raise ValueError(f"bad fault window {window!r}; expected START-END")
    try:
        start_hour, end_hour = int(start_str), int(end_str)
        intensity = float(intensity_str)
    except ValueError:
        raise ValueError(
            f"bad fault spec {spec!r}: window bounds must be ints, "
            "intensity a float"
        ) from None

    def transform(world: World, truth: GroundTruth) -> GroundTruth:
        return plant_server_fault(
            truth, world, site, start_hour, end_hour, intensity
        )

    return transform


#: The named interventions, in the order the paper discusses them.
INTERVENTIONS: Dict[str, Callable[[GroundTruth], GroundTruth]] = {
    "reliable_ldns": reliable_ldns,
    "stable_bgp": stable_bgp,
    "no_permanent_pairs": no_permanent_pairs,
    "anycast_replicas": anycast_replicas,
    "failover_proxies": failover_proxies,
}


def run_intervention(
    world: World,
    truth: GroundTruth,
    name: str,
    per_hour: int = 2,
    seed: int = 7,
) -> SimulationResult:
    """Simulate the world under one named intervention."""
    try:
        transform = INTERVENTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown intervention {name!r}; choose from {sorted(INTERVENTIONS)}"
        ) from None
    fixed = transform(truth)
    simulator = MonthSimulator(
        world,
        access=AccessConfig(per_hour=per_hour),
        rngs=RNGRegistry(seed),
        truth=fixed,
    )
    return simulator.run()


def intervention_study(
    world: World,
    truth: GroundTruth,
    per_hour: int = 2,
    seed: int = 7,
) -> Dict[str, float]:
    """Overall failure rate under the baseline and every intervention.

    Returns ``{"baseline": rate, intervention: rate, ...}`` -- the
    quantified version of the paper's Section 5 discussion.
    """
    baseline = MonthSimulator(
        world,
        access=AccessConfig(per_hour=per_hour),
        rngs=RNGRegistry(seed),
        truth=truth,
    ).run()
    results = {"baseline": _rate(baseline)}
    for name in INTERVENTIONS:
        results[name] = _rate(
            run_intervention(world, truth, name, per_hour, seed)
        )
    return results


def _rate(result: SimulationResult) -> float:
    dataset = result.dataset
    total = int(dataset.transactions.sum())
    return int(dataset.failures.sum()) / total if total else 0.0
