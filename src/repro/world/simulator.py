"""The fast, vectorised month simulator.

Runs the whole experiment (134 clients x 80 sites x 744 hours x ~4
accesses/hour ~ 25M transactions) in well under a second by drawing
per-hour outcome counts over the columnar (category x client x site)
rate lattice (:mod:`repro.world.columnar`) directly into a
:class:`~repro.core.dataset.MeasurementDataset`.

The statistical model is identical to the detailed message-level engine
(:mod:`repro.world.detailed`); a validation test holds the two to
agreement.  Counts are drawn by Poisson factorisation -- the exact
category decomposition of the per-access DNS -> TCP -> HTTP stage
cascade -- with one scalar Poisson total and a multinomial scatter per
hour instead of a per-cell binomial cascade.

Determinism contract: every hour draws from its own derived RNG stream
(``fast-engine/hour/<h>``), so the month can be simulated in any order --
sequentially, or sharded across worker processes in contiguous hour blocks
(:mod:`repro.world.parallel`) -- and the resulting dataset is bit-identical
for the same master seed, independent of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.dataset import MeasurementDataset
from repro.world.columnar import BlockSink, ColumnarEngine, DatasetSink
from repro.world.entities import ClientCategory, World
from repro.world.faults import FaultConfig, FaultGenerator, GroundTruth
from repro.world.outcome_model import AccessConfig, OutcomeModel
from repro.world.rng import RNGRegistry


@dataclass
class SimulationResult:
    """The dataset plus the ground truth it was generated from.

    Ground truth is returned for *validation only* -- analyses must not
    consume it.
    """

    dataset: MeasurementDataset
    truth: GroundTruth
    model: OutcomeModel


@dataclass
class ShardResult:
    """One worker's simulated contiguous hour block.

    ``arrays`` maps every dataset array field to its counts restricted to
    ``[hour_start, hour_stop)``.  On the shared-memory transfer path
    (:mod:`repro.world.sharedmem`) the counts travel through the shared
    block instead and ``arrays`` is ``None`` -- only the bookkeeping
    fields ride the (tiny) pickled result.
    """

    hour_start: int
    hour_stop: int  # exclusive
    arrays: Optional[Dict[str, np.ndarray]]
    transactions: int
    elapsed_seconds: float
    stage_seconds: Dict[str, float]
    #: CPU seconds this shard's worker process spent on it -- summed by
    #: the parent into ``simulate_worker_cpu_seconds_total`` so a run
    #: manifest can report aggregate compute, not just wall time.
    cpu_seconds: float = 0.0
    #: Dumped per-worker metrics registry state (see
    #: :meth:`~repro.obs.metrics.MetricsRegistry.dump_state`), merged into
    #: the parent registry after the join.  Filled by the parallel driver.
    metrics: Optional[list] = None


class MonthSimulator:
    """Vectorised engine: one Poisson-factorised scatter per hour."""

    def __init__(
        self,
        world: World,
        access: Optional[AccessConfig] = None,
        faults: Optional[FaultConfig] = None,
        rngs: Optional[RNGRegistry] = None,
        truth: Optional[GroundTruth] = None,
    ) -> None:
        self.world = world
        self.access = access or AccessConfig()
        self.rngs = rngs or RNGRegistry()
        if truth is None:
            truth = FaultGenerator(world, faults, self.rngs.fork("faults")).generate()
        self.truth = truth
        self.model = OutcomeModel(world, truth, self.access)
        self.engine = ColumnarEngine(self.model, truth, self.rngs, self.access)
        #: Per-stage wall-time accumulators, committed to the metrics
        #: registry at the end of each run().
        self._stage_seconds = {"dns": 0.0, "tcp": 0.0, "http": 0.0, "commit": 0.0}

    # -- public API -------------------------------------------------------------

    def run(self, workers: Optional[int] = None) -> SimulationResult:
        """Simulate every hour and return the filled dataset.

        ``workers`` > 1 shards the month across that many worker
        processes in contiguous hour blocks (see
        :mod:`repro.world.parallel`); the result is bit-identical to the
        sequential path for the same master seed.  ``None`` or 1 runs
        in-process.
        """
        if workers is not None and workers > 1:
            from repro.world.parallel import run_parallel

            return run_parallel(self, workers)
        dataset = MeasurementDataset(self.world)
        # Per-stage wall time is accumulated locally and committed to the
        # registry once, so the hot loop pays only perf_counter() calls.
        self._stage_seconds = {"dns": 0.0, "tcp": 0.0, "http": 0.0, "commit": 0.0}
        emitter = obs.emitter()
        if emitter.enabled:
            emitter.emit(
                "run_start", hours=self.world.hours, workers=1, engine="fast",
                **_run_start_entities(self.world, emitter),
            )
            emitter.emit(
                "shard_start", hour_start=0, hour_stop=self.world.hours
            )
        started = perf_counter()
        cpu_started = process_time()
        with obs.stage(
            "simulate.month", hours=self.world.hours
        ) as month_stage:
            self._simulate_block(0, self.world.hours, DatasetSink(dataset))
            month_stage.add_items(int(dataset.transactions.sum()))
        self._commit_stage_metrics(self.world.hours)
        self._commit_outcome_metrics(dataset)
        self._attach_provenance(dataset, workers=1)
        if emitter.enabled:
            emitter.emit(
                "shard_done",
                hour_start=0,
                hour_stop=self.world.hours,
                transactions=int(dataset.transactions.sum(dtype=np.int64)),
                elapsed_seconds=round(perf_counter() - started, 6),
                cpu_seconds=round(process_time() - cpu_started, 6),
            )
            emitter.emit("run_done", **_dataset_totals(dataset))
        return SimulationResult(dataset=dataset, truth=self.truth, model=self.model)

    def run_shard(
        self,
        hour_start: int,
        hour_stop: int,
        sink: Optional[BlockSink] = None,
    ) -> ShardResult:
        """Simulate one contiguous hour block and return its counts.

        The unit of work the parallel engine dispatches to worker
        processes.  Stage wall-times are committed to the active (per
        worker) metrics registry.  By default the counts land in freshly
        allocated block arrays shipped back on the result; when the
        caller passes a ``sink`` (the shared-memory path, whose views
        the parent already owns) the result carries no arrays.
        """
        if not 0 <= hour_start <= hour_stop <= self.world.hours:
            raise ValueError(
                f"hour block [{hour_start}, {hour_stop}) outside experiment "
                f"(0..{self.world.hours})"
            )
        started = perf_counter()
        cpu_started = process_time()
        owns_arrays = sink is None
        if sink is None:
            sink = BlockSink(
                MeasurementDataset.block_template(
                    self.world, hour_stop - hour_start
                ),
                hour_start,
            )
        self._stage_seconds = {"dns": 0.0, "tcp": 0.0, "http": 0.0, "commit": 0.0}
        emitter = obs.emitter()
        if emitter.enabled:
            emitter.emit(
                "shard_start", hour_start=hour_start, hour_stop=hour_stop
            )
        with obs.stage(
            "simulate.shard", hour_start=hour_start, hour_stop=hour_stop
        ) as shard_stage:
            self._simulate_block(hour_start, hour_stop, sink)
            transactions = int(
                sink.arrays["transactions"].sum(dtype=np.int64)
            )
            shard_stage.add_items(transactions)
        self._commit_stage_metrics(hour_stop - hour_start)
        elapsed_seconds = perf_counter() - started
        cpu_seconds = process_time() - cpu_started
        if emitter.enabled:
            emitter.emit(
                "shard_done",
                hour_start=hour_start,
                hour_stop=hour_stop,
                transactions=transactions,
                elapsed_seconds=round(elapsed_seconds, 6),
                cpu_seconds=round(cpu_seconds, 6),
            )
        return ShardResult(
            hour_start=hour_start,
            hour_stop=hour_stop,
            arrays=sink.arrays if owns_arrays else None,
            transactions=transactions,
            elapsed_seconds=elapsed_seconds,
            stage_seconds=dict(self._stage_seconds),
            cpu_seconds=cpu_seconds,
        )

    def _simulate_block(self, hour_start: int, hour_stop: int, sink) -> None:
        """Simulate ``[hour_start, hour_stop)`` into ``sink``.

        Each hour draws from its own freshly derived stream, so blocks
        are order- and process-independent (see
        :meth:`~repro.world.columnar.ColumnarEngine.simulate_block`).
        """
        self.engine.simulate_block(
            hour_start, hour_stop, sink, self._stage_seconds
        )

    def _attach_provenance(
        self, dataset: MeasurementDataset, workers: int
    ) -> None:
        """Stamp the dataset with how it was generated (saved in .npz)."""
        dataset.provenance.update(
            {
                "engine": "fast",
                "master_seed": self.rngs.master_seed,
                "per_hour": self.access.per_hour,
                "workers": workers,
            }
        )

    def _commit_stage_metrics(self, hours: int) -> None:
        """Record per-stage wall-times accumulated over ``hours`` hours."""
        registry = obs.registry()
        for stage_name, seconds in self._stage_seconds.items():
            registry.counter(
                "stage_seconds_total", stage=f"simulate.{stage_name}"
            ).inc(seconds)
            registry.counter(
                "stage_calls_total", stage=f"simulate.{stage_name}"
            ).inc(hours)

    def _commit_outcome_metrics(self, dataset: MeasurementDataset) -> None:
        """Record the run's outcome counts."""
        registry = obs.registry()
        transactions = int(dataset.transactions.sum())
        dns = int(dataset.dns_failures.sum())
        tcp = int(dataset.tcp_failures.sum())
        http = int(dataset.http_errors.sum())
        masked = int(dataset.masked_failures.sum())
        registry.counter("simulate_transactions_total").inc(transactions)
        registry.counter("simulate_dns_failures_total").inc(dns)
        registry.counter("simulate_tcp_failures_total").inc(tcp)
        registry.counter("simulate_http_errors_total").inc(http)
        registry.counter("simulate_masked_failures_total").inc(masked)
        registry.counter("simulate_successes_total").inc(
            max(0, transactions - dns - tcp - http - masked)
        )
        registry.counter("simulate_connections_total").inc(
            int(dataset.connections.sum())
        )
        registry.counter("simulate_failed_connections_total").inc(
            int(dataset.failed_connections.sum())
        )
        registry.gauge("simulate_hours").set(self.world.hours)


def _run_start_entities(world, emitter) -> Dict[str, list]:
    """Entity-name fields for ``run_start`` when stats were asked for.

    The online detector resolves array indices back to names at alert
    time; shipping the rosters once on ``run_start`` keeps every later
    ``hour_stats`` event index-only and small.  ``client_regions`` rides
    along so the horizon SLO/history observers can aggregate per region
    (absent rosters just leave their region tables empty).
    """
    if not getattr(emitter, "entity_stats", False):
        return {}
    return {
        "clients": [c.name for c in world.clients],
        "servers": [w.name for w in world.websites],
        "client_regions": [c.region.value for c in world.clients],
    }


def _dataset_totals(dataset: MeasurementDataset) -> Dict[str, int]:
    """Month-wide per-failure-type totals for the ``run_done`` event."""
    return {
        "transactions": int(dataset.transactions.sum(dtype=np.int64)),
        "dns": int(dataset.dns_failures.sum(dtype=np.int64)),
        "tcp": int(dataset.tcp_failures.sum(dtype=np.int64)),
        "http": int(dataset.http_errors.sum(dtype=np.int64)),
        "masked": int(dataset.masked_failures.sum(dtype=np.int64)),
    }


def _split(total: int, parts: int, rng: np.random.Generator, weights=None) -> np.ndarray:
    """Multinomially split ``total`` across ``parts`` bins.

    The scalar reference the columnar engine's batched
    ``rng.multinomial`` replica splits generalise; kept for the detailed
    engine and as the semantic anchor the tests pin.
    """
    total = int(total)
    if parts == 1:
        return np.array([total], dtype=np.int64)
    if total == 0:
        return np.zeros(parts, dtype=np.int64)
    p = np.full(parts, 1.0 / parts) if weights is None else np.asarray(weights)
    return rng.multinomial(total, p).astype(np.int64)


def _expected_leading_failures(
    replica_eff_fail: np.ndarray, n_replicas: np.ndarray
) -> np.ndarray:
    """Expected dead-replica attempts before a success, per site.

    With the address list rotated uniformly and replica r down with
    probability q_r (persisting for the hour), the expected number of
    failed attempts before reaching an up replica, conditioned on at least
    one being up, is approximated by sum(q_r) / (n - sum(q_r) + 1).

    Scalar reference implementation; the columnar engine evaluates the
    same formula vectorised over hour chunks
    (:func:`repro.world.columnar.expected_leading_failures`).
    """
    out = np.zeros(replica_eff_fail.shape[0], dtype=np.float64)
    for si in range(replica_eff_fail.shape[0]):
        r = int(n_replicas[si])
        if r <= 1:
            continue
        q = replica_eff_fail[si, :r]
        down = float(q.sum())
        up = r - down
        if up <= 0:
            continue
        out[si] = down / (up + 1.0)
    return out


def simulate_default_month(
    hours: int = 744,
    per_hour: int = 4,
    seed: int = 20050101,
    faults: Optional[FaultConfig] = None,
    workers: Optional[int] = None,
    truth_transform=None,
) -> SimulationResult:
    """Convenience one-call entry point: default world, default faults.

    ``workers`` > 1 runs the hour-sharded parallel engine; output is
    bit-identical to the sequential path for the same seed.

    ``truth_transform(world, truth) -> truth`` edits the generated
    ground truth before simulation -- the fault-injection hook behind
    ``repro simulate --fault`` (see :mod:`repro.world.scenarios`).  Seed
    derivation is stateless per stream, so generating the truth here and
    handing it to the simulator draws exactly what the simulator would
    have drawn itself: a ``None`` transform is bit-identical to omitting
    the parameter.
    """
    from repro.world.defaults import build_default_world

    world = build_default_world(hours=hours)
    access = AccessConfig(per_hour=per_hour)
    rngs = RNGRegistry(seed)
    truth = FaultGenerator(world, faults, rngs.fork("faults")).generate()
    if truth_transform is not None:
        truth = truth_transform(world, truth)
    return MonthSimulator(world, access=access, rngs=rngs, truth=truth).run(
        workers=workers
    )
