"""The fast, vectorised month simulator.

Runs the whole experiment (134 clients x 80 sites x 744 hours x ~4
accesses/hour ~ 25M transactions) in seconds by drawing per-cell outcome
*counts* from the :class:`~repro.world.outcome_model.OutcomeModel`'s
probability matrices, hour by hour, directly into a
:class:`~repro.core.dataset.MeasurementDataset`.

The statistical model is identical to the detailed message-level engine
(:mod:`repro.world.detailed`); a validation test holds the two to
agreement.  Counts are drawn with sequential conditional binomials, exactly
matching the per-access stage ordering (DNS -> TCP -> HTTP).

Determinism contract: every hour draws from its own derived RNG stream
(``fast-engine/hour/<h>``), so the month can be simulated in any order --
sequentially, or sharded across worker processes in contiguous hour blocks
(:mod:`repro.world.parallel`) -- and the resulting dataset is bit-identical
for the same master seed, independent of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.dataset import MeasurementDataset
from repro.world.entities import ClientCategory, World
from repro.world.faults import FaultConfig, FaultGenerator, GroundTruth
from repro.world.outcome_model import AccessConfig, OutcomeModel
from repro.world.rng import RNGRegistry


@dataclass
class SimulationResult:
    """The dataset plus the ground truth it was generated from.

    Ground truth is returned for *validation only* -- analyses must not
    consume it.
    """

    dataset: MeasurementDataset
    truth: GroundTruth
    model: OutcomeModel


@dataclass
class ShardResult:
    """One worker's simulated contiguous hour block.

    ``arrays`` maps every dataset array field to its counts restricted to
    ``[hour_start, hour_stop)`` -- the compact unit workers ship back to
    the parent, which accumulates them with
    :meth:`~repro.core.dataset.MeasurementDataset.merge`.
    """

    hour_start: int
    hour_stop: int  # exclusive
    arrays: Dict[str, np.ndarray]
    transactions: int
    elapsed_seconds: float
    stage_seconds: Dict[str, float]
    #: CPU seconds this shard's worker process spent on it -- summed by
    #: the parent into ``simulate_worker_cpu_seconds_total`` so a run
    #: manifest can report aggregate compute, not just wall time.
    cpu_seconds: float = 0.0
    #: Dumped per-worker metrics registry state (see
    #: :meth:`~repro.obs.metrics.MetricsRegistry.dump_state`), merged into
    #: the parent registry after the join.  Filled by the parallel driver.
    metrics: Optional[list] = None


class MonthSimulator:
    """Vectorised engine: one binomial cascade per hour."""

    def __init__(
        self,
        world: World,
        access: Optional[AccessConfig] = None,
        faults: Optional[FaultConfig] = None,
        rngs: Optional[RNGRegistry] = None,
        truth: Optional[GroundTruth] = None,
    ) -> None:
        self.world = world
        self.access = access or AccessConfig()
        self.rngs = rngs or RNGRegistry()
        if truth is None:
            truth = FaultGenerator(world, faults, self.rngs.fork("faults")).generate()
        self.truth = truth
        self.model = OutcomeModel(world, truth, self.access)
        #: Per-stage wall-time accumulators, committed to the metrics
        #: registry at the end of each run().
        self._stage_seconds = {"dns": 0.0, "tcp": 0.0, "http": 0.0, "commit": 0.0}

    # -- public API -------------------------------------------------------------

    def run(self, workers: Optional[int] = None) -> SimulationResult:
        """Simulate every hour and return the filled dataset.

        ``workers`` > 1 shards the month across that many worker
        processes in contiguous hour blocks (see
        :mod:`repro.world.parallel`); the result is bit-identical to the
        sequential path for the same master seed.  ``None`` or 1 runs
        in-process.
        """
        if workers is not None and workers > 1:
            from repro.world.parallel import run_parallel

            return run_parallel(self, workers)
        dataset = MeasurementDataset(self.world)
        # Per-stage wall time is accumulated locally and committed to the
        # registry once, so the hot loop pays only perf_counter() calls.
        self._stage_seconds = {"dns": 0.0, "tcp": 0.0, "http": 0.0, "commit": 0.0}
        emitter = obs.emitter()
        if emitter.enabled:
            emitter.emit(
                "run_start", hours=self.world.hours, workers=1, engine="fast",
                **_run_start_entities(self.world, emitter),
            )
            emitter.emit(
                "shard_start", hour_start=0, hour_stop=self.world.hours
            )
        started = perf_counter()
        cpu_started = process_time()
        with obs.stage(
            "simulate.month", hours=self.world.hours
        ) as month_stage:
            self._simulate_block(0, self.world.hours, dataset)
            month_stage.add_items(int(dataset.transactions.sum()))
        self._commit_stage_metrics(self.world.hours)
        self._commit_outcome_metrics(dataset)
        self._attach_provenance(dataset, workers=1)
        if emitter.enabled:
            emitter.emit(
                "shard_done",
                hour_start=0,
                hour_stop=self.world.hours,
                transactions=int(dataset.transactions.sum(dtype=np.int64)),
                elapsed_seconds=round(perf_counter() - started, 6),
                cpu_seconds=round(process_time() - cpu_started, 6),
            )
            emitter.emit("run_done", **_dataset_totals(dataset))
        return SimulationResult(dataset=dataset, truth=self.truth, model=self.model)

    def run_shard(self, hour_start: int, hour_stop: int) -> ShardResult:
        """Simulate one contiguous hour block and return its counts.

        The unit of work the parallel engine dispatches to worker
        processes.  Stage wall-times are committed to the active (per
        worker) metrics registry; the hour-sliced arrays travel back to
        the parent compactly.
        """
        if not 0 <= hour_start <= hour_stop <= self.world.hours:
            raise ValueError(
                f"hour block [{hour_start}, {hour_stop}) outside experiment "
                f"(0..{self.world.hours})"
            )
        started = perf_counter()
        cpu_started = process_time()
        dataset = MeasurementDataset(self.world)
        self._stage_seconds = {"dns": 0.0, "tcp": 0.0, "http": 0.0, "commit": 0.0}
        emitter = obs.emitter()
        if emitter.enabled:
            emitter.emit(
                "shard_start", hour_start=hour_start, hour_stop=hour_stop
            )
        with obs.stage(
            "simulate.shard", hour_start=hour_start, hour_stop=hour_stop
        ) as shard_stage:
            self._simulate_block(hour_start, hour_stop, dataset)
            transactions = int(
                dataset.transactions[..., hour_start:hour_stop]
                .sum(dtype=np.int64)
            )
            shard_stage.add_items(transactions)
        self._commit_stage_metrics(hour_stop - hour_start)
        arrays = {
            name: np.ascontiguousarray(
                getattr(dataset, name)[..., hour_start:hour_stop]
            )
            for name in MeasurementDataset._ARRAY_FIELDS
        }
        elapsed_seconds = perf_counter() - started
        cpu_seconds = process_time() - cpu_started
        if emitter.enabled:
            emitter.emit(
                "shard_done",
                hour_start=hour_start,
                hour_stop=hour_stop,
                transactions=transactions,
                elapsed_seconds=round(elapsed_seconds, 6),
                cpu_seconds=round(cpu_seconds, 6),
            )
        return ShardResult(
            hour_start=hour_start,
            hour_stop=hour_stop,
            arrays=arrays,
            transactions=transactions,
            elapsed_seconds=elapsed_seconds,
            stage_seconds=dict(self._stage_seconds),
            cpu_seconds=cpu_seconds,
        )

    def _simulate_block(
        self, hour_start: int, hour_stop: int, dataset: MeasurementDataset
    ) -> None:
        """Simulate ``[hour_start, hour_stop)`` into ``dataset``.

        Each hour draws from its own freshly derived stream, so blocks
        are order- and process-independent.
        """
        proxied = self.model.proxied
        emitter = obs.emitter()
        for h in range(hour_start, hour_stop):
            stream = f"fast-engine/hour/{h}"
            with obs.span("simulate.hour", hour=h):
                rng = self.rngs.np_fresh(stream)
                self._simulate_hour(h, dataset, rng, proxied)
            # Live telemetry: per-hour failure-type counts, read back off
            # the committed slices (pure reads -- the emitter can never
            # perturb the dataset or the RNG, so the digest is identical
            # with telemetry on or off).
            if emitter.enabled:
                emitter.emit("hour_done", hour=h, stream=stream,
                             **_hour_counts(dataset, h))
                # Per-entity stats are a bigger payload (four vectors
                # plus sparse TCP triples), so they are opt-in: only
                # built when an online-analysis consumer subscribed.
                if getattr(emitter, "entity_stats", False):
                    emitter.emit("hour_stats", hour=h,
                                 **_hour_entity_stats(dataset, h))

    def _attach_provenance(
        self, dataset: MeasurementDataset, workers: int
    ) -> None:
        """Stamp the dataset with how it was generated (saved in .npz)."""
        dataset.provenance.update(
            {
                "engine": "fast",
                "master_seed": self.rngs.master_seed,
                "per_hour": self.access.per_hour,
                "workers": workers,
            }
        )

    def _commit_stage_metrics(self, hours: int) -> None:
        """Record per-stage wall-times accumulated over ``hours`` hours."""
        registry = obs.registry()
        for stage_name, seconds in self._stage_seconds.items():
            registry.counter(
                "stage_seconds_total", stage=f"simulate.{stage_name}"
            ).inc(seconds)
            registry.counter(
                "stage_calls_total", stage=f"simulate.{stage_name}"
            ).inc(hours)

    def _commit_outcome_metrics(self, dataset: MeasurementDataset) -> None:
        """Record the run's outcome counts."""
        registry = obs.registry()
        transactions = int(dataset.transactions.sum())
        dns = int(dataset.dns_failures.sum())
        tcp = int(dataset.tcp_failures.sum())
        http = int(dataset.http_errors.sum())
        masked = int(dataset.masked_failures.sum())
        registry.counter("simulate_transactions_total").inc(transactions)
        registry.counter("simulate_dns_failures_total").inc(dns)
        registry.counter("simulate_tcp_failures_total").inc(tcp)
        registry.counter("simulate_http_errors_total").inc(http)
        registry.counter("simulate_masked_failures_total").inc(masked)
        registry.counter("simulate_successes_total").inc(
            max(0, transactions - dns - tcp - http - masked)
        )
        registry.counter("simulate_connections_total").inc(
            int(dataset.connections.sum())
        )
        registry.counter("simulate_failed_connections_total").inc(
            int(dataset.failed_connections.sum())
        )
        registry.gauge("simulate_hours").set(self.world.hours)

    # -- internals ---------------------------------------------------------------

    def _simulate_hour(
        self,
        h: int,
        dataset: MeasurementDataset,
        rng: np.random.Generator,
        proxied: np.ndarray,
    ) -> None:
        hour = self.model.hour(h)
        n = rng.poisson(hour.n_expected).astype(np.int64)
        # Scaled runs (large per_hour) would silently wrap the uint16
        # count arrays; every transaction-level count is bounded by n, so
        # one capacity check covers the whole commit below.
        if n.size:
            dataset.ensure_count_capacity(int(n.max()))
        # Clients that are down make no accesses at all this hour; the
        # Poisson above is per-cell thinning for DU duty cycles etc.
        direct = ~proxied
        stage_seconds = self._stage_seconds

        # ---- DNS cascade (direct clients only; the proxy masks DNS) ----
        t0 = perf_counter()
        ldns_f = rng.binomial(n, hour.p_ldns)
        rest = n - ldns_f
        nonldns_f = rng.binomial(rest, hour.p_nonldns)
        rest = rest - nonldns_f
        dnserr_f = rng.binomial(rest, hour.p_dnserr)
        dns_ok = rest - dnserr_f
        t1 = perf_counter()
        stage_seconds["dns"] += t1 - t0

        # ---- TCP stage ----
        tcp_f = rng.binomial(dns_ok, hour.p_tcp)
        tcp_ok = dns_ok - tcp_f
        # Split TCP failures into kinds with two conditional binomials.
        noconn = rng.binomial(tcp_f, hour.tcp_mix_noconn)
        remaining = tcp_f - noconn
        denom = 1.0 - hour.tcp_mix_noconn
        p_noresp_given_rest = np.divide(
            hour.tcp_mix_noresp, denom, out=np.zeros_like(denom), where=denom > 1e-12
        )
        noresp = rng.binomial(remaining, np.clip(p_noresp_given_rest, 0.0, 1.0))
        partial = remaining - noresp
        t2 = perf_counter()
        stage_seconds["tcp"] += t2 - t1

        # ---- HTTP stage ----
        http_f = rng.binomial(tcp_ok, hour.p_http)
        success = tcp_ok - http_f

        # ---- Proxied clients: opaque pass/fail ----
        masked_f = rng.binomial(n, hour.p_fail_proxied)
        t3 = perf_counter()
        stage_seconds["http"] += t3 - t2

        # ---- Commit transaction-level counts ----
        dataset.transactions[:, :, h] = n
        dataset.dns_ldns[:, :, h] = np.where(direct[:, None], ldns_f, 0)
        dataset.dns_nonldns[:, :, h] = np.where(direct[:, None], nonldns_f, 0)
        dataset.dns_error[:, :, h] = np.where(direct[:, None], dnserr_f, 0)
        # BB clients lack packet traces: no-response and partial-response
        # are indistinguishable, and a fraction of no-connection failures
        # cannot be identified from wget exit information alone either
        # (Figure 3's combined category).
        bb = self.model.bb
        ambiguous_rows = bb & direct
        noconn_hidden = rng.binomial(
            np.where(ambiguous_rows[:, None], noconn, 0),
            1.0 - self.access.bb_noconn_visibility,
        )
        dataset.tcp_noconn[:, :, h] = np.where(
            direct[:, None], noconn - noconn_hidden, 0
        )
        dataset.tcp_noresp[:, :, h] = np.where(
            (direct & ~ambiguous_rows)[:, None], noresp, 0
        )
        dataset.tcp_partial[:, :, h] = np.where(
            (direct & ~ambiguous_rows)[:, None], partial, 0
        )
        dataset.tcp_ambiguous[:, :, h] = np.where(
            ambiguous_rows[:, None], noresp + partial + noconn_hidden, 0
        )
        dataset.http_errors[:, :, h] = np.where(direct[:, None], http_f, 0)
        dataset.masked_failures[:, :, h] = np.where(proxied[:, None], masked_f, 0)

        # ---- Connection-level counts (direct clients only) ----
        self._commit_connections(
            h, dataset, rng, direct, success, http_f, tcp_f, partial, hour
        )
        stage_seconds["commit"] += perf_counter() - t3

    def _commit_connections(
        self,
        h: int,
        dataset: MeasurementDataset,
        rng: np.random.Generator,
        direct: np.ndarray,
        success: np.ndarray,
        http_f: np.ndarray,
        tcp_f: np.ndarray,
        partial: np.ndarray,
        hour,
    ) -> None:
        """Connection accounting: retries, failover, redirects, replicas.

        Ordinary TCP failures make one pass over the address list (wget's
        per-connection timeouts exhaust its patience); permanent-pair
        failures fail fast (RST, checksum abort) and get retried
        ``permanent_tries`` times -- the mechanism behind their outsized
        share of connection failures (50.7% in the paper, Section 4.4.2).
        """
        n_addr = self.model.n_addresses[None, :]  # (1, S)
        perm = self.truth.permanent_pair > 0  # (C, S)
        tries = np.where(perm, self.access.permanent_tries, self.access.tries)

        delivered = success + http_f  # transactions that got a response
        redirect_p = np.broadcast_to(
            self.model.redirect_p[None, :].astype(np.float64), delivered.shape
        )
        redirects = rng.binomial(delivered, redirect_p)

        # Extra failed attempts before success at spread-replica sites: the
        # wget walks the (rotated) address list past dead replicas.
        spread = self.model.spread_site
        extra_failed = np.zeros_like(delivered)
        if spread.any():
            exp_extra = _expected_leading_failures(
                hour.replica_eff_fail, self.model.n_replicas
            )  # (S,)
            lam = delivered * exp_extra[None, :] * spread[None, :]
            extra_failed = rng.poisson(lam)

        failed_conns = tcp_f * (tries * n_addr) + extra_failed
        total_conns = delivered + redirects + failed_conns
        if total_conns.size:
            dataset.ensure_count_capacity(
                int(total_conns.max()),
                fields=("connections", "failed_connections"),
            )

        direct_col = direct[:, None]
        dataset.connections[:, :, h] = np.where(direct_col, total_conns, 0)
        dataset.failed_connections[:, :, h] = np.where(direct_col, failed_conns, 0)

        # Retransmission-inferred packet losses (Section 3.5(b)).  Only
        # data-bearing retransmissions are countable: "failed connections
        # that transfer no data ... are hard to account for" (Section
        # 4.1.3), so no-connection failures contribute nothing -- which is
        # exactly why the loss estimate correlates only weakly with the
        # transaction failure rate.
        bg_loss = self.truth.config.background_packet_loss
        segments_per_transfer = 16.0
        # Transfers that survive a bad period still ride a lossier channel,
        # giving the mild positive coupling the paper measures (r ~ 0.19).
        ambient = hour.p_tcp * segments_per_transfer * 1.4
        lam = (
            delivered * (bg_loss * segments_per_transfer + ambient)
            + partial.astype(np.float64) * 6.0
        )
        losses = rng.poisson(lam)
        dataset.packet_losses[:, :, h] = np.where(direct_col, losses, 0)

        # ---- Replica-level aggregation (across direct clients) ----
        site_conns = np.where(direct_col, total_conns, 0).sum(axis=0)
        site_failed = np.where(direct_col, failed_conns, 0).sum(axis=0)
        site_extra = np.where(direct_col, extra_failed, 0).sum(axis=0)
        n_repl = self.model.n_replicas
        max_r = dataset.replica_connections.shape[1]
        for si in np.nonzero(n_repl > 0)[0]:
            r = int(n_repl[si])
            if spread[si]:
                # Failed attempts concentrate on the dead replicas.
                r_fail = hour.replica_eff_fail[si, :r]
                weights = r_fail / r_fail.sum() if r_fail.sum() > 0 else None
                per_replica_failed = _split(site_extra[si], r, rng, weights)
                base_failed = _split(site_failed[si] - site_extra[si], r, rng)
                per_replica_failed = per_replica_failed + base_failed
            else:
                per_replica_failed = _split(site_failed[si], r, rng)
            per_replica_conns = _split(site_conns[si], r, rng)
            # Connections can't be fewer than failures per replica.
            per_replica_conns = np.maximum(per_replica_conns, per_replica_failed)
            dataset.replica_connections[si, :r, h] += per_replica_conns.astype(
                np.uint32
            )
            dataset.replica_failed_connections[si, :r, h] += per_replica_failed.astype(
                np.uint32
            )


def _hour_counts(dataset: MeasurementDataset, h: int) -> Dict[str, int]:
    """Per-failure-type transaction counts of hour ``h`` (pure reads).

    Sums the component slices directly rather than going through the
    ``dns_failures``/``tcp_failures`` properties, which would
    materialize full month-sized arrays once per hour.
    """

    def total(*fields: str) -> int:
        return int(
            sum(
                getattr(dataset, name)[:, :, h].sum(dtype=np.int64)
                for name in fields
            )
        )

    return {
        "transactions": total("transactions"),
        "dns": total("dns_ldns", "dns_nonldns", "dns_error"),
        "tcp": total("tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous"),
        "http": total("http_errors"),
        "masked": total("masked_failures"),
    }


def _run_start_entities(world, emitter) -> Dict[str, list]:
    """Entity-name fields for ``run_start`` when stats were asked for.

    The online detector resolves array indices back to names at alert
    time; shipping the rosters once on ``run_start`` keeps every later
    ``hour_stats`` event index-only and small.
    """
    if not getattr(emitter, "entity_stats", False):
        return {}
    return {
        "clients": [c.name for c in world.clients],
        "servers": [w.name for w in world.websites],
    }


def _hour_entity_stats(dataset: MeasurementDataset, h: int) -> Dict[str, list]:
    """Per-entity counts of hour ``h`` for the online detection pipeline.

    Everything :mod:`repro.obs.online` needs to mirror the batch
    episode/blame analysis for one hour, in plain JSON-native lists:
    per-client and per-server transaction/failure vectors plus the
    sparse (client, server, count) TCP-failure triples blame buckets on.
    Pure reads of the committed slices, like :func:`_hour_counts`.
    """
    trans = dataset.transactions[:, :, h].astype(np.int64)
    failures = np.zeros_like(trans)
    for name in (
        "dns_ldns", "dns_nonldns", "dns_error",
        "tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous",
        "http_errors", "masked_failures",
    ):
        failures += getattr(dataset, name)[:, :, h]
    tcp = np.zeros_like(trans)
    for name in ("tcp_noconn", "tcp_noresp", "tcp_partial", "tcp_ambiguous"):
        tcp += getattr(dataset, name)[:, :, h]
    ci, si = np.nonzero(tcp)
    return {
        "ct": trans.sum(axis=1).tolist(),
        "cf": failures.sum(axis=1).tolist(),
        "st": trans.sum(axis=0).tolist(),
        "sf": failures.sum(axis=0).tolist(),
        "tcp": [
            [int(c), int(s), int(tcp[c, s])] for c, s in zip(ci, si)
        ],
    }


def _dataset_totals(dataset: MeasurementDataset) -> Dict[str, int]:
    """Month-wide per-failure-type totals for the ``run_done`` event."""
    return {
        "transactions": int(dataset.transactions.sum(dtype=np.int64)),
        "dns": int(dataset.dns_failures.sum(dtype=np.int64)),
        "tcp": int(dataset.tcp_failures.sum(dtype=np.int64)),
        "http": int(dataset.http_errors.sum(dtype=np.int64)),
        "masked": int(dataset.masked_failures.sum(dtype=np.int64)),
    }


def _split(total: int, parts: int, rng: np.random.Generator, weights=None) -> np.ndarray:
    """Multinomially split ``total`` across ``parts`` bins."""
    total = int(total)
    if parts == 1:
        return np.array([total], dtype=np.int64)
    if total == 0:
        return np.zeros(parts, dtype=np.int64)
    p = np.full(parts, 1.0 / parts) if weights is None else np.asarray(weights)
    return rng.multinomial(total, p).astype(np.int64)


def _expected_leading_failures(
    replica_eff_fail: np.ndarray, n_replicas: np.ndarray
) -> np.ndarray:
    """Expected dead-replica attempts before a success, per site.

    With the address list rotated uniformly and replica r down with
    probability q_r (persisting for the hour), the expected number of
    failed attempts before reaching an up replica, conditioned on at least
    one being up, is approximated by sum(q_r) / (n - sum(q_r) + 1).
    """
    out = np.zeros(replica_eff_fail.shape[0], dtype=np.float64)
    for si in range(replica_eff_fail.shape[0]):
        r = int(n_replicas[si])
        if r <= 1:
            continue
        q = replica_eff_fail[si, :r]
        down = float(q.sum())
        up = r - down
        if up <= 0:
            continue
        out[si] = down / (up + 1.0)
    return out


def simulate_default_month(
    hours: int = 744,
    per_hour: int = 4,
    seed: int = 20050101,
    faults: Optional[FaultConfig] = None,
    workers: Optional[int] = None,
    truth_transform=None,
) -> SimulationResult:
    """Convenience one-call entry point: default world, default faults.

    ``workers`` > 1 runs the hour-sharded parallel engine; output is
    bit-identical to the sequential path for the same seed.

    ``truth_transform(world, truth) -> truth`` edits the generated
    ground truth before simulation -- the fault-injection hook behind
    ``repro simulate --fault`` (see :mod:`repro.world.scenarios`).  Seed
    derivation is stateless per stream, so generating the truth here and
    handing it to the simulator draws exactly what the simulator would
    have drawn itself: a ``None`` transform is bit-identical to omitting
    the parameter.
    """
    from repro.world.defaults import build_default_world

    world = build_default_world(hours=hours)
    access = AccessConfig(per_hour=per_hour)
    rngs = RNGRegistry(seed)
    truth = FaultGenerator(world, faults, rngs.fork("faults")).generate()
    if truth_transform is not None:
        truth = truth_transform(world, truth)
    return MonthSimulator(world, access=access, rngs=rngs, truth=truth).run(
        workers=workers
    )
