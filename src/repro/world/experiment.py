"""The measurement experiment driver -- Section 3.4's download procedure.

For each measurement iteration the procedure is, verbatim from the paper:

1. Flush the local DNS cache.
2. Use wget to download the URL ("index" file only).
3. Use iterative dig to traverse the DNS hierarchy.
4. Use tcpdump or windump to record a packet-level trace.

This module wraps :class:`~repro.world.detailed.DetailedEngine` with that
procedure, including the DU special-casing (dial into a random PoP, then
download all URLs in random order at a stretch) and the CN ``no-cache``
directive.  It produces the performance records plus the auxiliary dig
results Section 4.2's breakdown uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.records import PerformanceRecord, RecordBatch
from repro.dns.iterative import DigResult
from repro.world.detailed import DetailedEngine
from repro.world.entities import Client, ClientCategory, World


@dataclass
class IterationResult:
    """One client's measurement iteration: records plus dig results."""

    client_name: str
    hour: int
    records: List[PerformanceRecord] = field(default_factory=list)
    digs: Dict[str, DigResult] = field(default_factory=dict)

    def failures(self) -> List[PerformanceRecord]:
        """Failed transactions in this iteration."""
        return [r for r in self.records if r.failed]

    def dig_agreement(self) -> Tuple[int, int]:
        """(dns_failures_where_dig_also_failed, dns_failures).

        Section 4.2: in over 94% of wget DNS failures the iterative dig
        also fails.
        """
        from repro.core.records import FailureType

        total = 0
        agree = 0
        for record in self.records:
            if record.failure_type is FailureType.DNS:
                total += 1
                dig = self.digs.get(record.site_name)
                if dig is not None and not dig.succeeded:
                    agree += 1
        return agree, total


class ExperimentDriver:
    """Runs the Section 3.4 procedure over the detailed engine.

    The driver's randomness (URL shuffle, start-offset jitter, dial-up
    PoP order) is derived from the engine's :class:`~repro.world.rng.
    RNGRegistry` under ``experiment:*`` stream names, so every seed is
    namespaced against the master seed and appears in the ``--trace``
    seed log.  ``seed`` disambiguates drivers sharing one engine; equal
    (engine, seed) pairs draw identically.
    """

    def __init__(self, engine: DetailedEngine, seed: int = 1) -> None:
        self.engine = engine
        self.world = engine.world
        self._rng = engine.rngs.fresh(f"experiment:driver:{seed}")

    def run_iteration(
        self,
        client_name: str,
        hour: int,
        site_names: Optional[List[str]] = None,
        run_digs: bool = True,
    ) -> IterationResult:
        """One full iteration: every URL once, in randomized order."""
        client = self.world.client_named(client_name)
        ci = self.world.client_idx(client_name)
        if not self.engine.truth.client_up[ci, hour]:
            return IterationResult(client_name=client_name, hour=hour)

        urls = list(site_names or [w.name for w in self.world.websites])
        self._rng.shuffle(urls)  # step 0: randomize the sequence

        result = IterationResult(client_name=client_name, hour=hour)
        offset = self._rng.uniform(0.0, 600.0)
        with obs.span(
            "experiment.iteration", client=client_name, hour=hour, urls=len(urls)
        ):
            for site_name in urls:
                # Step 1 (cache flush) happens inside the engine; steps 2-4
                # (wget, iterative dig, trace capture) are one call so the dig
                # observes the same fault state the download did.
                do_dig = run_digs and not client.proxied
                record, raw, dig = self.engine.run_transaction_with_dig(
                    client_name, site_name, hour, offset, run_dig=do_dig
                )
                result.records.append(record)
                offset += max(0.5, min(90.0, record.download_time + 0.5))
                if dig is not None:
                    result.digs[site_name] = dig
        registry = obs.registry()
        registry.counter("experiment_iterations_total").inc()
        registry.counter("experiment_records_total").inc(len(result.records))
        registry.counter("experiment_digs_total").inc(len(result.digs))
        return result

    def run_dialup_session(
        self, physical_client_seed: int, hour: int, pops: List[str]
    ) -> List[IterationResult]:
        """The DU procedure: dial a random PoP, fetch all URLs, move on.

        ``pops`` are DU client names (one per PoP); a physical machine
        visits them in random order within the hour.  Each physical
        client's PoP order comes from its own registry-derived stream,
        rewound per call, so re-running a session replays it exactly.
        """
        order = list(pops)
        rng = self.engine.rngs.fresh(
            f"experiment:dialup:{physical_client_seed}"
        )
        rng.shuffle(order)
        results = []
        for pop_client in order[: max(1, len(order) // 5)]:
            results.append(self.run_iteration(pop_client, hour, run_digs=False))
        return results

    def collect(self, iterations: List[IterationResult]) -> RecordBatch:
        """Flatten iteration results into one record batch."""
        batch = RecordBatch()
        for iteration in iterations:
            for record in iteration.records:
                batch.append(record)
        return batch
