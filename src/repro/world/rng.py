"""Seeded, named random streams.

Every stochastic component draws from its own named stream derived from the
master seed, so that (a) runs are exactly reproducible and (b) changing one
component's draws (say, adding a fault process) does not perturb every other
component's randomness -- which keeps calibration stable as the simulator
evolves.

Seed derivation is *namespaced* by stream kind: a stdlib stream, a numpy
stream, and a fork that happen to share a name must not share a seed
(``stream("faults")`` and ``fork("faults")`` would otherwise produce
correlated draws).  Derivation is also *stateless*: the seed for a name
depends only on the master seed and the name, never on creation order or
on how much any other stream has been consumed -- the property that lets
the hour-sharded parallel engine derive identical per-hour streams in any
worker process.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np

from repro import obs


class RNGRegistry:
    """Hands out independent :class:`random.Random` and numpy generators.

    Every stream creation and fork is recorded on the observability event
    log (``rng.stream`` / ``rng.np_stream`` / ``rng.fork`` events carrying
    the derived seed), so a ``--trace`` run's JSONL file contains every
    seed needed to reproduce the simulation exactly.
    """

    def __init__(self, master_seed: int = 20050101) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def _derive(self, namespace: str, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}:{namespace}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def derived_seed(self, namespace: str, name: str) -> int:
        """The seed a stream of ``namespace``/``name`` would get.

        Exposed so tests and external replayers can pin expected seeds
        without creating the stream.
        """
        return self._derive(namespace, name)

    def stream(self, name: str) -> random.Random:
        """The stdlib Random stream for ``name`` (created on first use)."""
        if name not in self._streams:
            seed = self._derive("stream", name)
            obs.event(
                "rng.stream", name=name, seed=seed, master=self.master_seed
            )
            # repro: lint-ok[DET004] registry-internal construction
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def fresh(self, name: str) -> random.Random:
        """A freshly seeded stdlib Random for ``name``, never cached.

        The stdlib counterpart of :meth:`np_fresh`: repeated calls
        return *new* generators rewound to the stream's start, so a
        bounded, self-contained consumer (one dial-up session, one
        driver instance) draws bit-identically no matter how many times
        or in which process it runs.  Shares the ``stream`` namespace:
        ``fresh(n)`` starts where a brand-new ``stream(n)`` would.
        """
        seed = self._derive("stream", name)
        obs.event("rng.fresh", name=name, seed=seed, master=self.master_seed)
        # repro: lint-ok[DET004] registry-internal construction
        return random.Random(seed)

    def np_stream(self, name: str) -> np.random.Generator:
        """The numpy Generator stream for ``name`` (created on first use)."""
        if name not in self._np_streams:
            seed = self._derive("np", name)
            obs.event(
                "rng.np_stream", name=name, seed=seed, master=self.master_seed
            )
            # repro: lint-ok[DET004] registry-internal construction
            self._np_streams[name] = np.random.default_rng(seed)
        return self._np_streams[name]

    def np_fresh(self, name: str) -> np.random.Generator:
        """A freshly seeded numpy Generator for ``name``, never cached.

        Unlike :meth:`np_stream`, repeated calls return *new* generators
        rewound to the stream's start, so a consumer that draws a bounded,
        self-contained block (one simulated hour, say) gets bit-identical
        draws no matter which process or in which order it runs.  Shares
        the ``np`` namespace: ``np_fresh(n)`` starts where a brand-new
        ``np_stream(n)`` would.
        """
        seed = self._derive("np", name)
        obs.event(
            "rng.np_fresh", name=name, seed=seed, master=self.master_seed
        )
        # repro: lint-ok[DET004] registry-internal construction
        return np.random.default_rng(seed)

    def fork(self, name: str) -> "RNGRegistry":
        """A child registry whose master seed is derived from ``name``."""
        seed = self._derive("fork", name)
        obs.event("rng.fork", name=name, seed=seed, master=self.master_seed)
        return RNGRegistry(seed)
