"""Seeded, named random streams.

Every stochastic component draws from its own named stream derived from the
master seed, so that (a) runs are exactly reproducible and (b) changing one
component's draws (say, adding a fault process) does not perturb every other
component's randomness -- which keeps calibration stable as the simulator
evolves.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np

from repro import obs


class RNGRegistry:
    """Hands out independent :class:`random.Random` and numpy generators.

    Every stream creation and fork is recorded on the observability event
    log (``rng.stream`` / ``rng.np_stream`` / ``rng.fork`` events carrying
    the derived seed), so a ``--trace`` run's JSONL file contains every
    seed needed to reproduce the simulation exactly.
    """

    def __init__(self, master_seed: int = 20050101) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """The stdlib Random stream for ``name`` (created on first use)."""
        if name not in self._streams:
            seed = self._derive(name)
            obs.event(
                "rng.stream", name=name, seed=seed, master=self.master_seed
            )
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def np_stream(self, name: str) -> np.random.Generator:
        """The numpy Generator stream for ``name`` (created on first use)."""
        if name not in self._np_streams:
            seed = self._derive(name)
            obs.event(
                "rng.np_stream", name=name, seed=seed, master=self.master_seed
            )
            self._np_streams[name] = np.random.default_rng(seed)
        return self._np_streams[name]

    def fork(self, name: str) -> "RNGRegistry":
        """A child registry whose master seed is derived from ``name``."""
        seed = self._derive(name)
        obs.event("rng.fork", name=name, seed=seed, master=self.master_seed)
        return RNGRegistry(seed)
