"""Authoritative and recursive DNS servers.

The hierarchy is a faithful (if compact) model of what the paper's clients
traversed: root servers delegate to TLD servers, which delegate to each
website's authoritative servers.  Authoritative servers can be taken
offline (producing the "non-LDNS timeout" category) or misconfigured to
return SERVFAIL/NXDOMAIN (the "error response" category, which the paper
traces to buggy authoritative servers for www.brazzil.com and www.espn.com).

The recursive server (LDNS) performs iterative resolution on behalf of the
stub resolver, caching aggressively.  Whether the *client can reach* the
LDNS at all is the province of :mod:`repro.dns.resolver`; this module only
models server-side behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.cache import DNSCache
from repro.dns.message import (
    DNSQuery,
    DNSResponse,
    RCode,
    RecordType,
    make_a_response,
    make_error_response,
    make_referral,
    normalize_name,
    parent_zone,
)
from repro.net.addressing import IPv4Address


class DNSServerError(RuntimeError):
    """Raised for configuration errors in the DNS hierarchy."""


@dataclass
class Zone:
    """Authoritative data for one zone.

    ``a_records`` maps fully-qualified names to their address sets;
    ``cnames`` maps names to their canonical-name target; ``delegations``
    maps child zone names to (ns_name, glue address) pairs.
    """

    name: str
    a_records: Dict[str, List[IPv4Address]] = field(default_factory=dict)
    cnames: Dict[str, str] = field(default_factory=dict)
    delegations: Dict[str, List[Tuple[str, IPv4Address]]] = field(default_factory=dict)
    default_ttl: int = 300

    def __post_init__(self) -> None:
        self.name = normalize_name(self.name) if self.name else ""

    def add_a(self, name: str, addresses: Sequence[IPv4Address]) -> None:
        """Add (or extend) the A record set for ``name``."""
        name = normalize_name(name)
        self.a_records.setdefault(name, []).extend(addresses)

    def add_cname(self, name: str, target: str) -> None:
        """Add a CNAME from ``name`` to ``target``."""
        self.cnames[normalize_name(name)] = normalize_name(target)

    def delegate(self, child: str, servers: Sequence[Tuple[str, IPv4Address]]) -> None:
        """Delegate the ``child`` zone to the given (ns_name, address) servers."""
        if not servers:
            raise DNSServerError("delegation needs at least one server")
        self.delegations[normalize_name(child)] = list(servers)

    def covering_delegation(self, name: str) -> Optional[str]:
        """The most specific delegated child zone covering ``name``, if any."""
        name = normalize_name(name)
        best: Optional[str] = None
        for child in self.delegations:
            if name == child or name.endswith("." + child):
                if best is None or len(child) > len(best):
                    best = child
        return best


@dataclass
class AuthoritativeServer:
    """One authoritative DNS server hosting a zone.

    Fault knobs:

    * ``available`` -- when False the server never answers (queries to it
      time out), modelling an unreachable authoritative server.
    * ``forced_rcode`` -- when set, every in-zone query gets this error,
      modelling the misconfigured servers of Section 4.2.
    * ``flakiness`` -- probability of silently dropping any given query.
    """

    name: str
    address: IPv4Address
    zone: Zone
    available: bool = True
    forced_rcode: Optional[RCode] = None
    flakiness: float = 0.0
    queries_handled: int = 0
    queries_dropped: int = 0

    def handle(self, query: DNSQuery, rng: random.Random) -> Optional[DNSResponse]:
        """Answer a query, or return None if the query is (effectively) lost."""
        if not self.available:
            self.queries_dropped += 1
            return None
        if self.flakiness and rng.random() < self.flakiness:
            self.queries_dropped += 1
            return None
        self.queries_handled += 1
        if self.forced_rcode is not None:
            return make_error_response(query, self.forced_rcode)
        return self._answer(query)

    def _answer(self, query: DNSQuery) -> DNSResponse:
        name = query.name
        zone = self.zone
        in_zone = not zone.name or name == zone.name or name.endswith("." + zone.name)
        if not in_zone:
            return make_error_response(query, RCode.REFUSED)
        delegated = zone.covering_delegation(name)
        if delegated is not None:
            servers = zone.delegations[delegated]
            return make_referral(
                query,
                zone=delegated,
                ns_names=[ns for ns, _ in servers],
                glue=servers,
                ttl=zone.default_ttl,
            )
        # Follow an in-zone CNAME chain.
        chain: List[str] = []
        owner = name
        while owner in zone.cnames:
            chain.append(zone.cnames[owner])
            owner = zone.cnames[owner]
            if len(chain) > 8:
                return make_error_response(query, RCode.SERVFAIL)
        if owner in zone.a_records:
            return make_a_response(
                query,
                zone.a_records[owner],
                ttl=zone.default_ttl,
                cname_chain=chain,
            )
        if chain:
            # CNAME pointing out of zone: return the chain so the resolver
            # can restart at the target.
            return make_a_response(
                query, [], ttl=zone.default_ttl, cname_chain=chain
            )
        return make_error_response(query, RCode.NXDOMAIN)


class DNSHierarchy:
    """The registry of every authoritative server, rooted at the root zone.

    Provides address-based dispatch (queries are sent to server addresses,
    exactly as a resolver would) and name-based inspection for tests.
    """

    def __init__(self) -> None:
        self._by_address: Dict[IPv4Address, AuthoritativeServer] = {}
        self._roots: List[AuthoritativeServer] = []

    def register(self, server: AuthoritativeServer, is_root: bool = False) -> None:
        """Register a server; roots are the iterative-resolution entry point."""
        if server.address in self._by_address:
            raise DNSServerError(f"duplicate server address {server.address}")
        self._by_address[server.address] = server
        if is_root:
            self._roots.append(server)

    def root_servers(self) -> List[AuthoritativeServer]:
        """All registered root servers."""
        if not self._roots:
            raise DNSServerError("no root servers registered")
        return list(self._roots)

    def server_at(self, address: IPv4Address) -> Optional[AuthoritativeServer]:
        """The server listening at ``address``, if any."""
        return self._by_address.get(address)

    def servers(self) -> List[AuthoritativeServer]:
        """Every registered server."""
        return list(self._by_address.values())

    def query(
        self, address: IPv4Address, query: DNSQuery, rng: random.Random
    ) -> Optional[DNSResponse]:
        """Send ``query`` to the server at ``address``; None if no answer."""
        server = self._by_address.get(address)
        if server is None:
            return None
        return server.handle(query, rng)


@dataclass
class RecursionResult:
    """Outcome of one recursive resolution attempt at an LDNS."""

    response: Optional[DNSResponse]
    elapsed: float
    servers_contacted: int
    timed_out: bool

    @property
    def succeeded(self) -> bool:
        """True if a NOERROR answer with at least one address was obtained."""
        return (
            self.response is not None
            and self.response.rcode is RCode.NOERROR
            and bool(self.response.addresses())
        )


class RecursiveResolverServer:
    """A local DNS server (LDNS) doing iterative resolution with a cache.

    ``process_up`` models the LDNS host itself: when False the server does
    not respond at all (the stub sees an LDNS timeout).  Per-upstream-query
    behaviour: latency is sampled from ``query_latency``; unanswered
    queries cost ``upstream_timeout`` seconds each and are retried on the
    zone's other servers.
    """

    MAX_STEPS = 24

    def __init__(
        self,
        name: str,
        address: IPv4Address,
        hierarchy: DNSHierarchy,
        rng: random.Random,
        upstream_timeout: float = 2.0,
        query_latency: float = 0.04,
        budget: float = 8.0,
    ) -> None:
        self.name = name
        self.address = address
        self.hierarchy = hierarchy
        self.cache = DNSCache()
        self.process_up = True
        self.upstream_timeout = upstream_timeout
        self.query_latency = query_latency
        self.budget = budget
        self._rng = rng

    def resolve(self, query: DNSQuery, now: float) -> RecursionResult:
        """Resolve ``query`` iteratively, consulting the cache first."""
        cached = self.cache.lookup(query, now)
        if cached is not None:
            return RecursionResult(
                response=cached, elapsed=0.0, servers_contacted=0, timed_out=False
            )
        result = self._resolve_uncached(query, now)
        if result.response is not None:
            self.cache.store(result.response, now + result.elapsed)
        return result

    def _resolve_uncached(self, query: DNSQuery, now: float) -> RecursionResult:
        elapsed = 0.0
        contacted = 0
        targets = [s.address for s in self.hierarchy.root_servers()]
        self._rng.shuffle(targets)
        current_name = query.name
        for _ in range(self.MAX_STEPS):
            if not targets:
                break
            address = targets.pop(0)
            contacted += 1
            response = self.hierarchy.query(
                address, DNSQuery(current_name, query.rtype, False), self._rng
            )
            if response is None:
                elapsed += self.upstream_timeout
            else:
                elapsed += self.query_latency
            if elapsed >= self.budget:
                return RecursionResult(None, elapsed, contacted, timed_out=True)
            if response is None:
                continue  # try the zone's next server
            if response.rcode is RCode.REFUSED:
                continue
            if response.rcode.is_error:
                final = make_error_response(query, response.rcode)
                return RecursionResult(final, elapsed, contacted, timed_out=False)
            if response.addresses():
                final = make_a_response(
                    query, response.addresses(), ttl=self._min_ttl(response)
                )
                return RecursionResult(final, elapsed, contacted, timed_out=False)
            cnames = response.cname_records()
            if cnames and not response.addresses():
                # Restart resolution at the CNAME target.
                current_name = cnames[-1].target or current_name
                targets = [s.address for s in self.hierarchy.root_servers()]
                self._rng.shuffle(targets)
                continue
            if response.is_referral:
                glue = [
                    response.glue_for(ns)
                    for ns in response.ns_names()
                ]
                targets = [g for g in glue if g is not None]
                self._rng.shuffle(targets)
                continue
            # NOERROR with no usable data: give up with SERVFAIL.
            final = make_error_response(query, RCode.SERVFAIL)
            return RecursionResult(final, elapsed, contacted, timed_out=False)
        # Ran out of servers or steps: the lookup dangles until timeout.
        return RecursionResult(None, max(elapsed, self.budget), contacted, True)

    @staticmethod
    def _min_ttl(response: DNSResponse) -> int:
        ttls = [r.ttl for r in response.answers] or [300]
        return min(ttls)
