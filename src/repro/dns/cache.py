"""A TTL-respecting DNS cache.

Both the local (stub) cache that the measurement procedure flushes before
every download (Section 3.4, step 1) and the LDNS/proxy caches that the
procedure *cannot* flush (Section 3.4: "there is no way for the client to
force the DNS cache at the proxy to be flushed, some DNS failures may be
masked") are instances of this class.  Negative caching is modelled because
a cached SERVFAIL at an LDNS changes which clients observe an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dns.message import (
    DNSQuery,
    DNSResponse,
    RCode,
    RecordType,
    normalize_name,
)


@dataclass
class CacheEntry:
    """A cached response with its absolute expiry time."""

    response: DNSResponse
    expires_at: float
    stored_at: float

    def fresh(self, now: float) -> bool:
        """True if the entry is still within TTL at time ``now``."""
        return now < self.expires_at


class DNSCache:
    """Maps (name, rtype) to cached responses with expiry.

    ``negative_ttl`` bounds how long error responses are retained
    (RFC 2308-style negative caching).
    """

    def __init__(self, negative_ttl: int = 60, max_entries: int = 100000) -> None:
        if negative_ttl < 0:
            raise ValueError("negative negative_ttl")
        if max_entries < 1:
            raise ValueError("cache must hold at least one entry")
        self.negative_ttl = negative_ttl
        self.max_entries = max_entries
        self._entries: Dict[Tuple[str, RecordType], CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, query: DNSQuery) -> Tuple[str, RecordType]:
        return (normalize_name(query.name), query.rtype)

    def _ttl_of(self, response: DNSResponse) -> int:
        if response.rcode is not RCode.NOERROR:
            return self.negative_ttl
        ttls = [r.ttl for r in response.answers + response.authority]
        if not ttls:
            return self.negative_ttl
        return min(ttls)

    def store(self, response: DNSResponse, now: float) -> None:
        """Insert a response; evicts the stalest entry when full."""
        ttl = self._ttl_of(response)
        if ttl <= 0:
            return
        if len(self._entries) >= self.max_entries:
            stalest = min(self._entries, key=lambda k: self._entries[k].expires_at)
            del self._entries[stalest]
        self._entries[self._key(response.query)] = CacheEntry(
            response=response, expires_at=now + ttl, stored_at=now
        )

    def lookup(self, query: DNSQuery, now: float) -> Optional[DNSResponse]:
        """Return a fresh cached response, or None (expired entries pruned)."""
        key = self._key(query)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh(now):
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry.response

    def flush(self) -> int:
        """Drop every entry (the measurement procedure's step 1).

        Returns the number of entries dropped.
        """
        count = len(self._entries)
        self._entries.clear()
        return count

    def flush_name(self, name: str) -> int:
        """Drop all entries for one name; returns the count dropped."""
        name = normalize_name(name)
        victims = [k for k in self._entries if k[0] == name]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def expire(self, now: float) -> int:
        """Prune entries whose TTL has elapsed; returns the count pruned."""
        victims = [k for k, e in self._entries.items() if not e.fresh(now)]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def cached_names(self) -> List[str]:
        """All names currently cached (for inspection in tests/examples)."""
        return sorted({name for name, _ in self._entries})

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
