"""The client-side stub resolver.

This is where the paper's three DNS failure categories (Section 2.1) are
*produced*:

* **LDNS timeout** -- the stub cannot reach its local DNS server at all,
  because the LDNS is down or the client's first-mile connectivity to it is
  broken.  The dominant category (74-83% of DNS failures, Table 4).
* **Non-LDNS timeout** -- the LDNS responds to the stub but the recursive
  lookup dangles past the stub's budget because an authoritative server
  upstream is unreachable.
* **Error response** -- the lookup completes but returns SERVFAIL/NXDOMAIN.

The stub retries with the classic resolv.conf discipline: ``attempts``
tries with per-try ``timeout`` seconds.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.dns.cache import DNSCache
from repro.dns.message import DNSQuery, DNSResponse, RCode
from repro.dns.server import RecursiveResolverServer
from repro.net.addressing import IPv4Address


class ResolutionStatus(enum.Enum):
    """Outcome categories matching the paper's DNS taxonomy."""

    SUCCESS = "success"
    LDNS_TIMEOUT = "ldns_timeout"
    NON_LDNS_TIMEOUT = "non_ldns_timeout"
    ERROR_RESPONSE = "error_response"

    @property
    def is_failure(self) -> bool:
        """True for any non-success outcome."""
        return self is not ResolutionStatus.SUCCESS


@dataclass
class ResolutionOutcome:
    """Everything the performance record needs about one resolution."""

    status: ResolutionStatus
    addresses: List[IPv4Address]
    lookup_time: float
    rcode: Optional[RCode] = None
    attempts: int = 1
    from_cache: bool = False

    @property
    def succeeded(self) -> bool:
        """True if at least one address was obtained."""
        return self.status is ResolutionStatus.SUCCESS


class LDNSPath:
    """The client's path to its local DNS server.

    ``reachable`` is the fault-injection knob for first-mile problems; the
    LDNS's own ``process_up`` flag covers the server being down.  Either
    produces the same observable: an LDNS timeout.
    """

    def __init__(self, ldns: RecursiveResolverServer, latency: float = 0.005) -> None:
        self.ldns = ldns
        self.latency = latency
        self.reachable = True

    def deliver(self, query: DNSQuery, now: float):
        """Send a query over the path; None if it cannot be delivered."""
        if not self.reachable or not self.ldns.process_up:
            return None
        return self.ldns.resolve(query, now)


class StubResolver:
    """Client stub resolver with resolv.conf-style retry behaviour."""

    def __init__(
        self,
        path: LDNSPath,
        rng: random.Random,
        timeout: float = 5.0,
        attempts: int = 2,
        use_cache: bool = True,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if attempts < 1:
            raise ValueError("need at least one attempt")
        self.path = path
        self.timeout = timeout
        self.attempts = attempts
        self.cache: Optional[DNSCache] = DNSCache() if use_cache else None
        self._rng = rng

    def flush_cache(self) -> int:
        """Flush the stub's own cache (measurement procedure step 1)."""
        if self.cache is None:
            return 0
        return self.cache.flush()

    def resolve(self, name: str, now: float) -> ResolutionOutcome:
        """Resolve ``name`` to addresses, classifying any failure."""
        outcome = self._resolve(name, now)
        registry = obs.registry()
        registry.counter("dns_resolutions_total").inc()
        registry.counter("dns_outcome_total", status=outcome.status.value).inc()
        if not outcome.from_cache:
            registry.histogram("dns_lookup_seconds").observe(outcome.lookup_time)
        if outcome.status.is_failure:
            obs.current_span().event(
                "dns.failure", name=name, status=outcome.status.value
            )
        return outcome

    def _resolve(self, name: str, now: float) -> ResolutionOutcome:
        query = DNSQuery(name)
        if self.cache is not None:
            cached = self.cache.lookup(query, now)
            if cached is not None and cached.rcode is RCode.NOERROR:
                return ResolutionOutcome(
                    status=ResolutionStatus.SUCCESS,
                    addresses=cached.addresses(),
                    lookup_time=0.0,
                    rcode=cached.rcode,
                    from_cache=True,
                )
        elapsed = 0.0
        for attempt in range(1, self.attempts + 1):
            result = self.path.deliver(query, now + elapsed)
            if result is None:
                # Nothing came back within this attempt's timeout window.
                elapsed += self.timeout
                continue
            if result.timed_out or result.response is None:
                # The LDNS was reached but its recursion dangled; the stub
                # gives up after its per-attempt timeout.
                elapsed += self.timeout
                if attempt == self.attempts:
                    return ResolutionOutcome(
                        status=ResolutionStatus.NON_LDNS_TIMEOUT,
                        addresses=[],
                        lookup_time=elapsed,
                        attempts=attempt,
                    )
                continue
            elapsed += min(result.elapsed + 2 * self.path.latency, self.timeout)
            response = result.response
            if response.rcode.is_error:
                return ResolutionOutcome(
                    status=ResolutionStatus.ERROR_RESPONSE,
                    addresses=[],
                    lookup_time=elapsed,
                    rcode=response.rcode,
                    attempts=attempt,
                )
            addresses = response.addresses()
            if not addresses:
                return ResolutionOutcome(
                    status=ResolutionStatus.ERROR_RESPONSE,
                    addresses=[],
                    lookup_time=elapsed,
                    rcode=RCode.SERVFAIL,
                    attempts=attempt,
                )
            if self.cache is not None:
                self.cache.store(response, now + elapsed)
            return ResolutionOutcome(
                status=ResolutionStatus.SUCCESS,
                addresses=addresses,
                lookup_time=elapsed,
                rcode=response.rcode,
                attempts=attempt,
            )
        # Every attempt went unanswered: the LDNS was never reached.
        return ResolutionOutcome(
            status=ResolutionStatus.LDNS_TIMEOUT,
            addresses=[],
            lookup_time=elapsed,
            attempts=self.attempts,
        )
