"""Dig-style iterative DNS traversal from the client.

Step 3 of the download procedure (Section 3.4): after every wget access the
client runs an iterative resolution -- first asking the LDNS, then walking
down from the root servers -- recording every step.  Section 4.2 uses the
result to break DNS failures down: in over 94% of wget DNS failures the
iterative dig also failed, and the step at which it failed localizes the
problem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dns.message import DNSQuery, DNSResponse, RCode
from repro.dns.resolver import LDNSPath
from repro.dns.server import DNSHierarchy
from repro.net.addressing import IPv4Address


@dataclass(frozen=True)
class DigStep:
    """One query/response exchange in the traversal."""

    target_description: str
    query_name: str
    answered: bool
    rcode: Optional[RCode] = None
    referral: bool = False
    num_addresses: int = 0


@dataclass
class DigResult:
    """The full iterative traversal: steps plus the final outcome."""

    steps: List[DigStep] = field(default_factory=list)
    addresses: List[IPv4Address] = field(default_factory=list)
    ldns_responded: bool = False
    final_rcode: Optional[RCode] = None
    elapsed: float = 0.0

    @property
    def succeeded(self) -> bool:
        """True if the traversal produced at least one address."""
        return bool(self.addresses)

    @property
    def failed_at_ldns(self) -> bool:
        """True if even the first hop (the LDNS) never answered."""
        return not self.ldns_responded

    def summary(self) -> str:
        """One-line description, e.g. for example scripts."""
        if self.succeeded:
            return f"resolved via {len(self.steps)} steps"
        if self.failed_at_ldns:
            return "LDNS unresponsive"
        if self.final_rcode is not None and self.final_rcode.is_error:
            return f"error {self.final_rcode.name} after {len(self.steps)} steps"
        return f"dangled after {len(self.steps)} steps"


class IterativeDigger:
    """Runs the LDNS-then-root iterative traversal."""

    MAX_STEPS = 24

    def __init__(
        self,
        path: LDNSPath,
        hierarchy: DNSHierarchy,
        rng: random.Random,
        per_query_timeout: float = 2.0,
        query_latency: float = 0.04,
    ) -> None:
        self.path = path
        self.hierarchy = hierarchy
        self.per_query_timeout = per_query_timeout
        self.query_latency = query_latency
        #: When the client's own connectivity is broken (a last-mile or
        #: campus-uplink outage), queries to root/TLD/authoritative servers
        #: go unanswered too -- the reason the paper's iterative dig fails
        #: whenever wget's DNS does in >94% of cases.
        self.network_up = True
        self._rng = rng

    def dig(self, name: str, now: float) -> DigResult:
        """Traverse the hierarchy for ``name``, recording every step."""
        result = DigResult()
        query = DNSQuery(name)

        # Step 0: ask the LDNS (recursively), as dig would by default.
        ldns_answer = self.path.deliver(query, now)
        if ldns_answer is None:
            result.steps.append(
                DigStep("ldns", name, answered=False)
            )
            result.elapsed += self.per_query_timeout
        else:
            result.ldns_responded = True
            result.elapsed += ldns_answer.elapsed + 2 * self.path.latency
            response = ldns_answer.response
            if response is not None:
                result.steps.append(
                    DigStep(
                        "ldns",
                        name,
                        answered=True,
                        rcode=response.rcode,
                        num_addresses=len(response.addresses()),
                    )
                )
                if response.addresses():
                    result.addresses = response.addresses()
                    result.final_rcode = response.rcode
                    return result
                if response.rcode.is_error:
                    result.final_rcode = response.rcode
            else:
                result.steps.append(DigStep("ldns", name, answered=False))

        # Walk down from the roots.
        self._walk_from_roots(name, result)
        return result

    def _walk_from_roots(self, name: str, result: DigResult) -> None:
        targets = [
            (f"root:{s.name}", s.address) for s in self.hierarchy.root_servers()
        ]
        self._rng.shuffle(targets)
        current_name = name
        for _ in range(self.MAX_STEPS):
            if not targets:
                return
            label, address = targets.pop(0)
            if not self.network_up:
                response = None  # queries never leave the client network
            else:
                response = self.hierarchy.query(
                    address, DNSQuery(current_name, recursion_desired=False),
                    self._rng,
                )
            if response is None:
                result.steps.append(DigStep(label, current_name, answered=False))
                result.elapsed += self.per_query_timeout
                continue
            result.elapsed += self.query_latency
            if response.rcode is RCode.REFUSED:
                result.steps.append(
                    DigStep(label, current_name, answered=True, rcode=response.rcode)
                )
                continue
            if response.rcode.is_error:
                result.steps.append(
                    DigStep(label, current_name, answered=True, rcode=response.rcode)
                )
                result.final_rcode = response.rcode
                return
            if response.addresses():
                result.steps.append(
                    DigStep(
                        label,
                        current_name,
                        answered=True,
                        rcode=response.rcode,
                        num_addresses=len(response.addresses()),
                    )
                )
                result.addresses = response.addresses()
                result.final_rcode = response.rcode
                return
            cnames = response.cname_records()
            if cnames:
                current_name = cnames[-1].target or current_name
                targets = [
                    (f"root:{s.name}", s.address)
                    for s in self.hierarchy.root_servers()
                ]
                self._rng.shuffle(targets)
                result.steps.append(
                    DigStep(label, current_name, answered=True, rcode=response.rcode)
                )
                continue
            if response.is_referral:
                result.steps.append(
                    DigStep(
                        label,
                        current_name,
                        answered=True,
                        rcode=response.rcode,
                        referral=True,
                    )
                )
                glue = [response.glue_for(ns) for ns in response.ns_names()]
                targets = [
                    (f"auth:{ns}", g)
                    for ns, g in zip(response.ns_names(), glue)
                    if g is not None
                ]
                self._rng.shuffle(targets)
                continue
            # NOERROR, no data, no referral: dead end.
            result.steps.append(
                DigStep(label, current_name, answered=True, rcode=response.rcode)
            )
            result.final_rcode = RCode.SERVFAIL
            return
