"""DNS message model: queries, responses, resource records, rcodes.

We model exactly the protocol surface the failure taxonomy needs: A-record
queries, NS referrals (for the iterative dig), CNAME chains (several of the
paper's 80 sites are CDN-served via CNAME), and the NXDOMAIN / SERVFAIL
error codes the paper observed from misconfigured authoritative servers
(Section 4.2 -- www.brazzil.com and www.espn.com).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.net.addressing import IPv4Address


class RecordType(enum.Enum):
    """Resource record types used in the study."""

    A = "A"
    NS = "NS"
    CNAME = "CNAME"


class RCode(enum.Enum):
    """DNS response codes (subset)."""

    NOERROR = 0
    SERVFAIL = 2
    NXDOMAIN = 3
    REFUSED = 5

    @property
    def is_error(self) -> bool:
        """True for codes the paper's "Error response" category covers."""
        return self is not RCode.NOERROR


def normalize_name(name: str) -> str:
    """Canonicalize a domain name: lowercase, no trailing dot.

    >>> normalize_name("WWW.Example.COM.")
    'www.example.com'
    """
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    if not name:
        raise ValueError("empty domain name")
    for label in name.split("."):
        if not label:
            raise ValueError(f"empty label in {name!r}")
        if len(label) > 63:
            raise ValueError(f"label too long in {name!r}")
    return name


def parent_zone(name: str) -> Optional[str]:
    """The parent zone of a name, or None at the root.

    >>> parent_zone("www.example.com")
    'example.com'
    >>> parent_zone("com") is None
    True
    """
    name = normalize_name(name)
    if "." not in name:
        return None
    return name.partition(".")[2]


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record in a response."""

    name: str
    rtype: RecordType
    ttl: int
    # A records carry an address; NS and CNAME records carry a target name.
    address: Optional[IPv4Address] = None
    target: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl < 0:
            raise ValueError("negative TTL")
        if self.rtype is RecordType.A:
            if self.address is None or self.target is not None:
                raise ValueError("A record needs an address and no target")
        else:
            if self.target is None or self.address is not None:
                raise ValueError(f"{self.rtype.value} record needs a target name")
            object.__setattr__(self, "target", normalize_name(self.target))


@dataclass(frozen=True)
class DNSQuery:
    """An A-record (or NS) query for a name."""

    name: str
    rtype: RecordType = RecordType.A
    recursion_desired: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))


@dataclass(frozen=True)
class DNSResponse:
    """A response: rcode plus answer/authority/additional sections."""

    query: DNSQuery
    rcode: RCode
    answers: Tuple[ResourceRecord, ...] = ()
    authority: Tuple[ResourceRecord, ...] = ()
    additional: Tuple[ResourceRecord, ...] = ()
    authoritative: bool = False

    @property
    def is_referral(self) -> bool:
        """True if this is a delegation (no answers, NS records in authority)."""
        return (
            self.rcode is RCode.NOERROR
            and not self.answers
            and any(r.rtype is RecordType.NS for r in self.authority)
        )

    def a_records(self) -> List[ResourceRecord]:
        """All A records in the answer section."""
        return [r for r in self.answers if r.rtype is RecordType.A]

    def cname_records(self) -> List[ResourceRecord]:
        """All CNAME records in the answer section."""
        return [r for r in self.answers if r.rtype is RecordType.CNAME]

    def addresses(self) -> List[IPv4Address]:
        """All resolved addresses, in answer order."""
        return [r.address for r in self.a_records() if r.address is not None]

    def ns_names(self) -> List[str]:
        """NS target names from the authority section."""
        return [
            r.target
            for r in self.authority
            if r.rtype is RecordType.NS and r.target is not None
        ]

    def glue_for(self, ns_name: str) -> Optional[IPv4Address]:
        """The glue A record for a nameserver name, if present."""
        ns_name = normalize_name(ns_name)
        for record in self.additional:
            if record.rtype is RecordType.A and record.name == ns_name:
                return record.address
        return None


def make_a_response(
    query: DNSQuery,
    addresses: Sequence[IPv4Address],
    ttl: int = 300,
    cname_chain: Sequence[str] = (),
    authoritative: bool = True,
) -> DNSResponse:
    """Build a NOERROR answer, optionally preceded by a CNAME chain.

    The answer name for the A records is the final CNAME target when a chain
    is supplied (matching real responses for CDN-hosted sites).
    """
    answers: List[ResourceRecord] = []
    owner = query.name
    for target in cname_chain:
        answers.append(
            ResourceRecord(name=owner, rtype=RecordType.CNAME, ttl=ttl, target=target)
        )
        owner = normalize_name(target)
    for address in addresses:
        answers.append(
            ResourceRecord(name=owner, rtype=RecordType.A, ttl=ttl, address=address)
        )
    return DNSResponse(
        query=query,
        rcode=RCode.NOERROR,
        answers=tuple(answers),
        authoritative=authoritative,
    )


def make_error_response(query: DNSQuery, rcode: RCode) -> DNSResponse:
    """Build an error response (SERVFAIL, NXDOMAIN, ...)."""
    if rcode is RCode.NOERROR:
        raise ValueError("use make_a_response for NOERROR")
    return DNSResponse(query=query, rcode=rcode)


def make_referral(
    query: DNSQuery,
    zone: str,
    ns_names: Sequence[str],
    glue: Sequence[Tuple[str, IPv4Address]] = (),
    ttl: int = 86400,
) -> DNSResponse:
    """Build a delegation response pointing at the zone's nameservers."""
    if not ns_names:
        raise ValueError("a referral needs at least one NS record")
    authority = tuple(
        ResourceRecord(name=zone, rtype=RecordType.NS, ttl=ttl, target=ns)
        for ns in ns_names
    )
    additional = tuple(
        ResourceRecord(name=name, rtype=RecordType.A, ttl=ttl, address=addr)
        for name, addr in glue
    )
    return DNSResponse(
        query=query,
        rcode=RCode.NOERROR,
        authority=authority,
        additional=additional,
    )
