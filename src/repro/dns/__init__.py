"""DNS substrate: messages, caches, servers, and resolvers.

The paper's clients resolve each website name before every download (the
local cache is flushed, Section 3.4) and additionally run a dig-style
iterative resolution to localize DNS failures (Section 4.2).  This package
implements:

* :mod:`repro.dns.message` -- queries, responses, and response codes.
* :mod:`repro.dns.cache` -- a TTL-respecting resolver cache.
* :mod:`repro.dns.server` -- authoritative and recursive (LDNS) servers.
* :mod:`repro.dns.resolver` -- the client-side stub resolver with the
  timeout/retry behaviour whose failure modes the paper classifies
  (LDNS timeout / non-LDNS timeout / error response).
* :mod:`repro.dns.iterative` -- dig-style iterative traversal from the
  root, used for post-hoc failure localization.
"""

from repro.dns.message import DNSQuery, DNSResponse, RCode, RecordType
from repro.dns.resolver import ResolutionOutcome, ResolutionStatus, StubResolver

__all__ = [
    "DNSQuery",
    "DNSResponse",
    "RCode",
    "RecordType",
    "StubResolver",
    "ResolutionOutcome",
    "ResolutionStatus",
]
