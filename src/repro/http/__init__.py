"""HTTP substrate: messages, origin servers, proxies, and the wget client.

* :mod:`repro.http.message` -- HTTP requests/responses (the subset the
  study exercises: GET, redirects, Cache-Control: no-cache, error codes).
* :mod:`repro.http.server` -- origin web servers with replica sets,
  redirect behaviour, and HTTP-level error injection.
* :mod:`repro.http.proxy` -- an ISA-like corporate caching proxy: it does
  its own name resolution (masking client DNS failures) and does *not*
  fail over across a site's A records -- the mechanism behind the shared
  proxy-related failures of Section 4.7.
* :mod:`repro.http.wget` -- the measurement client: retries, redirect
  following, multi-address failover, and the 60-second idle rule.
"""

from repro.http.message import HTTPRequest, HTTPResponse, StatusClass
from repro.http.wget import TransactionResult, WgetClient

__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "StatusClass",
    "WgetClient",
    "TransactionResult",
]
